//! Offline drop-in replacement for the subset of the `criterion` API used by
//! this workspace: [`criterion_group!`] / [`criterion_main!`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] with
//! [`BenchmarkId`], and [`Bencher::iter`].
//!
//! The build environment has no access to crates.io, so this vendored crate
//! stands in for the real one. Measurement model: each benchmark is
//! calibrated so one sample takes roughly `SKYWEB_BENCH_SAMPLE_MS`
//! milliseconds (default 100), then `sample_size` samples are collected and
//! the mean / min / max per-iteration times are printed. Set
//! `SKYWEB_BENCH_FAST=1` to run a single tiny sample per benchmark (used by
//! CI smoke jobs).

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parameter.is_empty() {
            write!(f, "{}", self.function)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Anything accepted as the id argument of
/// [`BenchmarkGroup::bench_function`].
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self.to_string(),
            parameter: String::new(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self,
            parameter: String::new(),
        }
    }
}

/// Times the closure passed to [`Bencher::iter`] for a prescribed number of
/// iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the sample's iteration count and records the elapsed
    /// wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    fast: bool,
    sample_ms: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let fast = std::env::var("SKYWEB_BENCH_FAST").is_ok_and(|v| v != "0");
        let sample_ms = std::env::var("SKYWEB_BENCH_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100);
        Criterion { fast, sample_ms }
    }
}

impl Criterion {
    /// Accepts and ignores CLI arguments (kept for API compatibility with
    /// the `criterion_group!` expansion).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Prints the trailing summary (no-op in this shim).
    pub fn final_summary(&self) {}
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its per-iteration timing.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Calibration: find an iteration count for ~sample_ms per sample.
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let target = Duration::from_millis(if self.criterion.fast {
            1
        } else {
            self.criterion.sample_ms
        });
        let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000_000) as u64;
        let samples = if self.criterion.fast {
            1
        } else {
            self.sample_size
        };

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            bencher.iters = iters;
            f(&mut bencher);
            per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
        }
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        let min = per_iter_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter_ns.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{}/{:<44} time: [{} {} {}]  ({} samples x {} iters)",
            self.name,
            id.to_string(),
            format_ns(min),
            format_ns(mean),
            format_ns(max),
            samples,
            iters,
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Renders nanoseconds with criterion-style units.
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} \u{b5}s", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Declares the benchmark binary's `main` (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("sel", 100).to_string(), "sel/100");
        assert_eq!("plain".into_benchmark_id().to_string(), "plain");
    }

    #[test]
    fn bench_function_runs_and_times() {
        std::env::set_var("SKYWEB_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut runs = 0u64;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs >= 2, "calibration + sample must both run the closure");
    }

    #[test]
    fn ns_formatting_picks_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("\u{b5}s"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
    }
}
