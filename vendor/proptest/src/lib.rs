//! Offline drop-in replacement for the subset of the `proptest` API used by
//! this workspace: the [`proptest!`] macro, the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, [`Just`], integer-range strategies, tuple
//! and `Vec` composition, and [`collection::vec`].
//!
//! The build environment has no access to crates.io, so this vendored crate
//! stands in for the real one. Semantics: each `#[test]` inside
//! [`proptest!`] samples `ProptestConfig::cases` random inputs from its
//! strategies (deterministically seeded from the test name) and runs the
//! body on each. There is **no shrinking** — a failure reports the panic of
//! the offending case; the deterministic seeding makes failures perfectly
//! reproducible.
//!
//! [`Strategy`]: strategy::Strategy
//! [`Just`]: strategy::Just

#![forbid(unsafe_code)]

pub use crate as prop;

/// Test-runner types: the deterministic RNG and the run configuration.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`. Only the fields
    /// used by this workspace are modelled; the rest of the real API is
    /// covered by `..ProptestConfig::default()` in user code.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for compatibility; this runner never shrinks.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; this runner never forks.
        pub fork: bool,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 1024,
                fork: false,
            }
        }
    }

    /// Deterministic xoshiro256++ RNG used to sample strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Creates an RNG whose stream depends only on `label` (the test
        /// name), so every run of a test sees the same cases.
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut next = move || {
                h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`; `bound == 0` yields 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and its combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms every generated value with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Generates a value, builds a second strategy from it with `f`, and
        /// draws from that.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Result of [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let v = (rng.next_u64() as u128) % span;
                    self.start.wrapping_add(v as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    let v = (rng.next_u64() as u128) % span;
                    lo.wrapping_add(v as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// A `Vec` of strategies yields a `Vec` of one sample from each element,
    /// in order (mirrors proptest's `Strategy for Vec<S>`).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.sample(rng)).collect()
        }
    }
}

/// Collection strategies ([`collection::vec`]).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size interval for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy generating a `Vec` whose length lies in a size range and
    /// whose elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Creates a [`VecStrategy`] (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-import surface used as `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                { $body }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_collections_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u32..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::sample(&(0usize..=4), &mut rng);
            assert!(w <= 4);
            let xs = Strategy::sample(&collection::vec(0u8..=1, 2..5), &mut rng);
            assert!((2..5).contains(&xs.len()));
        }
    }

    #[test]
    fn flat_map_threads_values() {
        let strat = (1usize..=3).prop_flat_map(|n| collection::vec(Just(n), n..=n));
        let mut rng = crate::test_runner::TestRng::deterministic("flat");
        for _ in 0..100 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!(!v.is_empty() && v.iter().all(|&x| x == v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_multiple_strategies(x in 0u32..10, (a, b) in (0u8..3, 1usize..4)) {
            prop_assert!(x < 10);
            prop_assert!(a < 3);
            prop_assert!((1..4).contains(&b));
            prop_assert_eq!(b, b);
        }
    }
}
