//! Offline drop-in replacement for the subset of the `rand` 0.8 API used by
//! this workspace: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no access to crates.io, so this vendored crate
//! stands in for the real one. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, which is all the workspace
//! relies on (every generator and randomized ranker is seed-driven). The
//! stream of numbers differs from the real `StdRng` (ChaCha12), so datasets
//! are statistically equivalent but not bit-identical to ones produced with
//! upstream `rand`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: [`SeedableRng::seed_from_u64`]).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Converts 64 random bits into a uniform f64 in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits, same construction as rand's Standard distribution.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a uniform sampler over an interval (mirrors
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                let v = (rng.next_u64() as u128) % span;
                lo.wrapping_add(v as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                let v = (rng.next_u64() as u128) % span;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges that can be sampled uniformly (mirrors
/// `rand::distributions::uniform::SampleRange`). The single blanket impl per
/// range shape is what lets type inference flow from the range literal to
/// the produced value, exactly as with the real crate.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard seeding procedure for xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Subset of `rand::seq::SliceRandom`: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let diverges = (0..100).any(|_| {
            StdRng::seed_from_u64(7).gen_range(0u64..u64::MAX) != c.gen_range(0u64..u64::MAX)
        });
        assert!(diverges);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
            let u = rng.gen_range(0usize..=5);
            assert!(u <= 5);
        }
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.25).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..50_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }
}
