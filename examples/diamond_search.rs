//! Third-party diamond search: the motivating application from the paper's
//! introduction. A third-party service discovers the skyline of a Blue
//! Nile-like hidden diamond database once, and can then answer *any*
//! user-defined monotone ranking over the 4 Cs + price locally, without
//! issuing further searches against the store.
//!
//! ```text
//! cargo run --release --example diamond_search
//! ```

use skyweb::core::{Discoverer, MqDbSky};
use skyweb::datagen::diamonds::{self, DiamondsConfig};
use skyweb::hidden_db::{SingleAttributeRanker, Tuple};

/// A user-specified monotone ranking over the ranking attributes
/// (price, carat, cut, color, clarity) — smaller score is better.
struct UserRanking {
    label: &'static str,
    weights: [f64; 5],
}

fn score(t: &Tuple, weights: &[f64; 5]) -> f64 {
    weights
        .iter()
        .enumerate()
        .map(|(i, w)| w * f64::from(t.values[i]))
        .sum()
}

fn main() {
    // The hidden database: a Blue Nile-like catalogue behind a top-50
    // interface ranked by price (low to high), its default ordering.
    let catalogue = diamonds::generate(&DiamondsConfig { n: 20_000, seed: 4 });
    let price_attr = catalogue.schema.attr_by_name("price").unwrap();
    let db = catalogue.into_db(Box::new(SingleAttributeRanker::new(price_attr)), 50);

    println!(
        "hidden catalogue: {} diamonds, top-{} interface, ranking: {}",
        db.n(),
        db.k(),
        db.ranker_name()
    );

    // Discover every skyline diamond through the search form.
    let result = MqDbSky::new().discover(&db).expect("RQ interface");
    println!(
        "discovered {} skyline diamonds with {} search queries ({:.2} queries per diamond)\n",
        result.skyline.len(),
        result.query_cost,
        result.queries_per_skyline()
    );

    // The top-1 diamond of ANY monotone ranking function is on the skyline,
    // so the service can now serve users with very different preferences
    // from the downloaded skyline alone.
    let rankings = [
        UserRanking {
            label: "budget hunter (price only)",
            weights: [1.0, 0.0, 0.0, 0.0, 0.0],
        },
        UserRanking {
            label: "size matters (carat heavy)",
            weights: [0.05, 3.0, 0.2, 0.2, 0.2],
        },
        UserRanking {
            label: "balanced 4C shopper",
            weights: [0.02, 1.0, 1.0, 1.0, 1.0],
        },
    ];
    for ranking in &rankings {
        let mut best: Vec<&Tuple> = result.skyline.iter().map(|t| t.as_ref()).collect();
        best.sort_by(|a, b| {
            score(a, &ranking.weights)
                .partial_cmp(&score(b, &ranking.weights))
                .unwrap()
        });
        println!("top-3 diamonds for the {}:", ranking.label);
        for d in best.iter().take(3) {
            println!(
                "  #{:<6} price-bucket={:<4} carat-rank={:<3} cut={} color={} clarity={}",
                d.id, d.values[0], d.values[1], d.values[2], d.values[3], d.values[4]
            );
        }
        println!();
    }

    println!(
        "total web accesses spent: {} (a full crawl would need at least {} queries)",
        db.queries_issued(),
        db.n() / db.k()
    );
}
