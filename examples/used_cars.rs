//! Used-car sky band: the Yahoo!-Autos scenario extended to the paper's
//! top-h sky band (Section 7.2). Downloading the top-3 sky band lets a
//! third-party service answer any top-3 query with a user-defined monotone
//! ranking function without touching the hidden database again.
//!
//! ```text
//! cargo run --release --example used_cars
//! ```

use skyweb::core::{Discoverer, MqDbSky, RqSkyband};
use skyweb::datagen::autos::{self, AutosConfig};
use skyweb::hidden_db::{SingleAttributeRanker, Tuple};

fn user_score(car: &Tuple, weights: &[f64; 3]) -> f64 {
    weights
        .iter()
        .enumerate()
        .map(|(i, w)| w * f64::from(car.values[i]))
        .sum()
}

fn main() {
    let listings = autos::generate(&AutosConfig { n: 6_000, seed: 30 });
    let price_attr = listings.schema.attr_by_name("price").unwrap();
    let db = listings.into_db(Box::new(SingleAttributeRanker::new(price_attr)), 50);

    println!(
        "hidden listing site: {} cars, top-{} interface ranked by price\n",
        db.n(),
        db.k()
    );

    // Plain skyline first.
    let skyline = MqDbSky::new().discover(&db).expect("RQ interface");
    println!(
        "skyline: {} cars in {} queries",
        skyline.skyline.len(),
        skyline.query_cost
    );

    // Now the top-3 sky band (every car dominated by fewer than 3 others).
    db.reset_stats();
    let band = RqSkyband::new(3).discover_band(&db).expect("RQ interface");
    println!(
        "top-3 sky band: {} cars in {} queries across {} RQ-DB-SKY runs\n",
        band.band.len(),
        band.query_cost,
        band.runs
    );

    // Any top-3 answer for a monotone ranking function is contained in the
    // band, so user-defined rankings can be answered locally.
    let preferences: [(&str, [f64; 3]); 3] = [
        ("cheapest first", [1.0, 0.05, 0.1]),
        ("low mileage fan", [0.1, 1.0, 0.3]),
        ("newest models", [0.05, 0.1, 5.0]),
    ];
    for (label, weights) in &preferences {
        let mut ranked: Vec<&Tuple> = band.band.iter().map(|t| t.as_ref()).collect();
        ranked.sort_by(|a, b| {
            user_score(a, weights)
                .partial_cmp(&user_score(b, weights))
                .unwrap()
        });
        println!("top-3 cars for '{label}':");
        for car in ranked.iter().take(3) {
            println!(
                "  car #{:<5} price-bucket={:<4} mileage-bucket={:<4} age={}",
                car.id, car.values[0], car.values[1], car.values[2]
            );
        }
        println!();
    }
}
