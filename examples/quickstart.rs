//! Quickstart: build a tiny hidden web database, discover its skyline, and
//! inspect the query cost and anytime trace.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use skyweb::core::{Discoverer, RqDbSky, SqDbSky};
use skyweb::hidden_db::{HiddenDb, InterfaceType, SchemaBuilder, SumRanker, Tuple};

fn main() {
    // A used-car database with three ranking attributes. Values are in
    // "rank space": smaller = more preferred (cheaper, fewer miles, newer).
    let schema = SchemaBuilder::new()
        .ranking("price", 100, InterfaceType::Rq)
        .ranking("mileage", 100, InterfaceType::Rq)
        .ranking("age", 30, InterfaceType::Rq)
        .filtering("make", 5)
        .build();

    let tuples = vec![
        Tuple::new(0, vec![20, 80, 2, 0]),
        Tuple::new(1, vec![35, 40, 5, 1]),
        Tuple::new(2, vec![50, 10, 9, 2]),
        Tuple::new(3, vec![55, 30, 1, 0]),
        Tuple::new(4, vec![70, 60, 12, 3]),
        Tuple::new(5, vec![15, 95, 20, 4]),
        Tuple::new(6, vec![90, 5, 25, 1]),
        Tuple::new(7, vec![60, 50, 8, 2]),
    ];

    // The web interface returns at most 2 matching cars per search, ranked
    // by an (unknown to the client) domination-consistent function.
    let db = HiddenDb::new(schema, tuples, Box::new(SumRanker), 2);

    println!(
        "database: {} cars behind a top-{} interface\n",
        db.n(),
        db.k()
    );

    // Discover the skyline through the restrictive interface.
    let result = RqDbSky::new()
        .discover(&db)
        .expect("the interface supports two-ended ranges");

    println!(
        "RQ-DB-SKY discovered {} skyline cars:",
        result.skyline.len()
    );
    for car in &result.skyline {
        println!(
            "  car #{:<2} price={:<3} mileage={:<3} age={}",
            car.id, car.values[0], car.values[1], car.values[2]
        );
    }
    println!(
        "\nquery cost: {} searches (the whole database has {} cars)",
        result.query_cost,
        db.n()
    );
    println!("anytime trace (queries -> skyline tuples known):");
    for p in &result.trace {
        println!(
            "  after {:>2} queries: {} skyline tuples",
            p.queries, p.skyline_found
        );
    }

    // The same database could also be explored with the weaker one-ended
    // interface algorithm; compare the costs.
    db.reset_stats();
    let sq = SqDbSky::new()
        .discover(&db)
        .expect("SQ runs on RQ interfaces too");
    println!(
        "\nSQ-DB-SKY (one-ended ranges only) needs {} queries for the same skyline",
        sq.query_cost
    );
}
