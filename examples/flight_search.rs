//! Flight search under a strict query quota: the Google-Flights scenario of
//! the paper's online experiment. The QPX API allowed only 50 free queries
//! per day, so the *anytime* property matters: the algorithm must surface as
//! many skyline itineraries as possible before the quota runs out.
//!
//! ```text
//! cargo run --example flight_search
//! ```

use skyweb::core::{Discoverer, MqDbSky};
use skyweb::datagen::gflights::{self, GFlightsConfig};
use skyweb::hidden_db::{RateLimit, SingleAttributeRanker};
use skyweb::skyline::bnl_skyline;

fn main() {
    // One route/date instance: the traveller prefers fewer stops, a lower
    // price, a shorter connection and a later departure.
    let instance = gflights::generate_instance(&GFlightsConfig {
        itineraries: 120,
        seed: 42,
    });
    let truth = bnl_skyline(&instance.tuples, &instance.schema).len();
    let price_attr = instance.schema.attr_by_name("price").unwrap();

    // The API returns a single itinerary per request (k = 1), ranks by
    // price, and cuts us off after 50 requests per day.
    let db = instance
        .into_db(Box::new(SingleAttributeRanker::new(price_attr)), 1)
        .with_rate_limit(RateLimit::new(50));

    println!(
        "route instance: {} itineraries, {} skyline flights, quota: 50 queries/day\n",
        db.n(),
        truth
    );

    let result = MqDbSky::new().discover(&db).expect("supported interface");

    println!(
        "within the quota the discovery {}",
        if result.complete {
            "finished completely"
        } else {
            "was cut off by the rate limit (anytime result below)"
        }
    );
    println!(
        "queries spent: {}, skyline flights surfaced: {} of {}",
        result.query_cost,
        result.skyline.len(),
        truth
    );

    println!("\nflights surfaced so far (stops, price bucket, connection, departure slot):");
    for f in &result.skyline {
        println!(
            "  itinerary #{:<3} stops={} price={:<3} connection={:<3} departure={}",
            f.id, f.values[0], f.values[1], f.values[2], f.values[3]
        );
    }

    println!("\ndiscovery progress against the quota:");
    for p in result
        .trace
        .iter()
        .filter(|p| p.queries % 10 == 0 || p.queries == 1)
    {
        println!(
            "  after {:>2} queries: {:>2} skyline flights known",
            p.queries, p.skyline_found
        );
    }
}
