//! Property-based tests of the sans-io layer's central guarantee: a
//! discovery run that is **paused at every query-plan boundary**,
//! checkpointed, and resumed through a fresh driver (and a fresh database
//! session) produces a `DiscoveryResult` byte-identical to the
//! uninterrupted run — skyline, retrieved set, query cost, anytime trace
//! and completion flag — for all eight algorithm machines, any batch limit
//! and any budget.
//!
//! Because the resumed run also exercises every batch size from 1 upward,
//! these properties simultaneously pin the batching guarantee: issuing a
//! machine's multi-query plans through the session batch interface is
//! order-identical to fully sequential execution.

use proptest::prelude::*;

use skyweb::core::{
    BaselineCrawl, Checkpoint, Discoverer, DiscoveryDriver, DiscoveryMachine, DiscoveryResult,
    DriverConfig, MqDbSky, PointSpaceCrawl, Pq2dSky, PqDbSky, RqDbSky, RqSkyband, SkybandResult,
    SqDbSky, StepOutcome,
};
use skyweb::hidden_db::{HiddenDb, InterfaceType, SchemaBuilder, Tuple};

#[derive(Debug, Clone)]
struct DbSpec {
    domains: Vec<u32>,
    values: Vec<Vec<u32>>,
    k: usize,
    interfaces: Vec<u8>,
    budget: Option<u64>,
    max_batch: usize,
}

fn db_spec(m_range: std::ops::RangeInclusive<usize>) -> impl Strategy<Value = DbSpec> {
    (m_range, 0usize..=30, 1usize..=4)
        .prop_flat_map(|(m, n, k)| {
            let domains = prop::collection::vec(2u32..=6, m);
            (domains, Just(n), Just(k))
        })
        .prop_flat_map(|(domains, n, k)| {
            let value_strategy: Vec<_> = domains.iter().map(|&d| 0u32..d).collect();
            let values = prop::collection::vec(value_strategy, n);
            let interfaces = prop::collection::vec(0u8..=2, domains.len());
            // Raw values above 60 mean "no budget" (the vendored proptest
            // has no Option strategy).
            let budget_raw = 0u64..=90;
            (
                Just(domains),
                values,
                Just(k),
                interfaces,
                budget_raw,
                1usize..=5,
            )
        })
        .prop_map(
            |(domains, values, k, interfaces, budget_raw, max_batch)| DbSpec {
                domains,
                values,
                k,
                interfaces,
                budget: (budget_raw <= 60).then_some(budget_raw),
                max_batch,
            },
        )
}

fn build_db(spec: &DbSpec, interface: Option<InterfaceType>) -> HiddenDb {
    let mut builder = SchemaBuilder::new();
    for (i, &d) in spec.domains.iter().enumerate() {
        let itf = interface.unwrap_or(match spec.interfaces[i] {
            0 => InterfaceType::Sq,
            1 => InterfaceType::Rq,
            _ => InterfaceType::Pq,
        });
        builder = builder.ranking(format!("a{i}"), d, itf);
    }
    let tuples: Vec<Tuple> = spec
        .values
        .iter()
        .enumerate()
        .map(|(i, v)| Tuple::new(i as u64, v.clone()))
        .collect();
    HiddenDb::with_sum_ranking(builder.build(), tuples, spec.k)
}

fn assert_identical(a: &DiscoveryResult, b: &DiscoveryResult) {
    let ids = |r: &DiscoveryResult| -> Vec<(u64, Vec<u32>)> {
        r.skyline.iter().map(|t| (t.id, t.values.clone())).collect()
    };
    let retrieved =
        |r: &DiscoveryResult| -> Vec<u64> { r.retrieved.iter().map(|t| t.id).collect() };
    assert_eq!(ids(a), ids(b), "skylines diverged");
    assert_eq!(retrieved(a), retrieved(b), "retrieved sets diverged");
    assert_eq!(a.query_cost, b.query_cost, "query costs diverged");
    assert_eq!(a.trace, b.trace, "anytime traces diverged");
    assert_eq!(a.complete, b.complete, "completion flags diverged");
}

/// Runs `machine` against `db`, pausing at **every** plan boundary and
/// resuming from the checkpoint through a fresh driver.
fn run_with_pauses(
    db: &HiddenDb,
    machine: Box<dyn DiscoveryMachine>,
    config: DriverConfig,
) -> DiscoveryResult {
    let mut driver = DiscoveryDriver::new(db, machine, config);
    while let StepOutcome::Progressed { .. } = driver
        .step()
        .expect("no real query errors in these schemas")
    {
        let checkpoint: Checkpoint<_> = driver.pause();
        driver = DiscoveryDriver::resume(db, checkpoint, config);
    }
    driver.finish().expect("result extraction is infallible")
}

/// The uninterrupted reference run and the pause-at-every-boundary run for
/// one algorithm configuration, on separate but identical databases.
fn check_alg(alg: &dyn Discoverer, spec: &DbSpec, interface: Option<InterfaceType>) {
    let db_ref = build_db(spec, interface);
    let reference = match alg.discover(&db_ref) {
        Ok(r) => r,
        Err(_) => return, // interface mismatch (e.g. random mixed schema)
    };
    assert_eq!(
        reference.query_cost,
        db_ref.queries_issued(),
        "adapter accounting must match the server's"
    );

    let db_resumed = build_db(spec, interface);
    let machine = alg
        .machine(&db_resumed)
        .expect("reference run proved the interface is supported");
    // The reference adapter run honors the algorithm's own budget; mirror
    // it, but vary the batch limit freely — identity must hold regardless.
    let config = DriverConfig::new()
        .with_budget(alg.budget())
        .with_max_batch(spec.max_batch);
    let resumed = run_with_pauses(&db_resumed, machine, config);
    assert_identical(&reference, &resumed);
    assert_eq!(resumed.query_cost, db_resumed.queries_issued());
}

/// Like [`check_alg`] but with the spec's budget applied to both sides.
fn check_alg_with_budget(
    make: &dyn Fn(Option<u64>) -> Box<dyn Discoverer>,
    spec: &DbSpec,
    interface: Option<InterfaceType>,
) {
    let alg = make(spec.budget);
    check_alg(alg.as_ref(), spec, interface);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 120,
        .. ProptestConfig::default()
    })]

    /// SQ-DB-SKY: batched BFS frontier, any pause schedule.
    #[test]
    fn sq_pause_resume_is_identical(spec in db_spec(2..=4)) {
        check_alg_with_budget(&|b| Box::new(match b {
            Some(b) => SqDbSky::with_budget(b),
            None => SqDbSky::new(),
        }), &spec, Some(InterfaceType::Sq));
    }

    /// RQ-DB-SKY: adaptive single-query plans.
    #[test]
    fn rq_pause_resume_is_identical(spec in db_spec(2..=4)) {
        check_alg_with_budget(&|b| Box::new(match b {
            Some(b) => RqDbSky::with_budget(b),
            None => RqDbSky::new(),
        }), &spec, Some(InterfaceType::Rq));
    }

    /// PQ-DB-SKY: plane enumeration with pruned 2D sweeps.
    #[test]
    fn pq_pause_resume_is_identical(spec in db_spec(2..=4)) {
        check_alg_with_budget(&|b| Box::new(match b {
            Some(b) => PqDbSky::with_budget(b),
            None => PqDbSky::new(),
        }), &spec, Some(InterfaceType::Pq));
    }

    /// PQ-2D-SKY (and through it the PQ-2DSUB-SKY sweep machine).
    #[test]
    fn pq2d_pause_resume_is_identical(spec in db_spec(2..=2)) {
        check_alg_with_budget(&|b| Box::new(match b {
            Some(b) => Pq2dSky::with_budget(b),
            None => Pq2dSky::new(),
        }), &spec, Some(InterfaceType::Pq));
    }

    /// MQ-DB-SKY on arbitrary interface mixtures (including the degenerate
    /// delegations to SQ/RQ/PQ machines).
    #[test]
    fn mq_pause_resume_is_identical(spec in db_spec(2..=4)) {
        check_alg_with_budget(&|b| Box::new(match b {
            Some(b) => MqDbSky::with_budget(b),
            None => MqDbSky::new(),
        }), &spec, None);
    }

    /// The crawling BASELINE.
    #[test]
    fn baseline_pause_resume_is_identical(spec in db_spec(2..=3)) {
        check_alg_with_budget(&|b| Box::new(match b {
            Some(b) => BaselineCrawl::with_budget(b),
            None => BaselineCrawl::new(),
        }), &spec, Some(InterfaceType::Rq));
    }

    /// The exhaustive point-space crawl (fully batchable odometer).
    #[test]
    fn point_crawl_pause_resume_is_identical(spec in db_spec(2..=3)) {
        check_alg_with_budget(&|b| Box::new(match b {
            Some(b) => PointSpaceCrawl::with_budget(b),
            None => PointSpaceCrawl::new(),
        }), &spec, Some(InterfaceType::Pq));
    }

    /// Top-h sky-band discovery (machine-specific band result).
    #[test]
    fn skyband_pause_resume_is_identical(spec in db_spec(2..=3), h in 1usize..=3) {
        let alg = match spec.budget {
            Some(b) => RqSkyband::with_budget(h, b),
            None => RqSkyband::new(h),
        };
        let db_ref = build_db(&spec, Some(InterfaceType::Rq));
        let reference: SkybandResult = alg.discover_band(&db_ref).unwrap();

        let db_resumed = build_db(&spec, Some(InterfaceType::Rq));
        let machine = alg.build_machine(&db_resumed).unwrap();
        let config = DriverConfig::new()
            .with_budget(spec.budget)
            .with_max_batch(spec.max_batch);
        let mut driver = DiscoveryDriver::new(&db_resumed, machine, config);
        while let StepOutcome::Progressed { .. } = driver.step().unwrap() {
            let checkpoint = driver.pause();
            driver = DiscoveryDriver::resume(&db_resumed, checkpoint, config);
        }
        let resumed = driver.into_machine().take_band_result();
        let band_ids = |r: &SkybandResult| -> Vec<u64> { r.band.iter().map(|t| t.id).collect() };
        prop_assert_eq!(band_ids(&reference), band_ids(&resumed));
        prop_assert_eq!(reference.query_cost, resumed.query_cost);
        prop_assert_eq!(reference.runs, resumed.runs);
        prop_assert_eq!(reference.complete, resumed.complete);
        prop_assert_eq!(
            reference.retrieved.iter().map(|t| t.id).collect::<Vec<_>>(),
            resumed.retrieved.iter().map(|t| t.id).collect::<Vec<_>>()
        );
    }
}
