//! Property-based tests of the central guarantee of the paper: every
//! discovery algorithm retrieves exactly the skyline of the hidden database,
//! for arbitrary data, arbitrary top-k constraints and any
//! domination-consistent ranking function.
//!
//! Because web databases may contain tuples with identical ranking values
//! (violating the paper's general-positioning assumption), results are
//! compared as sets of *value combinations*, which is the strongest
//! guarantee that holds in that case.

use proptest::prelude::*;

use skyweb::core::{Discoverer, MqDbSky, PqDbSky, RqDbSky, SqDbSky};
use skyweb::hidden_db::{
    HiddenDb, InterfaceType, LexicographicRanker, RandomSkylineRanker, Ranker, SchemaBuilder,
    SumRanker, Tuple, WorstCaseRanker,
};
use skyweb::skyline::bnl_skyline;

/// Distinct sorted value combinations of a tuple set (generic over the
/// handle: discovery results share `Arc<Tuple>`s with the store).
fn value_combos<B: std::borrow::Borrow<Tuple>>(tuples: &[B]) -> Vec<Vec<u32>> {
    let mut combos: Vec<Vec<u32>> = tuples.iter().map(|t| t.borrow().values.clone()).collect();
    combos.sort();
    combos.dedup();
    combos
}

#[derive(Debug, Clone)]
struct DbSpec {
    domains: Vec<u32>,
    values: Vec<Vec<u32>>,
    k: usize,
    ranker: u8,
    interfaces: Vec<u8>,
}

fn db_spec() -> impl Strategy<Value = DbSpec> {
    (2usize..=4, 1usize..=40, 1usize..=4, 0u8..=3)
        .prop_flat_map(|(m, n, k, ranker)| {
            let domains = prop::collection::vec(2u32..=8, m);
            (domains, Just(n), Just(k), Just(ranker))
        })
        .prop_flat_map(|(domains, n, k, ranker)| {
            let value_strategy: Vec<_> = domains.iter().map(|&d| 0u32..d).collect();
            let values = prop::collection::vec(value_strategy, n);
            let interfaces = prop::collection::vec(0u8..=2, domains.len());
            (Just(domains), values, Just(k), Just(ranker), interfaces)
        })
        .prop_map(|(domains, values, k, ranker, interfaces)| DbSpec {
            domains,
            values,
            k,
            ranker,
            interfaces,
        })
}

fn build_db(spec: &DbSpec, interface: Option<InterfaceType>) -> HiddenDb {
    let mut builder = SchemaBuilder::new();
    for (i, &d) in spec.domains.iter().enumerate() {
        let itf = interface.unwrap_or(match spec.interfaces[i] {
            0 => InterfaceType::Sq,
            1 => InterfaceType::Rq,
            _ => InterfaceType::Pq,
        });
        builder = builder.ranking(format!("a{i}"), d, itf);
    }
    let tuples: Vec<Tuple> = spec
        .values
        .iter()
        .enumerate()
        .map(|(i, v)| Tuple::new(i as u64, v.clone()))
        .collect();
    let ranker: Box<dyn Ranker> = match spec.ranker {
        0 => Box::new(SumRanker),
        1 => Box::new(RandomSkylineRanker::new(42)),
        2 => Box::new(WorstCaseRanker),
        _ => Box::new(LexicographicRanker::new((0..spec.domains.len()).collect())),
    };
    HiddenDb::new(builder.build(), tuples, ranker, spec.k)
}

fn truth_combos(db: &HiddenDb) -> Vec<Vec<u32>> {
    value_combos(&bnl_skyline(db.oracle_tuples().as_slice(), db.schema()))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    /// SQ-DB-SKY discovers the exact skyline on one-ended range interfaces.
    #[test]
    fn sq_db_sky_is_complete(spec in db_spec()) {
        let db = build_db(&spec, Some(InterfaceType::Sq));
        let result = SqDbSky::new().discover(&db).unwrap();
        prop_assert!(result.complete);
        prop_assert_eq!(value_combos(&result.skyline), truth_combos(&db));
        prop_assert_eq!(result.query_cost, db.queries_issued());
    }

    /// RQ-DB-SKY discovers the exact skyline on two-ended range interfaces,
    /// never spending more queries than SQ-DB-SKY would on the same data.
    #[test]
    fn rq_db_sky_is_complete(spec in db_spec()) {
        let db = build_db(&spec, Some(InterfaceType::Rq));
        let result = RqDbSky::new().discover(&db).unwrap();
        prop_assert!(result.complete);
        prop_assert_eq!(value_combos(&result.skyline), truth_combos(&db));
    }

    /// PQ-DB-SKY discovers the exact skyline using equality predicates only.
    #[test]
    fn pq_db_sky_is_complete(spec in db_spec()) {
        let db = build_db(&spec, Some(InterfaceType::Pq));
        let result = PqDbSky::new().discover(&db).unwrap();
        prop_assert!(result.complete);
        prop_assert_eq!(value_combos(&result.skyline), truth_combos(&db));
    }

    /// MQ-DB-SKY discovers the exact skyline for arbitrary mixtures of SQ,
    /// RQ and PQ attributes.
    #[test]
    fn mq_db_sky_is_complete_on_mixed_interfaces(spec in db_spec()) {
        let db = build_db(&spec, None);
        let result = MqDbSky::new().discover(&db).unwrap();
        prop_assert!(result.complete);
        prop_assert_eq!(value_combos(&result.skyline), truth_combos(&db));
    }

    /// The anytime trace is monotone and consistent with the query counter.
    #[test]
    fn traces_are_monotone(spec in db_spec()) {
        let db = build_db(&spec, Some(InterfaceType::Rq));
        let result = RqDbSky::new().discover(&db).unwrap();
        let mut prev = 0usize;
        for p in &result.trace {
            prop_assert!(p.skyline_found >= prev);
            prop_assert!(p.queries <= result.query_cost);
            prev = p.skyline_found;
        }
    }
}
