//! Property-based tests of the versioned checkpoint codec: a discovery run
//! that is paused at **every** plan boundary, serialized to bytes with
//! [`Checkpoint::to_bytes`], restored in a fresh `Checkpoint` with
//! [`Checkpoint::from_bytes`], and resumed through a fresh driver produces
//! a result byte-identical to the uninterrupted run — for all eight
//! algorithm machines, any batch limit and any budget.
//!
//! Two further invariants ride along:
//!
//! * **Re-encode stability** — serializing a just-restored checkpoint
//!   reproduces the original byte string exactly (hash sets are written in
//!   sorted order; the knowledge base replays ingestion in retrieval
//!   order), so checkpoints can be persisted, restored and re-persisted
//!   without drift.
//! * **Corruption rejection** — every truncation and every single-bit flip
//!   of a serialized checkpoint is rejected with a `CodecError`; a corrupt
//!   checkpoint is never mis-resumed.

use proptest::prelude::*;

use skyweb::core::{
    BaselineCrawl, Checkpoint, Discoverer, DiscoveryDriver, DiscoveryMachine, DiscoveryResult,
    DriverConfig, MqDbSky, PointSpaceCrawl, Pq2dSky, PqDbSky, RqDbSky, RqSkyband, SqDbSky,
    StepOutcome,
};
use skyweb::hidden_db::{HiddenDb, InterfaceType, SchemaBuilder, Tuple};

#[derive(Debug, Clone)]
struct DbSpec {
    domains: Vec<u32>,
    values: Vec<Vec<u32>>,
    k: usize,
    interfaces: Vec<u8>,
    budget: Option<u64>,
    max_batch: usize,
}

fn db_spec(m_range: std::ops::RangeInclusive<usize>) -> impl Strategy<Value = DbSpec> {
    (m_range, 0usize..=30, 1usize..=4)
        .prop_flat_map(|(m, n, k)| {
            let domains = prop::collection::vec(2u32..=6, m);
            (domains, Just(n), Just(k))
        })
        .prop_flat_map(|(domains, n, k)| {
            let value_strategy: Vec<_> = domains.iter().map(|&d| 0u32..d).collect();
            let values = prop::collection::vec(value_strategy, n);
            let interfaces = prop::collection::vec(0u8..=2, domains.len());
            // Raw values above 60 mean "no budget" (the vendored proptest
            // has no Option strategy).
            let budget_raw = 0u64..=90;
            (
                Just(domains),
                values,
                Just(k),
                interfaces,
                budget_raw,
                1usize..=5,
            )
        })
        .prop_map(
            |(domains, values, k, interfaces, budget_raw, max_batch)| DbSpec {
                domains,
                values,
                k,
                interfaces,
                budget: (budget_raw <= 60).then_some(budget_raw),
                max_batch,
            },
        )
}

fn build_db(spec: &DbSpec, interface: Option<InterfaceType>) -> HiddenDb {
    let mut builder = SchemaBuilder::new();
    for (i, &d) in spec.domains.iter().enumerate() {
        let itf = interface.unwrap_or(match spec.interfaces[i] {
            0 => InterfaceType::Sq,
            1 => InterfaceType::Rq,
            _ => InterfaceType::Pq,
        });
        builder = builder.ranking(format!("a{i}"), d, itf);
    }
    let tuples: Vec<Tuple> = spec
        .values
        .iter()
        .enumerate()
        .map(|(i, v)| Tuple::new(i as u64, v.clone()))
        .collect();
    HiddenDb::with_sum_ranking(builder.build(), tuples, spec.k)
}

fn assert_identical(a: &DiscoveryResult, b: &DiscoveryResult) {
    let ids = |r: &DiscoveryResult| -> Vec<(u64, Vec<u32>)> {
        r.skyline.iter().map(|t| (t.id, t.values.clone())).collect()
    };
    let retrieved =
        |r: &DiscoveryResult| -> Vec<u64> { r.retrieved.iter().map(|t| t.id).collect() };
    assert_eq!(ids(a), ids(b), "skylines diverged");
    assert_eq!(retrieved(a), retrieved(b), "retrieved sets diverged");
    assert_eq!(a.query_cost, b.query_cost, "query costs diverged");
    assert_eq!(a.trace, b.trace, "anytime traces diverged");
    assert_eq!(a.complete, b.complete, "completion flags diverged");
}

/// Runs `machine` against `db`, pausing at **every** plan boundary, pushing
/// the checkpoint through its binary serialization (with a re-encode
/// stability check), and resuming the *restored* checkpoint through a
/// fresh driver.
fn run_through_bytes(
    db: &HiddenDb,
    machine: Box<dyn DiscoveryMachine>,
    config: DriverConfig,
) -> DiscoveryResult {
    let mut driver = DiscoveryDriver::new(db, machine, config);
    while let StepOutcome::Progressed { .. } = driver
        .step()
        .expect("no real query errors in these schemas")
    {
        let checkpoint = driver.pause();
        let bytes = checkpoint
            .to_bytes()
            .expect("all built-in machines are serializable");
        let restored: Checkpoint<Box<dyn DiscoveryMachine>> =
            Checkpoint::from_bytes(&bytes).expect("round-trip of a sealed checkpoint");
        assert_eq!(
            restored
                .to_bytes()
                .expect("restored machines stay serializable"),
            bytes,
            "re-encoding a restored checkpoint must reproduce the bytes"
        );
        assert_eq!(restored.queries_issued(), db.queries_issued());
        driver = DiscoveryDriver::resume(db, restored, config);
    }
    driver.finish().expect("result extraction is infallible")
}

/// The uninterrupted reference run and the serialize-at-every-boundary run
/// for one algorithm configuration, on separate but identical databases.
fn check_alg(alg: &dyn Discoverer, spec: &DbSpec, interface: Option<InterfaceType>) {
    let db_ref = build_db(spec, interface);
    let reference = match alg.discover(&db_ref) {
        Ok(r) => r,
        Err(_) => return, // interface mismatch (e.g. random mixed schema)
    };

    let db_restored = build_db(spec, interface);
    let machine = alg
        .machine(&db_restored)
        .expect("reference run proved the interface is supported");
    let config = DriverConfig::new()
        .with_budget(alg.budget())
        .with_max_batch(spec.max_batch);
    let restored = run_through_bytes(&db_restored, machine, config);
    assert_identical(&reference, &restored);
    assert_eq!(restored.query_cost, db_restored.queries_issued());
}

fn check_alg_with_budget(
    make: &dyn Fn(Option<u64>) -> Box<dyn Discoverer>,
    spec: &DbSpec,
    interface: Option<InterfaceType>,
) {
    let alg = make(spec.budget);
    check_alg(alg.as_ref(), spec, interface);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 120,
        .. ProptestConfig::default()
    })]

    /// SQ-DB-SKY survives serialization at every plan boundary.
    #[test]
    fn sq_checkpoint_bytes_round_trip(spec in db_spec(2..=4)) {
        check_alg_with_budget(&|b| Box::new(match b {
            Some(b) => SqDbSky::with_budget(b),
            None => SqDbSky::new(),
        }), &spec, Some(InterfaceType::Sq));
    }

    /// RQ-DB-SKY survives serialization at every plan boundary.
    #[test]
    fn rq_checkpoint_bytes_round_trip(spec in db_spec(2..=4)) {
        check_alg_with_budget(&|b| Box::new(match b {
            Some(b) => RqDbSky::with_budget(b),
            None => RqDbSky::new(),
        }), &spec, Some(InterfaceType::Rq));
    }

    /// PQ-DB-SKY (plane enumeration + mid-traversal sweep state).
    #[test]
    fn pq_checkpoint_bytes_round_trip(spec in db_spec(2..=4)) {
        check_alg_with_budget(&|b| Box::new(match b {
            Some(b) => PqDbSky::with_budget(b),
            None => PqDbSky::new(),
        }), &spec, Some(InterfaceType::Pq));
    }

    /// PQ-2D-SKY (the raw plane-sweep machine).
    #[test]
    fn pq2d_checkpoint_bytes_round_trip(spec in db_spec(2..=2)) {
        check_alg_with_budget(&|b| Box::new(match b {
            Some(b) => Pq2dSky::with_budget(b),
            None => Pq2dSky::new(),
        }), &spec, Some(InterfaceType::Pq));
    }

    /// MQ-DB-SKY on arbitrary interface mixtures (nested sub-machine
    /// frames serialize recursively).
    #[test]
    fn mq_checkpoint_bytes_round_trip(spec in db_spec(2..=4)) {
        check_alg_with_budget(&|b| Box::new(match b {
            Some(b) => MqDbSky::with_budget(b),
            None => MqDbSky::new(),
        }), &spec, None);
    }

    /// The crawling BASELINE.
    #[test]
    fn baseline_checkpoint_bytes_round_trip(spec in db_spec(2..=3)) {
        check_alg_with_budget(&|b| Box::new(match b {
            Some(b) => BaselineCrawl::with_budget(b),
            None => BaselineCrawl::new(),
        }), &spec, Some(InterfaceType::Rq));
    }

    /// The exhaustive point-space crawl.
    #[test]
    fn point_crawl_checkpoint_bytes_round_trip(spec in db_spec(2..=3)) {
        check_alg_with_budget(&|b| Box::new(match b {
            Some(b) => PointSpaceCrawl::with_budget(b),
            None => PointSpaceCrawl::new(),
        }), &spec, Some(InterfaceType::Pq));
    }

    /// Top-h sky-band discovery (schema and used-roots set serialize).
    #[test]
    fn skyband_checkpoint_bytes_round_trip(spec in db_spec(2..=3), h in 1usize..=3) {
        let alg = match spec.budget {
            Some(b) => RqSkyband::with_budget(h, b),
            None => RqSkyband::new(h),
        };
        let db_ref = build_db(&spec, Some(InterfaceType::Rq));
        let reference = {
            let machine: Box<dyn DiscoveryMachine> =
                Box::new(alg.build_machine(&db_ref).unwrap());
            let config = DriverConfig::new().with_budget(spec.budget);
            DiscoveryDriver::new(&db_ref, machine, config).run().unwrap()
        };

        let db_restored = build_db(&spec, Some(InterfaceType::Rq));
        let machine: Box<dyn DiscoveryMachine> =
            Box::new(alg.build_machine(&db_restored).unwrap());
        let config = DriverConfig::new()
            .with_budget(spec.budget)
            .with_max_batch(spec.max_batch);
        let restored = run_through_bytes(&db_restored, machine, config);
        assert_identical(&reference, &restored);
    }
}

/// A small mid-run checkpoint for the corruption tests below.
fn sample_checkpoint_bytes() -> Vec<u8> {
    let schema = SchemaBuilder::new()
        .ranking("a", 5, InterfaceType::Rq)
        .ranking("b", 5, InterfaceType::Rq)
        .build();
    let tuples = vec![
        Tuple::new(0, vec![4, 1]),
        Tuple::new(1, vec![3, 3]),
        Tuple::new(2, vec![1, 4]),
    ];
    let db = HiddenDb::with_sum_ranking(schema, tuples, 1);
    let machine = RqDbSky::new().machine(&db).unwrap();
    let mut driver = DiscoveryDriver::new(&db, machine, DriverConfig::new().with_max_batch(1));
    driver.step().unwrap();
    driver.step().unwrap();
    driver.pause().to_bytes().unwrap()
}

#[test]
fn every_truncation_is_rejected() {
    let bytes = sample_checkpoint_bytes();
    assert!(Checkpoint::from_bytes(&bytes).is_ok());
    for len in 0..bytes.len() {
        assert!(
            Checkpoint::from_bytes(&bytes[..len]).is_err(),
            "truncation to {len} of {} bytes must be rejected",
            bytes.len()
        );
    }
}

#[test]
fn every_single_bit_flip_is_rejected() {
    let bytes = sample_checkpoint_bytes();
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1 << bit;
            assert!(
                Checkpoint::from_bytes(&corrupt).is_err(),
                "flipping bit {bit} of byte {i} must be rejected"
            );
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = sample_checkpoint_bytes();
    bytes.push(0);
    assert!(Checkpoint::from_bytes(&bytes).is_err());
}
