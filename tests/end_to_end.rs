//! Cross-crate integration tests: realistic scenarios that exercise the
//! generators, the hidden-database interface, the discovery algorithms and
//! the local skyline machinery together.

use skyweb::core::{BaselineCrawl, Discoverer, MqDbSky, PqDbSky, RqDbSky, RqSkyband, SqDbSky};
use skyweb::datagen::{autos, diamonds, flights_dot, gflights, synthetic};
use skyweb::hidden_db::{InterfaceType, RateLimit, SingleAttributeRanker};
use skyweb::skyline::{bnl_skyline, same_ids, skyband};

#[test]
fn diamonds_discovery_matches_baseline_and_ground_truth() {
    let catalogue = diamonds::generate(&diamonds::DiamondsConfig { n: 3_000, seed: 4 });
    let truth = bnl_skyline(&catalogue.tuples, &catalogue.schema);
    let price = catalogue.schema.attr_by_name("price").unwrap();

    let db = catalogue
        .clone()
        .into_db(Box::new(SingleAttributeRanker::new(price)), 50);
    let mq = MqDbSky::new().discover(&db).unwrap();
    assert!(mq.complete);
    assert!(same_ids(&mq.skyline, &truth));

    let db_b = catalogue.into_db(Box::new(SingleAttributeRanker::new(price)), 50);
    let baseline = BaselineCrawl::new().discover(&db_b).unwrap();
    assert!(baseline.complete);
    assert!(same_ids(&baseline.skyline, &truth));
    assert_eq!(baseline.retrieved.len(), db_b.n());
}

#[test]
fn autos_skyband_contains_skyline_and_matches_local_ground_truth() {
    let listings = autos::generate(&autos::AutosConfig { n: 1_500, seed: 30 });
    let truth_band = skyband(&listings.tuples, &listings.schema, 2);
    let truth_sky = bnl_skyline(&listings.tuples, &listings.schema);
    let price = listings.schema.attr_by_name("price").unwrap();
    let db = listings.into_db(Box::new(SingleAttributeRanker::new(price)), 25);

    let band = RqSkyband::new(2).discover_band(&db).unwrap();
    assert!(band.complete);
    assert!(same_ids(&band.band, &truth_band));
    let band_ids: Vec<u64> = band.band.iter().map(|t| t.id).collect();
    assert!(truth_sky.iter().all(|t| band_ids.contains(&t.id)));
}

#[test]
fn google_flights_rate_limit_yields_anytime_subset() {
    let instance = gflights::generate_instance(&gflights::GFlightsConfig {
        itineraries: 150,
        seed: 7,
    });
    let truth = bnl_skyline(&instance.tuples, &instance.schema);
    let price = instance.schema.attr_by_name("price").unwrap();
    let db = instance
        .into_db(Box::new(SingleAttributeRanker::new(price)), 1)
        .with_rate_limit(RateLimit::new(25));

    let result = MqDbSky::new().discover(&db).unwrap();
    assert!(result.query_cost <= 25);
    assert_eq!(db.queries_issued(), result.query_cost);
    // Every reported tuple is a true skyline flight (anytime soundness for
    // the k = 1 interface), and at least one was found.
    let truth_ids: Vec<u64> = truth.iter().map(|t| t.id).collect();
    assert!(!result.skyline.is_empty());
    assert!(result.skyline.iter().all(|t| truth_ids.contains(&t.id)));
    // The trace never exceeds the quota and is monotone.
    let mut prev = 0;
    for p in &result.trace {
        assert!(p.queries <= 25);
        assert!(p.skyline_found >= prev);
        prev = p.skyline_found;
    }
}

#[test]
fn flights_mixed_interface_discovery_is_complete() {
    let base = flights_dot::generate(&flights_dot::FlightsDotConfig { n: 2_000, seed: 11 });
    let ds = base.project(&[
        "dep_delay",
        "taxi_out",
        "distance_group_long",
        "delay_group",
    ]);
    let ds = ds
        .with_interface("dep_delay", InterfaceType::Rq)
        .with_interface("taxi_out", InterfaceType::Sq);
    let truth = bnl_skyline(&ds.tuples, &ds.schema);
    let db = ds.into_db_sum(10);
    let result = MqDbSky::new().discover(&db).unwrap();
    assert!(result.complete);
    assert!(same_ids(&result.skyline, &truth));
    assert_eq!(result.query_cost, db.queries_issued());
}

#[test]
fn all_discoverers_agree_on_an_rq_database() {
    let ds = synthetic::distinct_grid(&[30, 30, 30], 300, 5);
    let truth = bnl_skyline(&ds.tuples, &ds.schema);

    for (name, result) in [
        (
            "SQ",
            SqDbSky::new().discover(&ds.clone().into_db_sum(5)).unwrap(),
        ),
        (
            "RQ",
            RqDbSky::new().discover(&ds.clone().into_db_sum(5)).unwrap(),
        ),
        (
            "MQ",
            MqDbSky::new().discover(&ds.clone().into_db_sum(5)).unwrap(),
        ),
        (
            "BASELINE",
            BaselineCrawl::new()
                .discover(&ds.clone().into_db_sum(5))
                .unwrap(),
        ),
    ] {
        assert!(result.complete, "{name} did not complete");
        assert!(
            same_ids(&result.skyline, &truth),
            "{name} disagrees with ground truth"
        );
    }
}

#[test]
fn pq_discovery_on_flight_group_attributes() {
    let base = flights_dot::generate(&flights_dot::FlightsDotConfig { n: 3_000, seed: 21 });
    let ds = base.project(&["distance_group_long", "air_time_group", "delay_group"]);
    let truth = bnl_skyline(&ds.tuples, &ds.schema);
    let db = ds.into_db_sum(10);
    let result = PqDbSky::new().discover(&db).unwrap();
    assert!(result.complete);
    // Group attributes are heavily duplicated, so compare by distinct value
    // combinations rather than tuple ids.
    let mut found: Vec<Vec<u32>> = result.skyline.iter().map(|t| t.values.clone()).collect();
    let mut expected: Vec<Vec<u32>> = truth.iter().map(|t| t.values.clone()).collect();
    found.sort();
    found.dedup();
    expected.sort();
    expected.dedup();
    assert_eq!(found, expected);
}

#[test]
fn discovery_is_far_cheaper_than_crawling_on_range_interfaces() {
    let base = flights_dot::generate(&flights_dot::FlightsDotConfig { n: 4_000, seed: 3 });
    let names = [
        "dep_delay",
        "taxi_out",
        "taxi_in",
        "air_time",
        "arrival_delay",
    ];
    let mut ds = base.project(&names);
    for n in &names {
        ds = ds.with_interface(n, InterfaceType::Rq);
    }
    let rq = RqDbSky::new()
        .discover(&ds.clone().into_db_sum(10))
        .unwrap();
    let crawl = BaselineCrawl::new().discover(&ds.into_db_sum(10)).unwrap();
    assert!(rq.complete && crawl.complete);
    assert!(
        rq.query_cost * 3 < crawl.query_cost,
        "discovery ({}) should be far cheaper than crawling ({})",
        rq.query_cost,
        crawl.query_cost
    );
    assert!(same_ids(&rq.skyline, &crawl.skyline));
}
