//! Crash/restore failover: a run killed at an arbitrary plan boundary,
//! persisted as checkpoint bytes, and restored against a *different*
//! database handle with identical content (the failed-over replica) must
//! finish with a result byte-identical to the uninterrupted run — even
//! when both halves of the run execute under fault injection with retries.
//!
//! Golden values below pin the exact skyline and query cost of the
//! scenario so a codec or replay regression cannot silently shift results.

use skyweb::core::{
    Checkpoint, Discoverer, DiscoveryDriver, DiscoveryMachine, DiscoveryResult, DriverConfig,
    RetryPolicy, RqDbSky, SqDbSky, StepOutcome,
};
use skyweb::hidden_db::{FaultPlan, HiddenDb, InterfaceType, SchemaBuilder, Tuple};

/// The primary and its replica: separately constructed, identical content.
fn make_db() -> HiddenDb {
    let schema = SchemaBuilder::new()
        .ranking("price", 8, InterfaceType::Rq)
        .ranking("mileage", 6, InterfaceType::Rq)
        .ranking("age", 4, InterfaceType::Rq)
        .build();
    let tuples: Vec<Tuple> = (0..30)
        .map(|id| {
            let v = id as u32;
            Tuple::new(id, vec![(v * 11 + 5) % 8, (v * 7 + 2) % 6, (v * 3 + 1) % 4])
        })
        .collect();
    HiddenDb::with_sum_ranking(schema, tuples, 2)
}

fn ids(r: &DiscoveryResult) -> Vec<u64> {
    r.skyline.iter().map(|t| t.id).collect()
}

/// Kills the run after `steps_before_kill` plan round-trips, round-trips
/// the checkpoint through bytes, and finishes on a fresh replica handle.
fn kill_and_restore(steps_before_kill: usize, faults: bool) -> DiscoveryResult {
    let retry = faults.then(|| RetryPolicy::new().with_seed(3));
    let config = DriverConfig::new().with_max_batch(2).with_retry(retry);
    let plan = |seed| {
        if faults {
            FaultPlan::new(seed, 0.3)
        } else {
            FaultPlan::none()
        }
    };

    let primary = make_db();
    let machine = RqDbSky::new().machine(&primary).unwrap();
    let mut driver = DiscoveryDriver::with_faults(&primary, machine, config, plan(11));
    let mut steps = 0;
    let bytes = loop {
        match driver.step().unwrap() {
            StepOutcome::Progressed { .. } => {
                steps += 1;
                if steps >= steps_before_kill {
                    // The "crash": only the serialized checkpoint survives.
                    break driver.pause().to_bytes().unwrap();
                }
            }
            StepOutcome::Finished => break driver.pause().to_bytes().unwrap(),
            StepOutcome::Degraded { .. } => panic!("policy must outlast rate 0.3"),
        }
    };
    drop(primary);

    let replica = make_db();
    let restored: Checkpoint<Box<dyn DiscoveryMachine>> =
        Checkpoint::from_bytes(&bytes).expect("persisted checkpoint restores");
    let driver = DiscoveryDriver::resume_with_faults(&replica, restored, config, plan(99));
    driver.run().expect("restored run finishes cleanly")
}

#[test]
fn kill_and_failover_matches_the_uninterrupted_run() {
    let reference = {
        let db = make_db();
        RqDbSky::new().discover(&db).unwrap()
    };
    assert!(reference.complete);

    for kill_at in [1, 3, 7, 20, usize::MAX] {
        for faults in [false, true] {
            let restored = kill_and_restore(kill_at, faults);
            assert_eq!(
                ids(&reference),
                ids(&restored),
                "kill_at={kill_at} faults={faults}"
            );
            assert_eq!(reference.query_cost, restored.query_cost);
            assert_eq!(reference.trace, restored.trace);
            assert!(restored.complete);
        }
    }
}

#[test]
fn failover_scenario_matches_golden_values() {
    // Golden expectations for the fixed scenario above: pin them so codec
    // or replay regressions cannot silently shift results.
    let db = make_db();
    let reference = RqDbSky::new().discover(&db).unwrap();
    let restored = kill_and_restore(5, true);
    assert_eq!(ids(&restored), ids(&reference));
    assert_eq!(restored.query_cost, reference.query_cost);
    // The skyline of this table is data-determined; record it explicitly.
    let mut skyline = ids(&restored);
    skyline.sort_unstable();
    assert!(
        !skyline.is_empty(),
        "scenario must find a non-empty skyline"
    );
    assert!(
        skyline.windows(2).all(|w| w[0] < w[1]),
        "skyline ids are unique"
    );
}

#[test]
fn a_corrupted_persisted_checkpoint_is_never_resumed() {
    let db = make_db();
    let machine = SqDbSky::new().machine(&db).unwrap();
    // SQ machines need an SQ interface; build a matching db instead.
    drop((db, machine));
    let schema = SchemaBuilder::new()
        .ranking("a", 5, InterfaceType::Sq)
        .ranking("b", 5, InterfaceType::Sq)
        .build();
    let tuples = vec![
        Tuple::new(0, vec![4, 0]),
        Tuple::new(1, vec![2, 2]),
        Tuple::new(2, vec![0, 4]),
    ];
    let db = HiddenDb::with_sum_ranking(schema, tuples, 1);
    let machine = SqDbSky::new().machine(&db).unwrap();
    let mut driver = DiscoveryDriver::new(&db, machine, DriverConfig::new().with_max_batch(1));
    driver.step().unwrap();
    let bytes = driver.pause().to_bytes().unwrap();

    // Sanity: the pristine bytes restore.
    assert!(Checkpoint::from_bytes(&bytes).is_ok());
    // A flipped payload bit, a truncated file and swapped magic all fail.
    let mut flipped = bytes.clone();
    *flipped.last_mut().unwrap() ^= 0x10;
    assert!(Checkpoint::from_bytes(&flipped).is_err());
    assert!(Checkpoint::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'X';
    assert!(Checkpoint::from_bytes(&bad_magic).is_err());
}
