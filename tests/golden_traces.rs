//! Golden-trace regression tests: exact query costs, anytime traces and
//! access-log fingerprints for fig14/fig15-style SQ runs and the
//! point-crawl odometer, pinned against hardcoded values.
//!
//! The discovery machines and the engine's shared-prefix batch executor are
//! required to be *byte-identical* to sequential per-query execution; these
//! goldens make that contract regression-testable end to end — an executor
//! or machine change that silently altered algorithm behavior (query order,
//! costs, traces, responses) shifts a fingerprint and fails here. Each test
//! additionally re-runs its workload with batching forced off
//! (`max_batch = 1`, the pre-batching round-trip pattern) and asserts the
//! two runs identical, so a golden can never drift *because of* batching.

use skyweb::core::{
    BaselineCrawl, Discoverer, DiscoveryDriver, DiscoveryMachine, DiscoveryResult, DriverConfig,
    MqDbSky, PointSpaceCrawl, Pq2dSky, PqDbSky, RqDbSky, RqSkyband, SqDbSky,
};
use skyweb::datagen::flights_dot;
use skyweb::hidden_db::{
    HiddenDb, InterfaceType, MemSource, SchemaBuilder, SegmentOpenOptions, SegmentWriter,
    SumRanker, Tuple,
};

/// FNV-1a over a byte stream: the fingerprint primitive for traces and
/// access logs (stable across platforms; no dependency on hash maps).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// Fingerprint of a discovery result: cost, completion, sorted skyline ids,
/// retrieved size and the full anytime trace.
fn result_fingerprint(r: &DiscoveryResult) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(r.query_cost);
    h.write_u64(u64::from(r.complete));
    let mut ids: Vec<u64> = r.skyline.iter().map(|t| t.id).collect();
    ids.sort_unstable();
    for id in ids {
        h.write_u64(id);
    }
    h.write_u64(r.retrieved.len() as u64);
    for p in &r.trace {
        h.write_u64(p.queries);
        h.write_u64(p.skyline_found as u64);
    }
    h.0
}

/// Fingerprint of the access log: every entry's sequence number, SQL
/// rendering, matching count, returned count and overflow flag — the exact
/// query trace the database served, in order.
fn log_fingerprint(db: &HiddenDb) -> u64 {
    let mut h = Fnv::new();
    for e in db.access_log().entries() {
        h.write_u64(e.seq);
        h.write(e.query.as_bytes());
        h.write_u64(e.matched as u64);
        h.write_u64(e.returned as u64);
        h.write_u64(u64::from(e.overflowed));
    }
    h.0
}

/// Runs `alg` twice on identical databases built by `mk_db` — batched
/// (default driver config, sibling-annotated plans through the shared-prefix
/// executor) and forced sequential (`max_batch = 1`) — asserts the runs
/// identical, and returns the batched run's fingerprints.
fn run_and_crosscheck(
    alg: &dyn Discoverer,
    mk_db: impl Fn() -> HiddenDb,
) -> (DiscoveryResult, u64, u64) {
    let batched_db = mk_db();
    batched_db.enable_access_log();
    let machine = alg.machine(&batched_db).expect("supported interface");
    let batched = DiscoveryDriver::new(&batched_db, machine, DriverConfig::new())
        .run()
        .expect("batched run");

    let seq_db = mk_db();
    seq_db.enable_access_log();
    let machine = alg.machine(&seq_db).expect("supported interface");
    let sequential = DiscoveryDriver::new(&seq_db, machine, DriverConfig::new().with_max_batch(1))
        .run()
        .expect("sequential run");

    assert_eq!(
        result_fingerprint(&batched),
        result_fingerprint(&sequential),
        "batched and forced-sequential runs diverged"
    );
    assert_eq!(
        log_fingerprint(&batched_db),
        log_fingerprint(&seq_db),
        "batched and forced-sequential access logs diverged"
    );
    let (rfp, lfp) = (result_fingerprint(&batched), log_fingerprint(&batched_db));
    (batched, rfp, lfp)
}

/// A fig14-style workload: DOT-like flights, all nine primary ranking
/// attributes as one-ended (SQ) interfaces, k = 10 — the SQ BFS tree whose
/// frontier the batch executor pipelines.
fn fig14_style_db(n: usize) -> HiddenDb {
    let base = flights_dot::generate(&flights_dot::FlightsDotConfig { n, seed: 2015 });
    let names: Vec<&str> = flights_dot::PRIMARY_RANKING.to_vec();
    let mut ds = base.project(&names);
    for name in &names {
        ds = ds.with_interface(name, InterfaceType::Sq);
    }
    ds.into_db_sum(10)
}

/// A fig15-style workload: the m-sweep shape (here m = 4) over two-ended
/// (RQ) interfaces, exercised by both SQ- and RQ-DB-SKY.
fn fig15_style_db(n: usize) -> HiddenDb {
    let base = flights_dot::generate(&flights_dot::FlightsDotConfig { n, seed: 2015 });
    let names: Vec<&str> = flights_dot::PRIMARY_RANKING[..4].to_vec();
    let mut ds = base.project(&names);
    for name in &names {
        ds = ds.with_interface(name, InterfaceType::Rq);
    }
    ds.into_db_sum(10)
}

/// Round-trips a freshly built database through the persistent columnar
/// segment store (write → reopen from bytes) so a golden workload can run
/// against the lazily-hydrating segment backend instead of the RAM build.
fn seg_clone(db: &HiddenDb) -> HiddenDb {
    seg_clone_with(db, 2, SegmentOpenOptions::new())
}

/// [`seg_clone`] with an explicit on-disk format version and open options —
/// the goldens run under v1 files, v2 files and an eviction-forcing cache
/// budget.
fn seg_clone_with(db: &HiddenDb, version: u16, options: SegmentOpenOptions) -> HiddenDb {
    let bytes = SegmentWriter::new()
        .with_format_version(version)
        .write(db)
        .expect("RAM-backed databases always serialize");
    HiddenDb::open_segment_source_with(
        Box::new(MemSource::new(bytes)),
        Box::new(SumRanker),
        options,
    )
    .expect("a fresh segment reopens")
}

#[test]
fn golden_fig14_style_sq_run() {
    let (result, result_fp, log_fp) = run_and_crosscheck(&SqDbSky::new(), || fig14_style_db(2_000));
    assert!(result.complete);
    assert_eq!(result.query_cost, 397, "query cost drifted");
    assert_eq!(result.skyline.len(), 40, "skyline size drifted");
    assert_eq!(result_fp, 0x104f7d8f829628b6, "result fingerprint drifted");
    assert_eq!(log_fp, 0x08f6222effcf2aee, "access-log fingerprint drifted");
}

#[test]
fn golden_fig15_style_sq_and_rq_runs() {
    let (sq, sq_fp, sq_log_fp) = run_and_crosscheck(&SqDbSky::new(), || fig15_style_db(2_000));
    assert!(sq.complete);
    assert_eq!(sq.query_cost, 41, "SQ query cost drifted");
    assert_eq!(sq_fp, 0x6c1951198a71976f, "SQ result fingerprint drifted");
    assert_eq!(
        sq_log_fp, 0x28608e066bc3c748,
        "SQ access-log fingerprint drifted"
    );

    let (rq, rq_fp, rq_log_fp) = run_and_crosscheck(&RqDbSky::new(), || fig15_style_db(2_000));
    assert!(rq.complete);
    assert_eq!(rq.query_cost, 21, "RQ query cost drifted");
    assert_eq!(rq_fp, 0x30bb8ecb2ce00ef7, "RQ result fingerprint drifted");
    assert_eq!(
        rq_log_fp, 0xce854707af497c01,
        "RQ access-log fingerprint drifted"
    );
    assert_eq!(
        sq.skyline.len(),
        rq.skyline.len(),
        "SQ and RQ must certify the same skyline"
    );
}

#[test]
fn golden_point_crawl_odometer() {
    let mk_db = || {
        let schema = SchemaBuilder::new()
            .ranking("x", 4, InterfaceType::Pq)
            .ranking("y", 3, InterfaceType::Pq)
            .ranking("z", 3, InterfaceType::Pq)
            .build();
        let tuples: Vec<Tuple> = (0..30u64)
            .map(|i| {
                Tuple::new(
                    i,
                    vec![(i % 4) as u32, ((i / 2) % 3) as u32, ((i * 5) % 3) as u32],
                )
            })
            .collect();
        HiddenDb::new(schema, tuples, Box::new(SumRanker), 2)
    };
    let (result, result_fp, log_fp) = run_and_crosscheck(&PointSpaceCrawl::new(), mk_db);
    assert!(result.complete);
    // The odometer enumerates the whole 4·3·3 grid, one query per cell.
    assert_eq!(result.query_cost, 36);
    assert_eq!(result_fp, 0xd7ba5e8a445f1990, "result fingerprint drifted");
    assert_eq!(log_fp, 0x3c13b903845f3919, "access-log fingerprint drifted");
    // The first odometer queries, literally: last attribute fastest.
    let db = mk_db();
    db.enable_access_log();
    let machine = PointSpaceCrawl::new().machine(&db).unwrap();
    DiscoveryDriver::new(&db, machine, DriverConfig::new())
        .run()
        .unwrap();
    let log = db.access_log();
    assert_eq!(
        log.entries()[0].query,
        "SELECT * FROM D WHERE A0 = 0 AND A1 = 0 AND A2 = 0"
    );
    assert_eq!(
        log.entries()[1].query,
        "SELECT * FROM D WHERE A0 = 0 AND A1 = 0 AND A2 = 1"
    );
    assert_eq!(
        log.entries()[3].query,
        "SELECT * FROM D WHERE A0 = 0 AND A1 = 1 AND A2 = 0"
    );
}

// --- Segment-backed goldens ------------------------------------------------
//
// The same pinned fingerprints, with every database round-tripped through
// the columnar segment store first: the lazily-hydrating backend must be
// byte-identical to the RAM build — costs, traces, responses and the full
// access log.

#[test]
fn golden_fig14_style_sq_run_segment_backed() {
    let (result, result_fp, log_fp) =
        run_and_crosscheck(&SqDbSky::new(), || seg_clone(&fig14_style_db(2_000)));
    assert!(result.complete);
    assert_eq!(result.query_cost, 397, "segment-backed query cost drifted");
    assert_eq!(
        result_fp, 0x104f7d8f829628b6,
        "segment-backed result fingerprint drifted"
    );
    assert_eq!(
        log_fp, 0x08f6222effcf2aee,
        "segment-backed access-log fingerprint drifted"
    );
}

#[test]
fn golden_fig15_style_runs_segment_backed() {
    let (sq, sq_fp, sq_log_fp) =
        run_and_crosscheck(&SqDbSky::new(), || seg_clone(&fig15_style_db(2_000)));
    assert!(sq.complete);
    assert_eq!(sq.query_cost, 41, "segment-backed SQ query cost drifted");
    assert_eq!(sq_fp, 0x6c1951198a71976f, "SQ result fingerprint drifted");
    assert_eq!(sq_log_fp, 0x28608e066bc3c748, "SQ log fingerprint drifted");

    let (rq, rq_fp, rq_log_fp) =
        run_and_crosscheck(&RqDbSky::new(), || seg_clone(&fig15_style_db(2_000)));
    assert!(rq.complete);
    assert_eq!(rq.query_cost, 21, "segment-backed RQ query cost drifted");
    assert_eq!(rq_fp, 0x30bb8ecb2ce00ef7, "RQ result fingerprint drifted");
    assert_eq!(rq_log_fp, 0xce854707af497c01, "RQ log fingerprint drifted");
}

/// A small deterministic database with every attribute on the given
/// interface type — the substrate for the all-machines cross-check.
fn small_db(m: usize, itf: Option<InterfaceType>) -> HiddenDb {
    let domains = [5u32, 4, 3];
    let mixed = [InterfaceType::Sq, InterfaceType::Rq, InterfaceType::Pq];
    let mut builder = SchemaBuilder::new();
    for i in 0..m {
        builder = builder.ranking(format!("a{i}"), domains[i], itf.unwrap_or(mixed[i]));
    }
    let tuples: Vec<Tuple> = (0..60u64)
        .map(|i| {
            let v = [(i * 7 % 5) as u32, (i * 5 % 4) as u32, (i % 3) as u32];
            Tuple::new(i, v[..m].to_vec())
        })
        .collect();
    HiddenDb::new(builder.build(), tuples, Box::new(SumRanker), 2)
}

/// Runs one machine to completion on the RAM build and on segment
/// round-trips of the *same* database — a v1 file, a v2 file, and a v2 file
/// behind a cache budget tiny enough to force mid-run eviction — asserting
/// results, exact costs and access-log fingerprints identical on every
/// backend.
fn assert_segment_matches_ram(
    mk_db: &dyn Fn() -> HiddenDb,
    mk_machine: &dyn Fn(&HiddenDb) -> Box<dyn DiscoveryMachine>,
    label: &str,
) {
    let ram_db = mk_db();
    ram_db.enable_access_log();
    let ram = DiscoveryDriver::new(&ram_db, mk_machine(&ram_db), DriverConfig::new())
        .run()
        .expect("RAM run");

    let variants: [(&str, u16, SegmentOpenOptions); 3] = [
        ("v1", 1, SegmentOpenOptions::new()),
        ("v2", 2, SegmentOpenOptions::new()),
        (
            "v2+tiny-cache",
            2,
            SegmentOpenOptions::new().with_cache_budget(4_096),
        ),
    ];
    for (variant, version, options) in variants {
        let seg_db = seg_clone_with(&mk_db(), version, options);
        seg_db.enable_access_log();
        let seg = DiscoveryDriver::new(&seg_db, mk_machine(&seg_db), DriverConfig::new())
            .run()
            .expect("segment run");

        assert_eq!(
            ram.query_cost, seg.query_cost,
            "{label} [{variant}]: query costs diverged between RAM and segment backends"
        );
        assert_eq!(
            result_fingerprint(&ram),
            result_fingerprint(&seg),
            "{label} [{variant}]: discovery results diverged between RAM and segment backends"
        );
        assert_eq!(
            log_fingerprint(&ram_db),
            log_fingerprint(&seg_db),
            "{label} [{variant}]: access logs diverged between RAM and segment backends"
        );
    }
}

type DbFactory = Box<dyn Fn() -> HiddenDb>;
type MachineFactory = Box<dyn Fn(&HiddenDb) -> Box<dyn DiscoveryMachine>>;

#[test]
fn all_eight_machines_are_backend_agnostic() {
    let cases: Vec<(&str, DbFactory, MachineFactory)> = vec![
        (
            "sq-db-sky",
            Box::new(|| small_db(3, Some(InterfaceType::Sq))),
            Box::new(|db| SqDbSky::new().machine(db).unwrap()),
        ),
        (
            "rq-db-sky",
            Box::new(|| small_db(3, Some(InterfaceType::Rq))),
            Box::new(|db| RqDbSky::new().machine(db).unwrap()),
        ),
        (
            "pq-db-sky",
            Box::new(|| small_db(3, Some(InterfaceType::Pq))),
            Box::new(|db| PqDbSky::new().machine(db).unwrap()),
        ),
        (
            "pq-2d-sky",
            Box::new(|| small_db(2, Some(InterfaceType::Pq))),
            Box::new(|db| Pq2dSky::new().machine(db).unwrap()),
        ),
        (
            "mq-db-sky",
            Box::new(|| small_db(3, None)),
            Box::new(|db| MqDbSky::new().machine(db).unwrap()),
        ),
        (
            "rq-skyband",
            Box::new(|| small_db(3, Some(InterfaceType::Rq))),
            Box::new(|db| Box::new(RqSkyband::new(2).build_machine(db).unwrap())),
        ),
        (
            "baseline-crawl",
            Box::new(|| small_db(3, Some(InterfaceType::Rq))),
            Box::new(|db| BaselineCrawl::new().machine(db).unwrap()),
        ),
        (
            "point-space-crawl",
            Box::new(|| small_db(3, Some(InterfaceType::Pq))),
            Box::new(|db| PointSpaceCrawl::new().machine(db).unwrap()),
        ),
    ];
    for (label, mk_db, mk_machine) in &cases {
        assert_segment_matches_ram(mk_db.as_ref(), mk_machine.as_ref(), label);
    }
}
