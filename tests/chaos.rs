//! Chaos differential battery: every algorithm machine, driven through the
//! deterministic fault-injection oracle at several fault rates and seeds
//! with the default retry policy, must converge to a result identical to
//! the fault-free run — skyline, retrieved order, query cost, anytime
//! trace — and must charge the database for exactly the same number of
//! queries (faulted attempts never reach the server).
//!
//! The battery also pins the degraded path: when the retry policy is
//! guaranteed to give up (certain faults, two attempts), every machine
//! halts into a partial anytime result instead of aborting, and without a
//! policy the transient error propagates.

use skyweb::core::{
    BaselineCrawl, Discoverer, DiscoveryDriver, DiscoveryError, DiscoveryResult, DriverConfig,
    MqDbSky, PointSpaceCrawl, Pq2dSky, PqDbSky, RetryPolicy, RqDbSky, SqDbSky, StepOutcome,
};
use skyweb::hidden_db::{FaultPlan, HiddenDb, InterfaceType, SchemaBuilder, Tuple};

/// A deterministic 3-attribute database; `interface` selects the search
/// form exposed on every attribute.
fn chaos_db(interface: InterfaceType, k: usize) -> HiddenDb {
    let mut builder = SchemaBuilder::new();
    for (name, domain) in [("a", 5u32), ("b", 4), ("c", 3)] {
        builder = builder.ranking(name, domain, interface);
    }
    // A fixed LCG fills the table so the test needs no RNG dependency.
    let mut state = 0x2545_F491u64;
    let mut next = |m: u32| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as u32) % m
    };
    let tuples: Vec<Tuple> = (0..24)
        .map(|id| Tuple::new(id, vec![next(5), next(4), next(3)]))
        .collect();
    HiddenDb::with_sum_ranking(builder.build(), tuples, k)
}

fn algorithms() -> Vec<(Box<dyn Discoverer>, InterfaceType)> {
    vec![
        (Box::new(SqDbSky::new()), InterfaceType::Sq),
        (Box::new(RqDbSky::new()), InterfaceType::Rq),
        (Box::new(PqDbSky::new()), InterfaceType::Pq),
        (Box::new(MqDbSky::new()), InterfaceType::Rq),
        (Box::new(BaselineCrawl::new()), InterfaceType::Rq),
        (Box::new(PointSpaceCrawl::new()), InterfaceType::Pq),
    ]
}

fn assert_identical(name: &str, a: &DiscoveryResult, b: &DiscoveryResult) {
    let ids = |r: &DiscoveryResult| -> Vec<u64> { r.skyline.iter().map(|t| t.id).collect() };
    let retrieved =
        |r: &DiscoveryResult| -> Vec<u64> { r.retrieved.iter().map(|t| t.id).collect() };
    assert_eq!(ids(a), ids(b), "{name}: skylines diverged");
    assert_eq!(
        retrieved(a),
        retrieved(b),
        "{name}: retrieved sets diverged"
    );
    assert_eq!(a.query_cost, b.query_cost, "{name}: query costs diverged");
    assert_eq!(a.trace, b.trace, "{name}: anytime traces diverged");
    assert_eq!(a.complete, b.complete, "{name}: completion flags diverged");
}

/// One faulted run: returns the result plus the retry count, asserting the
/// run never degraded and the server saw no faulted attempts.
fn faulted_run(alg: &dyn Discoverer, db: &HiddenDb, faults: FaultPlan) -> (DiscoveryResult, u64) {
    let machine = alg.machine(db).expect("interface supported");
    let config = DriverConfig::new().with_retry(Some(RetryPolicy::new()));
    let mut driver = DiscoveryDriver::with_faults(db, machine, config, faults);
    loop {
        match driver
            .step()
            .expect("transient faults are retried, not raised")
        {
            StepOutcome::Progressed { .. } => continue,
            StepOutcome::Finished => break,
            StepOutcome::Degraded { .. } => {
                panic!(
                    "{}: default policy must outlast these fault rates",
                    alg.name()
                )
            }
        }
    }
    let retries = driver.retries();
    (driver.finish().unwrap(), retries)
}

#[test]
fn all_machines_converge_under_chaos() {
    for (alg, interface) in algorithms() {
        let db_ref = chaos_db(interface, 2);
        let reference = alg.discover(&db_ref).expect("fault-free reference");
        assert_eq!(reference.query_cost, db_ref.queries_issued());

        let mut saw_retries = false;
        for rate in [0.05, 0.2, 0.5] {
            for seed in [1u64, 42, 0xDEAD_BEEF] {
                let db = chaos_db(interface, 2);
                let (result, retries) = faulted_run(alg.as_ref(), &db, FaultPlan::new(seed, rate));
                assert_identical(alg.name(), &reference, &result);
                // Faulted attempts never reached the database: it was
                // charged exactly the fault-free cost.
                assert_eq!(
                    db.queries_issued(),
                    reference.query_cost,
                    "{}: faulted attempts leaked to the server",
                    alg.name()
                );
                saw_retries |= retries > 0;
            }
        }
        assert!(
            saw_retries,
            "{}: the battery must actually exercise the retry path",
            alg.name()
        );
    }
}

#[test]
fn pq2d_converges_under_chaos() {
    // PQ-2D-SKY requires exactly two attributes, so it gets its own table.
    let make_db = || {
        let schema = SchemaBuilder::new()
            .ranking("x", 6, InterfaceType::Pq)
            .ranking("y", 5, InterfaceType::Pq)
            .build();
        let tuples: Vec<Tuple> = (0..20)
            .map(|id| Tuple::new(id, vec![(id as u32 * 7 + 3) % 6, (id as u32 * 5 + 1) % 5]))
            .collect();
        HiddenDb::with_sum_ranking(schema, tuples, 2)
    };
    let alg = Pq2dSky::new();
    let db_ref = make_db();
    let reference = alg.discover(&db_ref).unwrap();
    for rate in [0.05, 0.2, 0.5] {
        let db = make_db();
        let (result, _) = faulted_run(&alg, &db, FaultPlan::new(9, rate));
        assert_identical("PQ-2D-SKY", &reference, &result);
        assert_eq!(db.queries_issued(), reference.query_cost);
    }
}

#[test]
fn every_machine_degrades_gracefully_when_retries_exhaust() {
    for (alg, interface) in algorithms() {
        let db = chaos_db(interface, 2);
        let machine = alg.machine(&db).unwrap();
        let config = DriverConfig::new().with_retry(Some(RetryPolicy::new().with_max_attempts(2)));
        // Certain faults with no consecutive cap: give-up is guaranteed.
        let faults = FaultPlan::new(7, 1.0).with_max_consecutive(u32::MAX);
        let mut driver = DiscoveryDriver::with_faults(&db, machine, config, faults);
        let mut outcome = driver.step().unwrap();
        while let StepOutcome::Progressed { .. } = outcome {
            outcome = driver.step().unwrap();
        }
        assert!(
            matches!(outcome, StepOutcome::Degraded { .. }),
            "{}: expected a degraded halt",
            alg.name()
        );
        let err = driver.last_error().expect("give-up records the error");
        assert!(err.is_transient(), "{}: {err:?}", alg.name());
        let result = driver.finish().unwrap();
        assert!(
            !result.complete,
            "{}: degraded runs are partial",
            alg.name()
        );
        assert_eq!(
            db.queries_issued(),
            0,
            "{}: nothing reached the server",
            alg.name()
        );
    }
}

#[test]
fn transient_faults_without_a_policy_propagate() {
    for (alg, interface) in algorithms() {
        let db = chaos_db(interface, 2);
        let machine = alg.machine(&db).unwrap();
        let faults = FaultPlan::new(7, 1.0).with_max_consecutive(u32::MAX);
        let mut driver = DiscoveryDriver::with_faults(&db, machine, DriverConfig::new(), faults);
        match driver.step() {
            Err(DiscoveryError::Query(e)) => {
                assert!(e.is_transient(), "{}: {e:?}", alg.name())
            }
            other => panic!(
                "{}: expected a propagated transient error, got {other:?}",
                alg.name()
            ),
        }
    }
}
