//! Differential property tests of the client-side knowledge base: for
//! random ingest streams and random probe queries of **every** supported
//! shape, [`KnowledgeBase`] must agree with a naive reference collector
//! that keeps plain vectors and answers every question by exhaustive scan —
//! the exact data structure the old `Collector` was.
//!
//! A second suite pins the discovery algorithms end to end: run the same
//! algorithm against an [`ExecStrategy::Indexed`] and an
//! [`ExecStrategy::Scan`] database and require identical `DiscoveryResult`s
//! (skyline, retrieved set, query cost, trace), so the knowledge base and
//! both server execution strategies are checked as one system.

use proptest::prelude::*;

use skyweb::core::{Discoverer, KnowledgeBase, MqDbSky, RqDbSky, SqDbSky};
use skyweb::hidden_db::{
    dominates_on, CmpOp, ExecStrategy, HiddenDb, InterfaceType, Predicate, Query,
    RandomSkylineRanker, Ranker, SchemaBuilder, SumRanker, Tuple, WorstCaseRanker,
};

/// The naive reference: what the old `Collector` did, minus the incremental
/// BNL (the skyline is recomputed by exhaustive scan on demand).
struct NaiveReference {
    attrs: Vec<usize>,
    seen: Vec<Tuple>,
}

impl NaiveReference {
    fn new(attrs: Vec<usize>) -> Self {
        NaiveReference {
            attrs,
            seen: Vec::new(),
        }
    }

    fn ingest(&mut self, tuples: &[Tuple]) {
        for t in tuples {
            if !self.seen.iter().any(|s| s.id == t.id) {
                self.seen.push(t.clone());
            }
        }
    }

    fn skyline_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .seen
            .iter()
            .filter(|t| {
                !self
                    .seen
                    .iter()
                    .any(|u| u.id != t.id && dominates_on(u, t, &self.attrs))
            })
            .map(|t| t.id)
            .collect();
        ids.sort_unstable();
        ids
    }

    fn band_ids(&self, level: usize) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .seen
            .iter()
            .filter(|t| {
                self.seen
                    .iter()
                    .filter(|u| u.id != t.id && dominates_on(u, t, &self.attrs))
                    .count()
                    < level
            })
            .map(|t| t.id)
            .collect();
        ids.sort_unstable();
        ids
    }

    fn any_seen_matches(&self, q: &Query) -> bool {
        self.seen.iter().any(|t| q.matches(t))
    }

    fn has_skyline_dominator(&self, t: &Tuple) -> bool {
        let sky = self.skyline_ids();
        self.seen
            .iter()
            .any(|s| sky.binary_search(&s.id).is_ok() && dominates_on(s, t, &self.attrs))
    }
}

#[derive(Debug, Clone)]
struct KbWorkload {
    m: usize,
    band: usize,
    /// Ingest batches of raw tuple values.
    batches: Vec<Vec<Vec<u32>>>,
    /// Probe queries: (attr, op-code, value) conjunctions — every CmpOp
    /// appears, including the equality pivots and `≥`-rooted boxes the old
    /// collector could only answer by full scan.
    probes: Vec<Vec<(usize, u8, u32)>>,
    /// Dominance probes for `dominated_by_skyline`.
    dom_probes: Vec<Vec<u32>>,
}

fn kb_workload() -> impl Strategy<Value = KbWorkload> {
    (2usize..=4, 1usize..=3).prop_flat_map(|(m, band)| {
        let batch = prop::collection::vec(prop::collection::vec(0u32..8, m), 0..=12);
        let batches = prop::collection::vec(batch, 1..=5);
        let probe = prop::collection::vec((0..m, 0u8..5, 0u32..9), 0..=3);
        let probes = prop::collection::vec(probe, 1..=8);
        let dom_probes = prop::collection::vec(prop::collection::vec(0u32..8, m), 1..=4);
        (batches, probes, dom_probes).prop_map(move |(batches, probes, dom_probes)| KbWorkload {
            m,
            band,
            batches,
            probes,
            dom_probes,
        })
    })
}

fn query_of(raw: &[(usize, u8, u32)]) -> Query {
    Query::new(
        raw.iter()
            .map(|&(attr, op, value)| {
                let op = match op {
                    0 => CmpOp::Lt,
                    1 => CmpOp::Le,
                    2 => CmpOp::Eq,
                    3 => CmpOp::Ge,
                    _ => CmpOp::Gt,
                };
                Predicate::new(attr, op, value)
            })
            .collect(),
    )
}

fn sorted_ids(tuples: &[std::sync::Arc<Tuple>]) -> Vec<u64> {
    let mut ids: Vec<u64> = tuples.iter().map(|t| t.id).collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        max_shrink_iters: 400,
        .. ProptestConfig::default()
    })]

    /// After every ingest batch, the knowledge base agrees with the naive
    /// reference on the skyline, every band level, every query shape of
    /// `any_seen_matches`, and `dominated_by_skyline` existence (and any
    /// dominator it returns really is a matching skyline dominator).
    #[test]
    fn knowledge_base_matches_naive_reference(w in kb_workload()) {
        let attrs: Vec<usize> = (0..w.m).collect();
        let mut kb = KnowledgeBase::with_band(attrs.clone(), w.band);
        let mut naive = NaiveReference::new(attrs.clone());

        let mut next_id = 0u64;
        for batch in &w.batches {
            let tuples: Vec<Tuple> = batch
                .iter()
                .map(|values| {
                    next_id += 1;
                    Tuple::new(next_id, values.clone())
                })
                .collect();
            naive.ingest(&tuples);
            kb.ingest_owned(tuples);

            // Skyline and every band level up to the configured band.
            let naive_sky = naive.skyline_ids();
            prop_assert_eq!(kb.skyline_len(), naive_sky.len());
            prop_assert_eq!(sorted_ids(&kb.skyline_tuples()), naive_sky);
            for level in 1..=w.band {
                prop_assert_eq!(
                    sorted_ids(&kb.band_tuples(level)),
                    naive.band_ids(level),
                    "band level {} of {}", level, w.band
                );
            }

            // Exact membership for every probe shape.
            for raw in &w.probes {
                let q = query_of(raw);
                prop_assert_eq!(
                    kb.any_seen_matches(&q),
                    naive.any_seen_matches(&q),
                    "query {}", q
                );
            }

            // Dominator probes: existence must agree, and a returned
            // dominator must be a current skyline member that dominates.
            for values in &w.dom_probes {
                let probe = Tuple::new(u64::MAX, values.clone());
                match kb.dominated_by_skyline(&probe) {
                    Some(d) => {
                        prop_assert!(naive.has_skyline_dominator(&probe));
                        prop_assert!(dominates_on(d, &probe, &attrs));
                        prop_assert!(naive.skyline_ids().binary_search(&d.id).is_ok());
                    }
                    None => prop_assert!(!naive.has_skyline_dominator(&probe)),
                }
            }
        }
        prop_assert_eq!(kb.retrieved_len(), naive.seen.len());
    }
}

#[derive(Debug, Clone)]
struct DiscoveryWorkload {
    m: usize,
    rows: Vec<Vec<u32>>,
    k: usize,
    ranker: u8,
    interface: u8,
}

fn discovery_workload() -> impl Strategy<Value = DiscoveryWorkload> {
    (2usize..=3, 1usize..=3, 0u8..3, 0u8..3).prop_flat_map(|(m, k, ranker, interface)| {
        let rows = prop::collection::vec(prop::collection::vec(0u32..7, m), 0..=30);
        rows.prop_map(move |rows| DiscoveryWorkload {
            m,
            rows,
            k,
            ranker,
            interface,
        })
    })
}

fn build_db(w: &DiscoveryWorkload, strategy: ExecStrategy) -> HiddenDb {
    let mut b = SchemaBuilder::new();
    let itf = match w.interface {
        0 => InterfaceType::Rq,
        1 => InterfaceType::Sq,
        _ => InterfaceType::Rq, // MQ run below exercises mixtures separately
    };
    for i in 0..w.m {
        b = b.ranking(format!("a{i}"), 7, itf);
    }
    let tuples: Vec<Tuple> = w
        .rows
        .iter()
        .enumerate()
        .map(|(i, v)| Tuple::new(i as u64, v.clone()))
        .collect();
    let ranker: Box<dyn Ranker> = match w.ranker {
        0 => Box::new(SumRanker),
        1 => Box::new(RandomSkylineRanker::new(1234)),
        _ => Box::new(WorstCaseRanker),
    };
    HiddenDb::new(b.build(), tuples, ranker, w.k).with_strategy(strategy)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    /// End-to-end differential: the same discovery run against the indexed
    /// engine and the naive scan reference must produce identical results —
    /// same skyline, same retrieved set, same query cost, same trace —
    /// under deterministic, randomized and adversarial rankers alike.
    #[test]
    fn discovery_is_identical_under_both_exec_strategies(w in discovery_workload()) {
        let run = |strategy: ExecStrategy| {
            let db = build_db(&w, strategy);
            let result = match w.interface {
                0 => RqDbSky::new().discover(&db),
                1 => SqDbSky::new().discover(&db),
                _ => MqDbSky::new().discover(&db),
            };
            result.expect("discovery run failed")
        };
        let indexed = run(ExecStrategy::Indexed);
        let scan = run(ExecStrategy::Scan);
        prop_assert_eq!(indexed.query_cost, scan.query_cost);
        prop_assert_eq!(indexed.complete, scan.complete);
        prop_assert_eq!(sorted_ids(&indexed.skyline), sorted_ids(&scan.skyline));
        prop_assert_eq!(sorted_ids(&indexed.retrieved), sorted_ids(&scan.retrieved));
        prop_assert_eq!(indexed.trace, scan.trace);
    }
}
