//! Shared infrastructure of the discovery algorithms: the [`Discoverer`]
//! trait, result/trace types, the query client (budget handling) and the
//! tuple collector (anytime skyline maintenance).

use std::collections::HashMap;
use std::fmt;

use skyweb_hidden_db::{
    dominates_on, AttrId, CmpOp, HiddenDb, Query, QueryError, QueryResponse, Session, Tuple,
    TupleId,
};

/// One point of an *anytime trace*: after `queries` issued queries, the
/// client could already certify `skyline_found` tuples as current skyline
/// candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracePoint {
    /// Number of queries issued so far.
    pub queries: u64,
    /// Number of skyline candidates known at that point (the skyline of all
    /// tuples retrieved so far).
    pub skyline_found: usize,
}

/// The outcome of a skyline-discovery run.
#[derive(Debug, Clone)]
pub struct DiscoveryResult {
    /// The discovered skyline tuples (the exact skyline when
    /// [`DiscoveryResult::complete`] is `true`, a subset otherwise).
    pub skyline: Vec<Tuple>,
    /// Every distinct tuple retrieved during the run (skyline and
    /// non-skyline alike); useful for baselines and sky-band
    /// post-processing.
    pub retrieved: Vec<Tuple>,
    /// Number of search queries issued by this run.
    pub query_cost: u64,
    /// The anytime trace: skyline candidates known after each query.
    pub trace: Vec<TracePoint>,
    /// `true` if the algorithm ran to completion; `false` if it stopped
    /// early because the query budget or the database's rate limit was
    /// exhausted (the *anytime* case: `skyline` is then a valid subset).
    pub complete: bool,
}

impl DiscoveryResult {
    /// Average number of queries spent per discovered skyline tuple — the
    /// metric reported in the paper's online experiments.
    pub fn queries_per_skyline(&self) -> f64 {
        if self.skyline.is_empty() {
            self.query_cost as f64
        } else {
            self.query_cost as f64 / self.skyline.len() as f64
        }
    }
}

/// Errors a discovery algorithm can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscoveryError {
    /// The database's search interface does not offer the predicates the
    /// algorithm needs (e.g. running RQ-DB-SKY against a PQ attribute).
    UnsupportedInterface {
        /// Explanation of what is missing.
        reason: String,
    },
    /// The database rejected a query for a reason other than rate limiting
    /// (this indicates a bug in the algorithm or an incompatible schema).
    Query(QueryError),
}

impl fmt::Display for DiscoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiscoveryError::UnsupportedInterface { reason } => {
                write!(f, "unsupported interface: {reason}")
            }
            DiscoveryError::Query(e) => write!(f, "query rejected: {e}"),
        }
    }
}

impl std::error::Error for DiscoveryError {}

impl From<QueryError> for DiscoveryError {
    fn from(e: QueryError) -> Self {
        DiscoveryError::Query(e)
    }
}

/// A skyline-discovery algorithm over a hidden web database.
pub trait Discoverer {
    /// Short algorithm name (e.g. `"SQ-DB-SKY"`).
    fn name(&self) -> &str;

    /// Runs the algorithm against `db` and returns the discovered skyline
    /// together with its query cost and anytime trace.
    fn discover(&self, db: &HiddenDb) -> Result<DiscoveryResult, DiscoveryError>;
}

/// The client-side view of the hidden database used by the algorithms:
/// issues queries, counts them locally, and converts rate-limit /
/// budget exhaustion into a graceful "stop now" signal so that every
/// algorithm retains the paper's *anytime* property.
pub(crate) struct Client<'a> {
    /// One discovery run is one client of the database, so it queries
    /// through its own [`Session`]: private scratch memory (no contention
    /// with concurrent runs on a shared database) and per-client
    /// [`skyweb_hidden_db::QueryStats`] that double as the issued-query
    /// counter.
    session: Session<'a>,
    budget: Option<u64>,
    exhausted: bool,
}

impl<'a> Client<'a> {
    /// Creates a client with an optional client-side query budget.
    pub(crate) fn new(db: &'a HiddenDb, budget: Option<u64>) -> Self {
        Client {
            session: db.session(),
            budget,
            exhausted: false,
        }
    }

    /// The wrapped database.
    pub(crate) fn db(&self) -> &'a HiddenDb {
        self.session.db()
    }

    /// Number of queries issued through this client.
    pub(crate) fn issued(&self) -> u64 {
        self.session.queries_issued()
    }

    /// `true` once the budget or the server-side rate limit was hit.
    pub(crate) fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Issues `query`. Returns `Ok(None)` when the client-side budget or the
    /// server-side rate limit is exhausted (the caller should stop), and
    /// `Err` for any other rejection (which indicates a real bug).
    pub(crate) fn query(&mut self, query: &Query) -> Result<Option<QueryResponse>, DiscoveryError> {
        if self.exhausted {
            return Ok(None);
        }
        if let Some(budget) = self.budget {
            if self.session.queries_issued() >= budget {
                self.exhausted = true;
                return Ok(None);
            }
        }
        match self.session.query(query) {
            Ok(resp) => Ok(Some(resp)),
            Err(QueryError::RateLimitExceeded { .. }) => {
                self.exhausted = true;
                Ok(None)
            }
            Err(e) => Err(DiscoveryError::Query(e)),
        }
    }
}

/// Collects every retrieved tuple, maintains the skyline of the retrieved
/// set incrementally (BNL insertion), and records the anytime trace.
pub(crate) struct Collector {
    attrs: Vec<AttrId>,
    seen: HashMap<TupleId, Tuple>,
    skyline: Vec<Tuple>,
    trace: Vec<TracePoint>,
}

impl Collector {
    /// Creates a collector that evaluates dominance on `attrs`.
    pub(crate) fn new(attrs: Vec<AttrId>) -> Self {
        Collector {
            attrs,
            seen: HashMap::new(),
            skyline: Vec::new(),
            trace: Vec::new(),
        }
    }

    /// Ingests newly returned tuples, updating the retrieved set and the
    /// current skyline. Accepts both plain tuples and the `Arc`-shared
    /// tuples of [`QueryResponse`].
    pub(crate) fn ingest<T: std::borrow::Borrow<Tuple>>(&mut self, tuples: &[T]) {
        for t in tuples {
            let t = t.borrow();
            if self.seen.contains_key(&t.id) {
                continue;
            }
            self.seen.insert(t.id, t.clone());
            // BNL insertion into the current skyline.
            let mut dominated = false;
            let mut i = 0;
            while i < self.skyline.len() {
                if dominates_on(&self.skyline[i], t, &self.attrs) {
                    dominated = true;
                    break;
                }
                if dominates_on(t, &self.skyline[i], &self.attrs) {
                    self.skyline.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            if !dominated {
                self.skyline.push(t.clone());
            }
        }
    }

    /// Records a trace point after `queries` issued queries.
    pub(crate) fn record(&mut self, queries: u64) {
        self.trace.push(TracePoint {
            queries,
            skyline_found: self.skyline.len(),
        });
    }

    /// `true` if any retrieved tuple matches `query`.
    ///
    /// Queries whose predicates are all *upper bounds* on the dominance
    /// attributes are downward closed under coordinate-wise ≤, so a
    /// retrieved tuple matches iff some tuple of the current (minimal)
    /// skyline matches — scanning the small skyline is exact and turns the
    /// tree traversals' per-node membership test from O(|retrieved|) into
    /// O(|skyline|). Other query shapes (equality pivots on point
    /// attributes, domination-subspace roots) fall back to the full set.
    pub(crate) fn any_seen_matches(&self, query: &Query) -> bool {
        let downward_closed = query
            .predicates()
            .iter()
            .all(|p| matches!(p.op, CmpOp::Lt | CmpOp::Le) && self.attrs.contains(&p.attr));
        if downward_closed {
            self.skyline.iter().any(|t| query.matches(t))
        } else {
            self.seen.values().any(|t| query.matches(t))
        }
    }

    /// `true` if any *current skyline* tuple dominates `t`.
    pub(crate) fn dominated_by_skyline(&self, t: &Tuple) -> Option<&Tuple> {
        self.skyline
            .iter()
            .find(|s| dominates_on(s, t, &self.attrs))
    }

    /// The skyline of everything retrieved so far.
    pub(crate) fn skyline(&self) -> &[Tuple] {
        &self.skyline
    }

    /// Every retrieved tuple.
    pub(crate) fn retrieved(&self) -> Vec<Tuple> {
        let mut all: Vec<Tuple> = self.seen.values().cloned().collect();
        all.sort_by_key(|t| t.id);
        all
    }

    /// Consumes the collector into a [`DiscoveryResult`].
    pub(crate) fn finish(self, query_cost: u64, complete: bool) -> DiscoveryResult {
        let retrieved = {
            let mut all: Vec<Tuple> = self.seen.values().cloned().collect();
            all.sort_by_key(|t| t.id);
            all
        };
        let mut skyline = self.skyline;
        skyline.sort_by_key(|t| t.id);
        DiscoveryResult {
            skyline,
            retrieved,
            query_cost,
            trace: self.trace,
            complete,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_hidden_db::{InterfaceType, Predicate, RateLimit, SchemaBuilder, SumRanker};

    fn toy_db(k: usize) -> HiddenDb {
        let schema = SchemaBuilder::new()
            .ranking("a", 10, InterfaceType::Rq)
            .ranking("b", 10, InterfaceType::Rq)
            .build();
        let tuples = vec![
            Tuple::new(0, vec![5, 1]),
            Tuple::new(1, vec![4, 4]),
            Tuple::new(2, vec![1, 3]),
            Tuple::new(3, vec![3, 2]),
        ];
        HiddenDb::new(schema, tuples, Box::new(SumRanker), k)
    }

    #[test]
    fn client_counts_and_respects_budget() {
        let db = toy_db(2);
        let mut client = Client::new(&db, Some(2));
        assert!(client.query(&Query::select_all()).unwrap().is_some());
        assert!(client.query(&Query::select_all()).unwrap().is_some());
        assert!(client.query(&Query::select_all()).unwrap().is_none());
        assert!(client.exhausted());
        assert_eq!(client.issued(), 2);
        assert_eq!(db.queries_issued(), 2);
    }

    #[test]
    fn client_converts_rate_limit_into_stop() {
        let db = toy_db(2).with_rate_limit(RateLimit::new(1));
        let mut client = Client::new(&db, None);
        assert!(client.query(&Query::select_all()).unwrap().is_some());
        assert!(client.query(&Query::select_all()).unwrap().is_none());
        assert!(client.exhausted());
    }

    #[test]
    fn client_propagates_real_errors() {
        let db = toy_db(2);
        let mut client = Client::new(&db, None);
        let bad = Query::new(vec![Predicate::eq(7, 0)]);
        assert!(client.query(&bad).is_err());
    }

    #[test]
    fn collector_maintains_skyline_of_seen() {
        let mut c = Collector::new(vec![0, 1]);
        c.ingest(&[Tuple::new(1, vec![4, 4])]);
        assert_eq!(c.skyline().len(), 1);
        c.ingest(&[Tuple::new(3, vec![3, 2])]);
        // (3,2) dominates (4,4).
        assert_eq!(c.skyline().len(), 1);
        assert_eq!(c.skyline()[0].id, 3);
        c.ingest(&[Tuple::new(0, vec![5, 1]), Tuple::new(3, vec![3, 2])]);
        assert_eq!(c.skyline().len(), 2);
        assert_eq!(c.retrieved().len(), 3);
    }

    #[test]
    fn collector_trace_and_finish() {
        let mut c = Collector::new(vec![0, 1]);
        c.record(1);
        c.ingest(&[Tuple::new(0, vec![5, 1])]);
        c.record(2);
        let result = c.finish(2, true);
        assert_eq!(result.trace.len(), 2);
        assert_eq!(result.trace[0].skyline_found, 0);
        assert_eq!(result.trace[1].skyline_found, 1);
        assert_eq!(result.query_cost, 2);
        assert!(result.complete);
        assert!((result.queries_per_skyline() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn collector_matching_and_domination_helpers() {
        let mut c = Collector::new(vec![0, 1]);
        c.ingest(&[Tuple::new(3, vec![3, 2])]);
        let q = Query::new(vec![Predicate::lt(0, 4)]);
        assert!(c.any_seen_matches(&q));
        let q2 = Query::new(vec![Predicate::lt(0, 2)]);
        assert!(!c.any_seen_matches(&q2));
        assert!(c.dominated_by_skyline(&Tuple::new(9, vec![4, 4])).is_some());
        assert!(c.dominated_by_skyline(&Tuple::new(9, vec![1, 1])).is_none());
    }
}
