//! Shared infrastructure of the discovery algorithms: the [`Discoverer`]
//! trait, result/trace types and the query client (budget handling). The
//! anytime skyline maintenance lives in [`crate::KnowledgeBase`].

use std::fmt;
use std::sync::Arc;

use skyweb_hidden_db::{HiddenDb, Query, QueryError, QueryResponse, Session, Tuple};

/// One point of an *anytime trace*: after `queries` issued queries, the
/// client could already certify `skyline_found` tuples as current skyline
/// candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracePoint {
    /// Number of queries issued so far.
    pub queries: u64,
    /// Number of skyline candidates known at that point (the skyline of all
    /// tuples retrieved so far).
    pub skyline_found: usize,
}

/// The outcome of a skyline-discovery run.
///
/// Tuples are `Arc`-shared with the database's store — the same handles the
/// query responses carried — so results of large runs cost reference bumps,
/// not deep copies.
#[derive(Debug, Clone)]
pub struct DiscoveryResult {
    /// The discovered skyline tuples (the exact skyline when
    /// [`DiscoveryResult::complete`] is `true`, a subset otherwise),
    /// sorted by tuple id.
    pub skyline: Vec<Arc<Tuple>>,
    /// Every distinct tuple retrieved during the run (skyline and
    /// non-skyline alike), sorted by tuple id; useful for baselines and
    /// sky-band post-processing.
    pub retrieved: Vec<Arc<Tuple>>,
    /// Number of search queries issued by this run.
    pub query_cost: u64,
    /// The anytime trace: skyline candidates known after each query.
    pub trace: Vec<TracePoint>,
    /// `true` if the algorithm ran to completion; `false` if it stopped
    /// early because the query budget or the database's rate limit was
    /// exhausted (the *anytime* case: `skyline` is then a valid subset).
    pub complete: bool,
}

impl DiscoveryResult {
    /// Average number of queries spent per discovered skyline tuple — the
    /// metric reported in the paper's online experiments.
    pub fn queries_per_skyline(&self) -> f64 {
        if self.skyline.is_empty() {
            self.query_cost as f64
        } else {
            self.query_cost as f64 / self.skyline.len() as f64
        }
    }
}

/// Errors a discovery algorithm can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscoveryError {
    /// The database's search interface does not offer the predicates the
    /// algorithm needs (e.g. running RQ-DB-SKY against a PQ attribute).
    UnsupportedInterface {
        /// Explanation of what is missing.
        reason: String,
    },
    /// The database rejected a query for a reason other than rate limiting
    /// (this indicates a bug in the algorithm or an incompatible schema).
    Query(QueryError),
}

impl fmt::Display for DiscoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiscoveryError::UnsupportedInterface { reason } => {
                write!(f, "unsupported interface: {reason}")
            }
            DiscoveryError::Query(e) => write!(f, "query rejected: {e}"),
        }
    }
}

impl std::error::Error for DiscoveryError {}

impl From<QueryError> for DiscoveryError {
    fn from(e: QueryError) -> Self {
        DiscoveryError::Query(e)
    }
}

/// A skyline-discovery algorithm over a hidden web database.
pub trait Discoverer {
    /// Short algorithm name (e.g. `"SQ-DB-SKY"`).
    fn name(&self) -> &str;

    /// Runs the algorithm against `db` and returns the discovered skyline
    /// together with its query cost and anytime trace.
    fn discover(&self, db: &HiddenDb) -> Result<DiscoveryResult, DiscoveryError>;
}

/// The client-side view of the hidden database used by the algorithms:
/// issues queries, counts them locally, and converts rate-limit /
/// budget exhaustion into a graceful "stop now" signal so that every
/// algorithm retains the paper's *anytime* property.
pub(crate) struct Client<'a> {
    /// One discovery run is one client of the database, so it queries
    /// through its own [`Session`]: private scratch memory (no contention
    /// with concurrent runs on a shared database) and per-client
    /// [`skyweb_hidden_db::QueryStats`] that double as the issued-query
    /// counter.
    session: Session<'a>,
    budget: Option<u64>,
    exhausted: bool,
}

impl<'a> Client<'a> {
    /// Creates a client with an optional client-side query budget.
    pub(crate) fn new(db: &'a HiddenDb, budget: Option<u64>) -> Self {
        Client {
            session: db.session(),
            budget,
            exhausted: false,
        }
    }

    /// The wrapped database.
    pub(crate) fn db(&self) -> &'a HiddenDb {
        self.session.db()
    }

    /// Number of queries issued through this client.
    pub(crate) fn issued(&self) -> u64 {
        self.session.queries_issued()
    }

    /// `true` once the budget or the server-side rate limit was hit.
    pub(crate) fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Issues `query`. Returns `Ok(None)` when the client-side budget or the
    /// server-side rate limit is exhausted (the caller should stop), and
    /// `Err` for any other rejection (which indicates a real bug).
    pub(crate) fn query(&mut self, query: &Query) -> Result<Option<QueryResponse>, DiscoveryError> {
        if self.exhausted {
            return Ok(None);
        }
        if let Some(budget) = self.budget {
            if self.session.queries_issued() >= budget {
                self.exhausted = true;
                return Ok(None);
            }
        }
        match self.session.query(query) {
            Ok(resp) => Ok(Some(resp)),
            Err(QueryError::RateLimitExceeded { .. }) => {
                self.exhausted = true;
                Ok(None)
            }
            Err(e) => Err(DiscoveryError::Query(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_hidden_db::{InterfaceType, Predicate, RateLimit, SchemaBuilder, SumRanker, Tuple};

    fn toy_db(k: usize) -> HiddenDb {
        let schema = SchemaBuilder::new()
            .ranking("a", 10, InterfaceType::Rq)
            .ranking("b", 10, InterfaceType::Rq)
            .build();
        let tuples = vec![
            Tuple::new(0, vec![5, 1]),
            Tuple::new(1, vec![4, 4]),
            Tuple::new(2, vec![1, 3]),
            Tuple::new(3, vec![3, 2]),
        ];
        HiddenDb::new(schema, tuples, Box::new(SumRanker), k)
    }

    #[test]
    fn client_counts_and_respects_budget() {
        let db = toy_db(2);
        let mut client = Client::new(&db, Some(2));
        assert!(client.query(&Query::select_all()).unwrap().is_some());
        assert!(client.query(&Query::select_all()).unwrap().is_some());
        assert!(client.query(&Query::select_all()).unwrap().is_none());
        assert!(client.exhausted());
        assert_eq!(client.issued(), 2);
        assert_eq!(db.queries_issued(), 2);
    }

    #[test]
    fn client_converts_rate_limit_into_stop() {
        let db = toy_db(2).with_rate_limit(RateLimit::new(1));
        let mut client = Client::new(&db, None);
        assert!(client.query(&Query::select_all()).unwrap().is_some());
        assert!(client.query(&Query::select_all()).unwrap().is_none());
        assert!(client.exhausted());
    }

    #[test]
    fn client_propagates_real_errors() {
        let db = toy_db(2);
        let mut client = Client::new(&db, None);
        let bad = Query::new(vec![Predicate::eq(7, 0)]);
        assert!(client.query(&bad).is_err());
    }
}
