//! Shared infrastructure of the discovery algorithms: the [`Discoverer`]
//! trait, result/trace and error types. The anytime skyline maintenance
//! lives in [`crate::KnowledgeBase`]; the execution machinery (sessions,
//! budgets, batching, deadlines) lives in the sans-io layer
//! ([`crate::machine`] / [`crate::DiscoveryDriver`]).

use std::fmt;
use std::sync::Arc;

use skyweb_hidden_db::{HiddenDb, QueryError, Tuple};

use crate::driver::{DiscoveryDriver, DriverConfig};
use crate::machine::DiscoveryMachine;

/// One point of an *anytime trace*: after `queries` issued queries, the
/// client could already certify `skyline_found` tuples as current skyline
/// candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracePoint {
    /// Number of queries issued so far.
    pub queries: u64,
    /// Number of skyline candidates known at that point (the skyline of all
    /// tuples retrieved so far).
    pub skyline_found: usize,
}

/// The outcome of a skyline-discovery run.
///
/// Tuples are `Arc`-shared with the database's store — the same handles the
/// query responses carried — so results of large runs cost reference bumps,
/// not deep copies.
#[derive(Debug, Clone)]
pub struct DiscoveryResult {
    /// The discovered skyline tuples (the exact skyline when
    /// [`DiscoveryResult::complete`] is `true`, a subset otherwise),
    /// sorted by tuple id.
    pub skyline: Vec<Arc<Tuple>>,
    /// Every distinct tuple retrieved during the run (skyline and
    /// non-skyline alike), sorted by tuple id; useful for baselines and
    /// sky-band post-processing.
    pub retrieved: Vec<Arc<Tuple>>,
    /// Number of search queries issued by this run.
    pub query_cost: u64,
    /// The anytime trace: skyline candidates known after each query.
    pub trace: Vec<TracePoint>,
    /// `true` if the algorithm ran to completion; `false` if it stopped
    /// early because the query budget or the database's rate limit was
    /// exhausted (the *anytime* case: `skyline` is then a valid subset).
    pub complete: bool,
}

impl DiscoveryResult {
    /// Average number of queries spent per discovered skyline tuple — the
    /// metric reported in the paper's online experiments.
    ///
    /// Always well-defined (never `NaN` or `inf`): a run that discovered
    /// zero skyline tuples reports its full `query_cost` — the cost of
    /// "at most one discovery", i.e. `query_cost / max(1, |skyline|)` —
    /// and a run that issued no queries reports `0.0`.
    pub fn queries_per_skyline(&self) -> f64 {
        self.query_cost as f64 / (self.skyline.len().max(1)) as f64
    }
}

/// Errors a discovery algorithm can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscoveryError {
    /// The database's search interface does not offer the predicates the
    /// algorithm needs (e.g. running RQ-DB-SKY against a PQ attribute).
    UnsupportedInterface {
        /// Explanation of what is missing.
        reason: String,
    },
    /// The database rejected a query for a reason other than rate limiting
    /// (this indicates a bug in the algorithm or an incompatible schema).
    Query(QueryError),
}

impl fmt::Display for DiscoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiscoveryError::UnsupportedInterface { reason } => {
                write!(f, "unsupported interface: {reason}")
            }
            DiscoveryError::Query(e) => write!(f, "query rejected: {e}"),
        }
    }
}

impl std::error::Error for DiscoveryError {}

impl From<QueryError> for DiscoveryError {
    fn from(e: QueryError) -> Self {
        DiscoveryError::Query(e)
    }
}

/// A skyline-discovery algorithm over a hidden web database.
///
/// An implementation is a *configuration* (budget, band size, …); the
/// actual run state lives in the sans-io [`DiscoveryMachine`] the
/// configuration compiles into via [`Discoverer::machine`]. The
/// [`Discoverer::discover`] entry point is a thin adapter that executes the
/// machine to completion through a [`DiscoveryDriver`] — byte-identical to
/// the historical blocking implementation, so existing callers keep
/// working; new callers needing pause/resume, streaming, deadlines or
/// multiplexing use the machine directly.
pub trait Discoverer {
    /// Short algorithm name (e.g. `"SQ-DB-SKY"`).
    fn name(&self) -> &str;

    /// The client-side query budget this instance was configured with
    /// (`None` = unlimited). Honored by the default
    /// [`Discoverer::discover`] adapter.
    fn budget(&self) -> Option<u64> {
        None
    }

    /// Compiles this configuration into a sans-io machine for `db`'s
    /// schema and top-k constraint, validating interface requirements.
    /// The machine holds no reference to `db`.
    fn machine(&self, db: &HiddenDb) -> Result<Box<dyn DiscoveryMachine>, DiscoveryError>;

    /// Runs the algorithm against `db` and returns the discovered skyline
    /// together with its query cost and anytime trace.
    fn discover(&self, db: &HiddenDb) -> Result<DiscoveryResult, DiscoveryError> {
        let machine = self.machine(db)?;
        DiscoveryDriver::new(db, machine, DriverConfig::new().with_budget(self.budget())).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_per_skyline_is_well_defined_for_empty_skylines() {
        let zero_discoveries = DiscoveryResult {
            skyline: Vec::new(),
            retrieved: Vec::new(),
            query_cost: 7,
            trace: Vec::new(),
            complete: false,
        };
        assert_eq!(zero_discoveries.queries_per_skyline(), 7.0);
        assert!(zero_discoveries.queries_per_skyline().is_finite());

        let nothing_at_all = DiscoveryResult {
            skyline: Vec::new(),
            retrieved: Vec::new(),
            query_cost: 0,
            trace: Vec::new(),
            complete: true,
        };
        assert_eq!(nothing_at_all.queries_per_skyline(), 0.0);
        assert!(!nothing_at_all.queries_per_skyline().is_nan());

        let normal = DiscoveryResult {
            skyline: vec![
                Arc::new(Tuple::new(0, vec![1])),
                Arc::new(Tuple::new(1, vec![2])),
            ],
            retrieved: Vec::new(),
            query_cost: 6,
            trace: Vec::new(),
            complete: true,
        };
        assert_eq!(normal.queries_per_skyline(), 3.0);
    }
}
