//! The multi-tenant discovery service: many concurrent discovery runs
//! multiplexed over one shared [`HiddenDb`].
//!
//! Each tenant is one sans-io [`DiscoveryMachine`] attached to its own
//! database [`Session`](skyweb_hidden_db::Session) through a
//! [`DiscoveryDriver`], so per-tenant query accounting is exact (sessions
//! never share counters) while the store, index, rate limit and access log
//! are shared. The service schedules tenants **round-robin**: every
//! scheduling round gives each unfinished tenant one driver step (at most
//! `max_batch` queries), which bounds how far any tenant can run ahead —
//! the fairness knob of the north-star "millions of concurrent runs"
//! deployment.
//!
//! Cooperative rounds are deterministic and single-threaded;
//! [`DiscoveryService::run_to_completion_parallel`] drives disjoint tenant
//! chunks on scoped threads for multi-core throughput (tenants never share
//! mutable state, so the split is safe by construction).

use std::time::Instant;

use skyweb_hidden_db::{FaultPlan, HiddenDb};

use crate::driver::{DiscoveryDriver, DriverConfig, StepOutcome};
use crate::machine::{AnytimeSnapshot, DiscoveryMachine};
use crate::{DiscoveryError, DiscoveryResult};

/// Handle to one tenant of a [`DiscoveryService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(usize);

/// Progress accounting for one tenant.
#[derive(Debug, Clone, Default)]
pub struct TenantStats {
    /// Scheduling rounds in which this tenant made progress.
    pub steps: u64,
    /// Queries answered for this tenant so far (per-session accounting:
    /// never shared with or attributed to other tenants).
    pub queries: u64,
    /// Skyline candidates currently certified.
    pub skyline_found: usize,
    /// Queries the tenant had spent when its first skyline candidate was
    /// certified (`None` until then) — the "time to first result" of the
    /// anytime API.
    pub first_skyline_at: Option<u64>,
    /// `true` once the tenant's run finished (completed or halted).
    pub finished: bool,
    /// `true` if the finished run completed exhaustively (`false` while
    /// running, or when halted by budget/deadline/rate limit, or on error).
    pub complete: bool,
    /// `true` if the run ended degraded: the retry policy gave up on a
    /// transient failure and the partial anytime result was surfaced.
    pub degraded: bool,
    /// Retries the tenant's driver performed against transient failures.
    pub retries: u64,
    /// Total simulated retry backoff, in milliseconds.
    pub backoff_ms: u64,
}

struct Tenant<'db> {
    label: String,
    driver: DiscoveryDriver<'db, Box<dyn DiscoveryMachine>>,
    stats: TenantStats,
    outcome: Option<Result<DiscoveryResult, DiscoveryError>>,
}

impl<'db> Tenant<'db> {
    /// Gives the tenant one scheduling quantum. Returns `true` if it is
    /// still unfinished afterwards.
    fn step(&mut self) -> bool {
        if self.outcome.is_some() {
            return false;
        }
        match self.driver.step() {
            Ok(StepOutcome::Progressed { .. }) => {
                self.stats.steps += 1;
                self.refresh_progress();
                true
            }
            Ok(StepOutcome::Finished) => {
                self.refresh_progress();
                let result = self.driver.take_result();
                self.stats.finished = true;
                self.stats.complete = result.complete;
                self.stats.skyline_found = result.skyline.len();
                self.outcome = Some(Ok(result));
                false
            }
            Ok(StepOutcome::Degraded { .. }) => {
                // The retry policy gave up: surface the partial anytime
                // result instead of an error, flagged as degraded.
                self.refresh_progress();
                let result = self.driver.take_result();
                self.stats.finished = true;
                self.stats.complete = false;
                self.stats.degraded = true;
                self.stats.skyline_found = result.skyline.len();
                self.outcome = Some(Ok(result));
                false
            }
            Err(e) => {
                // The failing step may still have answered a plan prefix
                // (counted by the shared database); keep the per-tenant
                // accounting conserved before recording the error.
                self.refresh_progress();
                self.stats.finished = true;
                self.outcome = Some(Err(e));
                false
            }
        }
    }

    fn refresh_progress(&mut self) {
        let progress = self.driver.progress();
        self.stats.queries = progress.queries;
        self.stats.skyline_found = progress.skyline_len;
        self.stats.first_skyline_at = progress.first_skyline_at;
        self.stats.retries = self.driver.retries();
        self.stats.backoff_ms = self.driver.total_backoff_ms();
    }
}

impl std::fmt::Debug for Tenant<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("label", &self.label)
            .field("stats", &self.stats)
            .finish()
    }
}

/// Multiplexes many sans-io discovery runs over one shared database with
/// round-robin fairness and exact per-tenant accounting.
///
/// ```
/// use skyweb_core::{Discoverer, DiscoveryService, DriverConfig, RqDbSky, SqDbSky};
/// use skyweb_hidden_db::{HiddenDb, InterfaceType, SchemaBuilder, Tuple};
///
/// let schema = SchemaBuilder::new()
///     .ranking("a", 10, InterfaceType::Rq)
///     .ranking("b", 10, InterfaceType::Rq)
///     .build();
/// let tuples = (0..9).map(|i| Tuple::new(i, vec![i as u32, 8 - i as u32])).collect();
/// let db = HiddenDb::with_sum_ranking(schema, tuples, 2);
///
/// let mut service = DiscoveryService::new(&db);
/// let a = service.submit("sq", SqDbSky::new().machine(&db).unwrap(), DriverConfig::new());
/// let b = service.submit("rq", RqDbSky::new().machine(&db).unwrap(), DriverConfig::new());
/// service.run_to_completion();
/// let ra = service.take_result(a).unwrap().unwrap();
/// let rb = service.take_result(b).unwrap().unwrap();
/// assert!(ra.complete && rb.complete);
/// assert_eq!(ra.query_cost + rb.query_cost, db.queries_issued());
/// ```
pub struct DiscoveryService<'db> {
    db: &'db HiddenDb,
    tenants: Vec<Tenant<'db>>,
    rounds: u64,
}

impl<'db> DiscoveryService<'db> {
    /// Creates an empty service over `db`.
    pub fn new(db: &'db HiddenDb) -> Self {
        DiscoveryService {
            db,
            tenants: Vec::new(),
            rounds: 0,
        }
    }

    /// The shared database.
    pub fn db(&self) -> &'db HiddenDb {
        self.db
    }

    /// Admits a new tenant: attaches `machine` to its own session of the
    /// shared database, driven under `config` (budget, batch limit,
    /// deadline — the deadline clock starts now).
    pub fn submit(
        &mut self,
        label: impl Into<String>,
        machine: Box<dyn DiscoveryMachine>,
        config: DriverConfig,
    ) -> TenantId {
        self.submit_with_faults(label, machine, config, FaultPlan::none())
    }

    /// Like [`DiscoveryService::submit`], but routes the tenant's queries
    /// through a deterministic fault-injection layer (see
    /// [`DiscoveryDriver::with_faults`]) — the chaos harness for
    /// multi-tenant resilience scenarios.
    pub fn submit_with_faults(
        &mut self,
        label: impl Into<String>,
        machine: Box<dyn DiscoveryMachine>,
        config: DriverConfig,
        faults: FaultPlan,
    ) -> TenantId {
        let id = TenantId(self.tenants.len());
        self.tenants.push(Tenant {
            label: label.into(),
            driver: DiscoveryDriver::with_faults(self.db, machine, config, faults),
            stats: TenantStats::default(),
            outcome: None,
        });
        id
    }

    /// Number of admitted tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Number of tenants still running.
    pub fn active_count(&self) -> usize {
        self.tenants.iter().filter(|t| t.outcome.is_none()).count()
    }

    /// Scheduling rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// A tenant's label.
    pub fn label(&self, id: TenantId) -> &str {
        &self.tenants[id.0].label
    }

    /// A tenant's progress accounting.
    pub fn stats(&self, id: TenantId) -> &TenantStats {
        &self.tenants[id.0].stats
    }

    /// An anytime snapshot of a tenant's run (valid at any point, finished
    /// or not).
    pub fn snapshot(&self, id: TenantId) -> AnytimeSnapshot {
        self.tenants[id.0].driver.snapshot()
    }

    /// Takes a finished tenant's result (`None` while it is still
    /// running, or if the result was already taken).
    pub fn take_result(&mut self, id: TenantId) -> Option<Result<DiscoveryResult, DiscoveryError>> {
        self.tenants[id.0].outcome.take()
    }

    /// Executes one round-robin scheduling round: every unfinished tenant
    /// gets one driver step (at most its `max_batch` queries). Returns the
    /// number of tenants still unfinished afterwards.
    pub fn run_round(&mut self) -> usize {
        self.rounds += 1;
        let mut active = 0;
        for tenant in &mut self.tenants {
            if tenant.step() {
                active += 1;
            }
        }
        active
    }

    /// Runs cooperative rounds until every tenant finished. Returns the
    /// number of rounds executed.
    pub fn run_to_completion(&mut self) -> u64 {
        let start = self.rounds;
        while self.run_round() > 0 {}
        self.rounds - start
    }

    /// Runs cooperative rounds until every tenant finished or `deadline`
    /// elapses; unfinished tenants keep their anytime state.
    ///
    /// The deadline is checked between *tenant steps*, not just between
    /// full rounds: one slow tenant can no longer drag every other tenant
    /// through the rest of an expired round. A round cut short mid-way
    /// still counts as one executed round.
    pub fn run_until(&mut self, deadline: Instant) -> u64 {
        let start = self.rounds;
        'rounds: loop {
            if Instant::now() >= deadline {
                break;
            }
            self.rounds += 1;
            let mut active = 0;
            for tenant in &mut self.tenants {
                if tenant.step() {
                    active += 1;
                }
                if Instant::now() >= deadline {
                    break 'rounds;
                }
            }
            if active == 0 {
                break;
            }
        }
        self.rounds - start
    }

    /// Drives all tenants to completion on up to `jobs` scoped threads,
    /// each running cooperative rounds over a disjoint tenant chunk.
    /// Per-tenant results are identical to single-threaded rounds (tenants
    /// share no mutable state); only the interleaving of queries at the
    /// shared database differs. [`DiscoveryService::rounds`] advances by
    /// the longest round sequence any chunk executed.
    pub fn run_to_completion_parallel(&mut self, jobs: usize) {
        let jobs = jobs.max(1).min(self.tenants.len().max(1));
        let chunk = self.tenants.len().div_ceil(jobs);
        let max_rounds = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .tenants
                .chunks_mut(chunk.max(1))
                .map(|slice| {
                    scope.spawn(move || {
                        let mut rounds = 0u64;
                        let mut active = true;
                        while active {
                            rounds += 1;
                            active = false;
                            for tenant in slice.iter_mut() {
                                if tenant.step() {
                                    active = true;
                                }
                            }
                        }
                        rounds
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .max()
                .unwrap_or(0)
        });
        self.rounds += max_rounds;
    }
}

impl std::fmt::Debug for DiscoveryService<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiscoveryService")
            .field("tenants", &self.tenants.len())
            .field("rounds", &self.rounds)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Discoverer, RqDbSky, SqDbSky};
    use skyweb_hidden_db::{InterfaceType, SchemaBuilder, Tuple};

    fn shared_db(n: u64, k: usize) -> HiddenDb {
        let schema = SchemaBuilder::new()
            .ranking("a", 32, InterfaceType::Rq)
            .ranking("b", 32, InterfaceType::Rq)
            .build();
        let tuples = (0..n)
            .map(|i| Tuple::new(i, vec![(i % 32) as u32, ((i * 13 + 5) % 32) as u32]))
            .collect();
        HiddenDb::with_sum_ranking(schema, tuples, k)
    }

    #[test]
    fn tenants_get_exact_unshared_accounting() {
        let db = shared_db(120, 3);
        let mut service = DiscoveryService::new(&db);
        let ids: Vec<TenantId> = (0..8)
            .map(|i| {
                let machine = if i % 2 == 0 {
                    SqDbSky::new().machine(&db).unwrap()
                } else {
                    RqDbSky::new().machine(&db).unwrap()
                };
                service.submit(
                    format!("t{i}"),
                    machine,
                    DriverConfig::new().with_max_batch(4),
                )
            })
            .collect();
        service.run_to_completion();
        let mut total = 0;
        for &id in &ids {
            let result = service.take_result(id).unwrap().unwrap();
            assert!(result.complete);
            assert_eq!(result.query_cost, service.stats(id).queries);
            total += result.query_cost;
        }
        // No lost or cross-attributed query counts.
        assert_eq!(total, db.queries_issued());
        // All even tenants ran the same algorithm on the same data: their
        // per-tenant costs must agree (fairness cannot skew accounting).
        let c0 = service.stats(ids[0]).queries;
        for &id in ids.iter().step_by(2) {
            assert_eq!(service.stats(id).queries, c0);
        }
    }

    #[test]
    fn round_robin_bounds_tenant_skew() {
        let db = shared_db(200, 2);
        let mut service = DiscoveryService::new(&db);
        let ids: Vec<TenantId> = (0..4)
            .map(|i| {
                service.submit(
                    format!("sq{i}"),
                    SqDbSky::new().machine(&db).unwrap(),
                    DriverConfig::new().with_max_batch(2),
                )
            })
            .collect();
        // After any number of rounds, identical tenants differ by at most
        // one scheduling quantum.
        for _ in 0..5 {
            service.run_round();
            let counts: Vec<u64> = ids.iter().map(|&id| service.stats(id).queries).collect();
            let min = counts.iter().min().unwrap();
            let max = counts.iter().max().unwrap();
            assert!(max - min <= 2, "skew {counts:?} exceeds one quantum");
        }
        service.run_to_completion();
        let first = service.take_result(ids[0]).unwrap().unwrap();
        assert!(first.complete);
    }

    #[test]
    fn parallel_rounds_match_cooperative_rounds() {
        let db_a = shared_db(150, 2);
        let mut serial = DiscoveryService::new(&db_a);
        let sa = serial.submit(
            "sq",
            SqDbSky::new().machine(&db_a).unwrap(),
            DriverConfig::new(),
        );
        let ra = serial.submit(
            "rq",
            RqDbSky::new().machine(&db_a).unwrap(),
            DriverConfig::new(),
        );
        serial.run_to_completion();

        let db_b = shared_db(150, 2);
        let mut parallel = DiscoveryService::new(&db_b);
        let sb = parallel.submit(
            "sq",
            SqDbSky::new().machine(&db_b).unwrap(),
            DriverConfig::new(),
        );
        let rb = parallel.submit(
            "rq",
            RqDbSky::new().machine(&db_b).unwrap(),
            DriverConfig::new(),
        );
        parallel.run_to_completion_parallel(2);

        let sa = serial.take_result(sa).unwrap().unwrap();
        let sb = parallel.take_result(sb).unwrap().unwrap();
        assert_eq!(sa.query_cost, sb.query_cost);
        assert_eq!(
            sa.skyline.iter().map(|t| t.id).collect::<Vec<_>>(),
            sb.skyline.iter().map(|t| t.id).collect::<Vec<_>>()
        );
        let ra = serial.take_result(ra).unwrap().unwrap();
        let rb = parallel.take_result(rb).unwrap().unwrap();
        assert_eq!(ra.query_cost, rb.query_cost);
    }

    #[test]
    fn erroring_tenants_keep_accounting_conserved() {
        // A machine whose plan answers a prefix before a real rejection:
        // the answered queries count at the shared db AND in the tenant's
        // stats, even though the tenant ends in an error.
        #[derive(Debug)]
        struct PoisonedPlan {
            done: bool,
        }
        impl crate::MachineControl for PoisonedPlan {
            fn name(&self) -> &str {
                "POISONED"
            }
            fn done(&self) -> bool {
                self.done
            }
            fn plan_into(
                &self,
                _kb: &crate::KnowledgeBase,
                _limit: usize,
                out: &mut Vec<skyweb_hidden_db::Query>,
            ) {
                out.push(skyweb_hidden_db::Query::select_all());
                out.push(skyweb_hidden_db::Query::new(vec![
                    skyweb_hidden_db::Predicate::eq(9, 0),
                ]));
            }
            fn on_response(
                &mut self,
                kb: &mut crate::KnowledgeBase,
                issued: u64,
                resp: &skyweb_hidden_db::QueryResponse,
            ) {
                kb.ingest(&resp.tuples);
                kb.record(issued);
            }
        }
        let db = shared_db(40, 3);
        let mut service = DiscoveryService::new(&db);
        let good = service.submit(
            "sq",
            SqDbSky::new().machine(&db).unwrap(),
            DriverConfig::new(),
        );
        let bad = service.submit(
            "poisoned",
            Box::new(crate::Machine::from_parts(
                crate::KnowledgeBase::new(vec![0, 1]),
                PoisonedPlan { done: false },
            )),
            DriverConfig::new(),
        );
        service.run_to_completion();
        assert!(service.take_result(bad).unwrap().is_err());
        assert_eq!(service.stats(bad).queries, 1, "answered prefix is counted");
        let good_cost = service.take_result(good).unwrap().unwrap().query_cost;
        assert_eq!(
            good_cost + service.stats(bad).queries,
            db.queries_issued(),
            "conservation holds across erroring tenants"
        );
    }

    #[test]
    fn parallel_run_advances_the_round_counter() {
        let db = shared_db(60, 2);
        let mut service = DiscoveryService::new(&db);
        for i in 0..3 {
            service.submit(
                format!("sq{i}"),
                SqDbSky::new().machine(&db).unwrap(),
                DriverConfig::new().with_max_batch(2),
            );
        }
        assert_eq!(service.rounds(), 0);
        service.run_to_completion_parallel(2);
        assert!(service.rounds() > 0);
    }

    #[test]
    fn faulty_tenants_converge_and_degraded_tenants_surface_partials() {
        use crate::driver::RetryPolicy;

        let db = shared_db(80, 3);
        let mut service = DiscoveryService::new(&db);
        let clean = service.submit(
            "clean",
            SqDbSky::new().machine(&db).unwrap(),
            DriverConfig::new(),
        );
        let flaky = service.submit_with_faults(
            "flaky",
            SqDbSky::new().machine(&db).unwrap(),
            DriverConfig::new().with_retry(Some(RetryPolicy::new())),
            FaultPlan::new(9, 0.4),
        );
        let doomed = service.submit_with_faults(
            "doomed",
            SqDbSky::new().machine(&db).unwrap(),
            DriverConfig::new().with_retry(Some(RetryPolicy::new().with_max_attempts(2))),
            FaultPlan::new(3, 1.0).with_max_consecutive(u32::MAX),
        );
        service.run_to_completion();

        let clean_result = service.take_result(clean).unwrap().unwrap();
        let flaky_result = service.take_result(flaky).unwrap().unwrap();
        // Retried transient faults are invisible in the result.
        assert!(flaky_result.complete);
        assert_eq!(flaky_result.query_cost, clean_result.query_cost);
        assert_eq!(
            flaky_result
                .skyline
                .iter()
                .map(|t| t.id)
                .collect::<Vec<_>>(),
            clean_result
                .skyline
                .iter()
                .map(|t| t.id)
                .collect::<Vec<_>>()
        );
        assert!(service.stats(flaky).retries > 0);
        assert!(!service.stats(flaky).degraded);

        // The doomed tenant degrades but still yields a (partial) result,
        // and accounting stays conserved across all three.
        let doomed_result = service.take_result(doomed).unwrap().unwrap();
        assert!(service.stats(doomed).degraded);
        assert!(!doomed_result.complete);
        assert_eq!(
            clean_result.query_cost + flaky_result.query_cost + doomed_result.query_cost,
            db.queries_issued()
        );
    }

    #[test]
    fn run_until_checks_deadline_between_tenant_steps() {
        use std::time::Duration;

        // A deliberately expensive machine: every plan costs ~25 ms of
        // wall clock before a single query is issued.
        #[derive(Debug)]
        struct SlowTenant;
        impl crate::MachineControl for SlowTenant {
            fn name(&self) -> &str {
                "SLOW"
            }
            fn done(&self) -> bool {
                false
            }
            fn plan_into(
                &self,
                _kb: &crate::KnowledgeBase,
                _limit: usize,
                out: &mut Vec<skyweb_hidden_db::Query>,
            ) {
                std::thread::sleep(Duration::from_millis(25));
                out.push(skyweb_hidden_db::Query::select_all());
            }
            fn on_response(
                &mut self,
                kb: &mut crate::KnowledgeBase,
                issued: u64,
                resp: &skyweb_hidden_db::QueryResponse,
            ) {
                kb.ingest(&resp.tuples);
                kb.record(issued);
            }
        }

        let db = shared_db(20, 2);
        let mut service = DiscoveryService::new(&db);
        let ids: Vec<TenantId> = (0..4)
            .map(|i| {
                service.submit(
                    format!("slow{i}"),
                    Box::new(crate::Machine::from_parts(
                        crate::KnowledgeBase::new(vec![0, 1]),
                        SlowTenant,
                    )),
                    DriverConfig::new(),
                )
            })
            .collect();
        // The deadline expires inside the very first tenant's step. The
        // old between-rounds check would still drag all four tenants
        // through the round (~100 ms overshoot); the between-steps check
        // must cut the round after the first step.
        let rounds = service.run_until(Instant::now() + Duration::from_millis(5));
        assert_eq!(rounds, 1, "a round cut short still counts as one round");
        let stepped: u64 = ids.iter().map(|&id| service.stats(id).steps).sum();
        assert_eq!(
            stepped, 1,
            "the deadline must be honored between tenant steps, not only between rounds"
        );
        // An already-expired deadline runs nothing at all.
        assert_eq!(service.run_until(Instant::now()), 0);
    }

    #[test]
    fn first_skyline_is_tracked() {
        let db = shared_db(80, 2);
        let mut service = DiscoveryService::new(&db);
        let id = service.submit(
            "sq",
            SqDbSky::new().machine(&db).unwrap(),
            DriverConfig::new().with_max_batch(1),
        );
        service.run_to_completion();
        let at = service.stats(id).first_skyline_at.expect("found something");
        assert!(at >= 1);
        let result = service.take_result(id).unwrap().unwrap();
        let trace_at = result
            .trace
            .iter()
            .find(|p| p.skyline_found > 0)
            .map(|p| p.queries)
            .unwrap();
        assert_eq!(at, trace_at);
    }
}
