//! PQ-2D-SKY (Algorithm 3 of the paper): instance-optimal skyline discovery
//! for a **two-dimensional** database whose attributes only support point
//! predicates.
//!
//! The algorithm issues `SELECT *` to obtain one skyline tuple `(x1, y1)`,
//! prunes the plane into the two rectangles of Figure 7 (everything
//! lower-left of the tuple is provably empty, everything upper-right is
//! dominated), and then repeatedly probes the cheaper dimension of a
//! remaining rectangle with a 1D point query (`x = x_L` or `y = y_B`),
//! shrinking the rectangle according to the answer. In the 2D case every 1D
//! query is guaranteed to return the (single) skyline tuple it covers, which
//! is what makes the procedure instance-optimal.

use skyweb_hidden_db::{HiddenDb, InterfaceType, Query, QueryResponse, Value};

use crate::codec::{self, CodecError, Reader};
use crate::machine::{DiscoveryMachine, Machine, MachineControl};
use crate::pq2dsub::{build_plane_rects, PlanePoint, PlaneSweep};
use crate::{Discoverer, DiscoveryError, KnowledgeBase};

/// The sans-io machine form of [`Pq2dSky`]: one `SELECT *`, then the
/// PQ-2DSUB-SKY probing sweep over the two remaining rectangles.
pub type Pq2dMachine = Machine<Pq2dControl>;

/// PQ-2D-SKY: instance-optimal skyline discovery over a 2-attribute
/// point-predicate database.
#[derive(Debug, Clone, Default)]
pub struct Pq2dSky {
    budget: Option<u64>,
}

impl Pq2dSky {
    /// Creates the algorithm with no client-side query budget.
    pub fn new() -> Self {
        Pq2dSky::default()
    }

    /// Limits the number of queries the algorithm may issue (anytime mode).
    pub fn with_budget(budget: u64) -> Self {
        Pq2dSky {
            budget: Some(budget),
        }
    }

    fn check_interface(db: &HiddenDb) -> Result<(usize, usize), DiscoveryError> {
        let ranking = db.schema().ranking_attrs();
        if ranking.len() != 2 {
            return Err(DiscoveryError::UnsupportedInterface {
                reason: format!(
                    "PQ-2D-SKY handles exactly 2 ranking attributes, the schema has {}",
                    ranking.len()
                ),
            });
        }
        for &a in ranking {
            if db.schema().attr(a).interface != InterfaceType::Pq {
                // PQ-2D-SKY also runs fine on stronger interfaces (every
                // interface supports equality), so this is not an error —
                // but keep the check for attribute count only.
            }
        }
        Ok((ranking[0], ranking[1]))
    }
}

impl Pq2dSky {
    /// Builds the concrete machine (also available through the boxed
    /// [`Discoverer::machine`] entry point).
    pub fn build_machine(&self, db: &HiddenDb) -> Result<Pq2dMachine, DiscoveryError> {
        let (a1, a2) = Self::check_interface(db)?;
        let control = Pq2dControl {
            a1,
            a2,
            dx: db.schema().attr(a1).domain_size,
            dy: db.schema().attr(a2).domain_size,
            k: db.k(),
            state: Pq2dState::Init,
        };
        Ok(Machine::from_parts(
            KnowledgeBase::new(vec![a1, a2]),
            control,
        ))
    }
}

#[derive(Debug, Clone)]
enum Pq2dState {
    /// `SELECT *` not yet answered.
    Init,
    /// Consuming the candidate rectangles of Figure 7.
    Sweep(PlaneSweep),
    /// Finished.
    Done,
}

/// Control state of [`Pq2dMachine`]: the instance-optimal 2D probing
/// procedure of PQ-2D-SKY.
#[derive(Debug, Clone)]
pub struct Pq2dControl {
    a1: usize,
    a2: usize,
    dx: Value,
    dy: Value,
    k: usize,
    state: Pq2dState,
}

impl Pq2dControl {
    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let a1 = r.usize()?;
        let a2 = r.usize()?;
        let dx = r.u32()?;
        let dy = r.u32()?;
        let k = r.usize()?;
        let state = match r.u8()? {
            0 => Pq2dState::Init,
            1 => Pq2dState::Sweep(PlaneSweep::decode(r)?),
            2 => Pq2dState::Done,
            tag => return Err(CodecError::BadTag { tag }),
        };
        Ok(Pq2dControl {
            a1,
            a2,
            dx,
            dy,
            k,
            state,
        })
    }
}

impl MachineControl for Pq2dControl {
    fn name(&self) -> &str {
        "PQ-2D-SKY"
    }

    fn done(&self) -> bool {
        matches!(self.state, Pq2dState::Done)
    }

    fn plan_into(&self, _kb: &KnowledgeBase, _limit: usize, out: &mut Vec<Query>) {
        match &self.state {
            Pq2dState::Init => out.push(Query::select_all()),
            Pq2dState::Sweep(sweep) => sweep.plan_into(out),
            Pq2dState::Done => {}
        }
    }

    fn on_response(&mut self, kb: &mut KnowledgeBase, issued: u64, resp: &QueryResponse) {
        match &mut self.state {
            Pq2dState::Init => {
                kb.ingest(&resp.tuples);
                kb.record(issued);
                if resp.tuples.len() < self.k {
                    // The whole database fit in one answer.
                    self.state = Pq2dState::Done;
                    return;
                }
                let top = &resp.tuples[0];
                let corner = PlanePoint {
                    x: i64::from(top.values[self.a1]),
                    y: i64::from(top.values[self.a2]),
                };
                let rects = build_plane_rects(self.dx, self.dy, &[corner], Some(corner));
                let sweep = PlaneSweep::new(self.a1, self.a2, Vec::new(), rects);
                self.state = if sweep.done() {
                    Pq2dState::Done
                } else {
                    Pq2dState::Sweep(sweep)
                };
            }
            Pq2dState::Sweep(sweep) => {
                sweep.on_response(kb, issued, resp);
                if sweep.done() {
                    self.state = Pq2dState::Done;
                }
            }
            Pq2dState::Done => unreachable!("no response expected after the sweep finished"),
        }
    }

    fn codec_tag(&self) -> Option<u8> {
        Some(codec::TAG_PQ2D)
    }

    fn encode_control(&self, out: &mut Vec<u8>) {
        codec::put_usize(out, self.a1);
        codec::put_usize(out, self.a2);
        codec::put_u32(out, self.dx);
        codec::put_u32(out, self.dy);
        codec::put_usize(out, self.k);
        match &self.state {
            Pq2dState::Init => codec::put_u8(out, 0),
            Pq2dState::Sweep(sweep) => {
                codec::put_u8(out, 1);
                sweep.encode(out);
            }
            Pq2dState::Done => codec::put_u8(out, 2),
        }
    }
}

impl Discoverer for Pq2dSky {
    fn name(&self) -> &str {
        "PQ-2D-SKY"
    }

    fn budget(&self) -> Option<u64> {
        self.budget
    }

    fn machine(&self, db: &HiddenDb) -> Result<Box<dyn DiscoveryMachine>, DiscoveryError> {
        Ok(Box::new(self.build_machine(db)?))
    }
}

/// The query cost predicted by Equation 11 of the paper for a 2D database,
/// given the skyline points sorted by the first attribute and the two domain
/// sizes. Useful for checking the optimality of [`Pq2dSky`] in tests and
/// benchmarks.
pub fn eq11_cost(skyline_sorted: &[(u32, u32)], dx: u32, dy: u32) -> u64 {
    if skyline_sorted.is_empty() {
        return 0;
    }
    // Extend with the two domain corners t_0 = (0, max(Dom(A2))) and
    // t_{|S|+1} = (max(Dom(A1)), 0).
    let mut pts: Vec<(i64, i64)> = Vec::with_capacity(skyline_sorted.len() + 2);
    pts.push((0, i64::from(dy) - 1));
    pts.extend(
        skyline_sorted
            .iter()
            .map(|&(x, y)| (i64::from(x), i64::from(y))),
    );
    pts.push((i64::from(dx) - 1, 0));
    let mut cost = 0i64;
    for w in pts.windows(2) {
        let (x_i, y_i) = w[0];
        let (x_next, y_next) = w[1];
        cost += (x_next - x_i).min(y_i - y_next).max(0);
    }
    cost as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_hidden_db::{SchemaBuilder, SingleAttributeRanker, SumRanker, Tuple};
    use skyweb_skyline::{bnl_skyline, same_ids};

    fn pq_schema(dx: u32, dy: u32) -> skyweb_hidden_db::Schema {
        SchemaBuilder::new()
            .ranking("x", dx, InterfaceType::Pq)
            .ranking("y", dy, InterfaceType::Pq)
            .build()
    }

    fn grid_db(points: &[(u32, u32)], dx: u32, dy: u32, k: usize) -> HiddenDb {
        let tuples: Vec<Tuple> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Tuple::new(i as u64, vec![x, y]))
            .collect();
        HiddenDb::new(pq_schema(dx, dy), tuples, Box::new(SumRanker), k)
    }

    #[test]
    fn discovers_a_simple_staircase() {
        let db = grid_db(&[(1, 8), (3, 5), (6, 2), (7, 7), (8, 8)], 10, 10, 1);
        let result = Pq2dSky::new().discover(&db).unwrap();
        assert!(result.complete);
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
        assert_eq!(result.skyline.len(), 3);
    }

    #[test]
    fn cost_stays_close_to_the_eq11_optimum() {
        let points = [(1, 8), (3, 5), (6, 2), (7, 7), (8, 8), (9, 9), (2, 9)];
        let db = grid_db(&points, 12, 12, 1);
        let result = Pq2dSky::new().discover(&db).unwrap();
        let mut sky: Vec<(u32, u32)> = bnl_skyline(db.oracle_tuples().as_slice(), db.schema())
            .iter()
            .map(|t| (t.values[0], t.values[1]))
            .collect();
        sky.sort();
        let optimum = eq11_cost(&sky, 12, 12);
        // +1 for the initial SELECT * query; the sweep itself should match
        // the optimum up to a small constant per rectangle boundary.
        assert!(
            result.query_cost <= optimum + 3,
            "cost {} should be within a small constant of the Eq.11 optimum {}",
            result.query_cost,
            optimum
        );
    }

    #[test]
    fn works_when_every_value_is_occupied() {
        // Dense anti-diagonal: every tuple is a skyline tuple.
        let points: Vec<(u32, u32)> = (0..8).map(|i| (i, 7 - i)).collect();
        let db = grid_db(&points, 8, 8, 1);
        let result = Pq2dSky::new().discover(&db).unwrap();
        assert_eq!(result.skyline.len(), 8);
    }

    #[test]
    fn underflowing_select_star_finishes_in_one_query() {
        let db = grid_db(&[(3, 4), (5, 1)], 10, 10, 10);
        let result = Pq2dSky::new().discover(&db).unwrap();
        assert!(result.complete);
        assert_eq!(result.query_cost, 1);
        assert_eq!(result.skyline.len(), 2);
    }

    #[test]
    fn price_style_ranking_function_is_supported() {
        let points = [(2, 6), (4, 3), (6, 1), (5, 5)];
        let tuples: Vec<Tuple> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Tuple::new(i as u64, vec![x, y]))
            .collect();
        let db = HiddenDb::new(
            pq_schema(8, 8),
            tuples,
            Box::new(SingleAttributeRanker::new(1)),
            1,
        );
        let result = Pq2dSky::new().discover(&db).unwrap();
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
    }

    #[test]
    fn rejects_higher_dimensional_schemas() {
        let schema = SchemaBuilder::new()
            .ranking("x", 4, InterfaceType::Pq)
            .ranking("y", 4, InterfaceType::Pq)
            .ranking("z", 4, InterfaceType::Pq)
            .build();
        let db = HiddenDb::new(
            schema,
            vec![Tuple::new(0, vec![0, 0, 0])],
            Box::new(SumRanker),
            1,
        );
        assert!(Pq2dSky::new().discover(&db).is_err());
    }

    #[test]
    fn eq11_cost_examples() {
        // Single skyline point in the middle of a 10x10 grid:
        // min(5-0, 9-5) + min(9-5, 5-0) = 4 + 4.
        assert_eq!(eq11_cost(&[(5, 5)], 10, 10), 8);
        // Empty skyline costs nothing.
        assert_eq!(eq11_cost(&[], 10, 10), 0);
    }

    #[test]
    fn budget_exhaustion_is_graceful() {
        let points: Vec<(u32, u32)> = (0..20).map(|i| (i, 19 - i)).collect();
        let db = grid_db(&points, 20, 20, 1);
        let result = Pq2dSky::with_budget(5).discover(&db).unwrap();
        assert!(!result.complete);
        assert_eq!(result.query_cost, 5);
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        let truth_ids: Vec<u64> = truth.iter().map(|t| t.id).collect();
        assert!(result.skyline.iter().all(|t| truth_ids.contains(&t.id)));
    }
}
