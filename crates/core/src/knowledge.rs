//! The client-side knowledge base: everything a discovery run has learned
//! about the hidden database, indexed for the questions the algorithms ask
//! on every query.
//!
//! [`KnowledgeBase`] replaces the old `Collector`, which maintained the
//! retrieved-set skyline with BNL insertion over deep-cloned tuples,
//! re-cloned and re-sorted the whole retrieved set on every `retrieved()`
//! call, and answered non-downward-closed `any_seen_matches` probes with a
//! full scan of everything retrieved. It is built on the shared incremental
//! dominance-index subsystem ([`skyweb_skyline::incremental`]) — the same
//! structure the database's skyline-aware rankers use server-side — plus
//! per-attribute posting lists over the retrieved set:
//!
//! * **storage** — every retrieved tuple is held as the `Arc<Tuple>` handle
//!   the [`QueryResponse`](skyweb_hidden_db::QueryResponse) shared with the
//!   database store; nothing is deep-cloned, ingested, snapshotted or
//!   returned by value;
//! * **skyline / sky band** — an [`IncrementalSkyline`] (band `h` for
//!   sky-band discovery, 1 otherwise) keeps the minimal set current in one
//!   monotone-key-sorted pass per insertion, and answers
//!   [`KnowledgeBase::dominated_by_skyline`] with a deterministic
//!   smallest-key dominator instead of a BNL-order-dependent one;
//! * **membership** — [`KnowledgeBase::any_seen_matches`] is exact for
//!   *every* query shape: downward-closed queries scan only the skyline (as
//!   before), and everything else — equality pivots of the MQ point phase,
//!   the `≥`-rooted boxes of sky-band subspace traversals — walks the
//!   posting lists of the most selective constrained attribute instead of
//!   the whole retrieved set.

use std::collections::HashSet;
use std::sync::Arc;

use skyweb_hidden_db::{AttrId, CmpOp, Query, Tuple, TupleId, Value};
use skyweb_skyline::incremental::IncrementalSkyline;

use crate::codec;
use crate::discovery::{DiscoveryResult, TracePoint};

/// Per-attribute bounds a conjunctive query folds into: the closed interval
/// `[lo, hi]` (in `i64` so empty intervals are representable).
type Bounds = Vec<(i64, i64)>;

/// The knowledge a discovery run has accumulated: the retrieved set, its
/// skyline (or top-h sky band), posting lists for membership probes, and
/// the anytime trace.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    attrs: Vec<AttrId>,
    /// The shared incremental dominance index over the retrieved set.
    index: IncrementalSkyline,
    /// Ids of every retrieved tuple (response tuples repeat across
    /// queries; each id is indexed once).
    ids: HashSet<TupleId>,
    /// Every distinct retrieved tuple, in retrieval order, aliasing the
    /// database store.
    retrieved: Vec<Arc<Tuple>>,
    /// `postings[attr][value]` = positions in `retrieved` (ascending) of
    /// the tuples whose value on `attr` is exactly `value` — one dense
    /// bucket table per attribute of the schema (values live in small
    /// rank-space domains, so direct indexing beats any tree/hash map),
    /// sized on first ingest and grown to the largest value seen.
    postings: Vec<Vec<Vec<u32>>>,
    trace: Vec<TracePoint>,
}

impl KnowledgeBase {
    /// Creates a knowledge base that evaluates dominance on `attrs`.
    pub fn new(attrs: Vec<AttrId>) -> Self {
        KnowledgeBase::with_band(attrs, 1)
    }

    /// Creates a knowledge base maintaining the top-`band` sky band of the
    /// retrieved set (band 1 is the plain skyline).
    pub fn with_band(attrs: Vec<AttrId>, band: usize) -> Self {
        KnowledgeBase {
            index: IncrementalSkyline::with_band(attrs.clone(), band),
            attrs,
            ids: HashSet::new(),
            retrieved: Vec::new(),
            postings: Vec::new(),
            trace: Vec::new(),
        }
    }

    /// Ingests newly returned tuples: deduplicates by id, shares the `Arc`
    /// handles (no deep clone), updates the posting lists and the
    /// incremental skyline.
    ///
    /// The whole batch reaches the incremental index through
    /// [`IncrementalSkyline::insert_batch`], which pre-sorts it into
    /// monotone-key order so dominated tuples reject on an early-exiting
    /// scan instead of paying a structural insert — the final skyline state
    /// is identical to one-at-a-time insertion.
    pub fn ingest(&mut self, tuples: &[Arc<Tuple>]) {
        let mut fresh: Vec<Arc<Tuple>> = Vec::new();
        for t in tuples {
            if !self.ids.insert(t.id) {
                continue;
            }
            if self.postings.is_empty() {
                self.postings = vec![Vec::new(); t.arity()];
            }
            let pos = self.retrieved.len() as u32;
            for (attr, &v) in t.values.iter().enumerate() {
                let buckets = &mut self.postings[attr];
                if buckets.len() <= v as usize {
                    buckets.resize(v as usize + 1, Vec::new());
                }
                buckets[v as usize].push(pos);
            }
            self.retrieved.push(Arc::clone(t));
            fresh.push(Arc::clone(t));
        }
        self.index.insert_batch(fresh);
    }

    /// Test convenience: ingests owned tuples by wrapping them in fresh
    /// `Arc`s.
    pub fn ingest_owned(&mut self, tuples: Vec<Tuple>) {
        let arcs: Vec<Arc<Tuple>> = tuples.into_iter().map(Arc::new).collect();
        self.ingest(&arcs);
    }

    /// Records a trace point after `queries` issued queries.
    pub fn record(&mut self, queries: u64) {
        self.trace.push(TracePoint {
            queries,
            skyline_found: self.index.skyline_len(),
        });
    }

    /// Number of distinct tuples retrieved so far.
    pub fn retrieved_len(&self) -> usize {
        self.retrieved.len()
    }

    /// The anytime trace recorded so far.
    pub fn trace(&self) -> &[TracePoint] {
        &self.trace
    }

    /// Every distinct retrieved tuple, in retrieval order, borrowing the
    /// shared handles — O(1), unlike the old `retrieved()` which deep-cloned
    /// and re-sorted the whole set on every call.
    pub fn retrieved_snapshot(&self) -> &[Arc<Tuple>] {
        &self.retrieved
    }

    /// Number of current skyline members of the retrieved set.
    pub fn skyline_len(&self) -> usize {
        self.index.skyline_len()
    }

    /// The current skyline of the retrieved set (shared handles, monotone
    /// key order).
    pub fn skyline_tuples(&self) -> Vec<Arc<Tuple>> {
        self.index.skyline().map(Arc::clone).collect()
    }

    /// The top-`level` sky band of the retrieved set, for any level up to
    /// the band this knowledge base was created with — answered from the
    /// incremental index's exact dominator counts, not by an O(n²) pass
    /// over the retrieved set.
    pub fn band_tuples(&self, level: usize) -> Vec<Arc<Tuple>> {
        self.index.band_members(level).map(Arc::clone).collect()
    }

    /// `true` if any retrieved tuple matches `query` — exact for every
    /// query shape.
    ///
    /// Queries whose predicates are all *upper bounds* on the dominance
    /// attributes are downward closed under coordinate-wise ≤, so a
    /// retrieved tuple matches iff some tuple of the current (minimal)
    /// skyline matches — scanning the small skyline is exact. Every other
    /// shape (equality pivots on point attributes, the `≥`-rooted boxes of
    /// domination subspaces) walks the posting lists of the most selective
    /// constrained attribute; the old collector fell back to scanning the
    /// entire retrieved set for those.
    pub fn any_seen_matches(&self, query: &Query) -> bool {
        if self.retrieved.is_empty() {
            return false;
        }
        let Some(bounds) = self.fold_bounds(query) else {
            return false; // unsatisfiable conjunction matches nothing
        };
        let cons: Vec<(AttrId, Value, Value)> = bounds
            .iter()
            .enumerate()
            .filter(|&(_, &(lo, hi))| lo > 0 || hi < i64::from(Value::MAX))
            .map(|(attr, &(lo, hi))| {
                let hi = hi.min(i64::from(Value::MAX)) as Value;
                (attr, lo as Value, hi)
            })
            .collect();
        if cons.is_empty() {
            return true; // SELECT * matches any retrieved tuple
        }

        let downward_closed = cons
            .iter()
            .all(|&(attr, lo, _)| lo == 0 && self.attrs.contains(&attr));
        if downward_closed {
            return self.index.skyline().any(|t| t.within_bounds(&cons));
        }

        // Broad queries usually hit within the first few retrieved tuples;
        // a short prefix probe resolves those at full-scan speed before any
        // index machinery runs.
        if self
            .retrieved
            .iter()
            .take(8)
            .any(|t| t.within_bounds(&cons))
        {
            return true;
        }

        // Pick the constrained attribute with the fewest candidate tuples;
        // counting walks only the value buckets inside the bound (capped in
        // both candidates seen and buckets visited), and equality pivots
        // resolve with a single bucket lookup. When even the best predicate
        // is broad (no selective entry point), a plain early-exit scan of
        // the retrieved set beats walking posting buckets, so the probe
        // degrades to the old collector's full-scan fallback plus the
        // constant-sized bound-folding preamble above (tens of ns — see
        // the any_seen_matches_ge_box row of BENCH_knowledge.json).
        let bucket_range = |&(attr, lo, hi): &(AttrId, Value, Value)| -> &[Vec<u32>] {
            let buckets = &self.postings[attr];
            let lo = (lo as usize).min(buckets.len());
            let hi = (hi as usize).saturating_add(1).min(buckets.len());
            &buckets[lo..hi]
        };
        let cutoff = (self.retrieved.len() / 4).max(16);
        let mut best: Option<(usize, (AttrId, Value, Value))> = None;
        for &c in &cons {
            let cap = best.map_or(cutoff, |(count, _)| count.min(cutoff));
            let mut count = 0usize;
            for (visited, bucket) in bucket_range(&c).iter().enumerate() {
                count += bucket.len();
                if visited >= 256 {
                    // Too wide a value range to size cheaply: treat the
                    // predicate as unselective rather than keep walking.
                    count = count.max(cap);
                }
                if count >= cap {
                    break;
                }
            }
            if best.is_none_or(|(b, _)| count < b) {
                best = Some((count, c));
            }
        }
        let (count, best) = best.expect("cons is non-empty");
        if count >= cutoff {
            return self.retrieved.iter().any(|t| t.within_bounds(&cons));
        }
        bucket_range(&best)
            .iter()
            .flatten()
            .any(|&pos| self.retrieved[pos as usize].within_bounds(&cons))
    }

    /// The smallest-key skyline tuple dominating `t`, if any — a
    /// deterministic answer (the old BNL collector returned whichever
    /// dominator its insertion order happened to place first).
    pub fn dominated_by_skyline(&self, t: &Tuple) -> Option<&Arc<Tuple>> {
        self.index.first_skyline_dominator(t)
    }

    /// Folds the query's predicates into one closed `[lo, hi]` interval per
    /// attribute; `None` if the conjunction is unsatisfiable over `u32`
    /// values.
    fn fold_bounds(&self, query: &Query) -> Option<Bounds> {
        let arity = self.postings.len();
        let mut bounds: Bounds = vec![(0, i64::from(Value::MAX)); arity];
        for p in query.predicates() {
            if p.attr >= arity {
                // No retrieved tuple carries this attribute (the database
                // would have rejected the query); nothing can match.
                return None;
            }
            let (lo, hi) = &mut bounds[p.attr];
            let v = i64::from(p.value);
            match p.op {
                CmpOp::Lt => *hi = (*hi).min(v - 1),
                CmpOp::Le => *hi = (*hi).min(v),
                CmpOp::Eq => {
                    *lo = (*lo).max(v);
                    *hi = (*hi).min(v);
                }
                CmpOp::Ge => *lo = (*lo).max(v),
                CmpOp::Gt => *lo = (*lo).max(v + 1),
            }
            if *lo > *hi {
                return None;
            }
        }
        Some(bounds)
    }

    /// Appends the knowledge base to `out` in the binary checkpoint format:
    /// the dominance attributes, the band, the retrieval-ordered tuple list
    /// and the anytime trace. The posting lists and the incremental index
    /// are *not* stored — [`KnowledgeBase::decode`] rebuilds them by
    /// replaying the ingest, which is deterministic in retrieval order.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        codec::put_usize_slice(out, &self.attrs);
        codec::put_usize(out, self.index.band());
        codec::put_usize(out, self.retrieved.len());
        for t in &self.retrieved {
            codec::put_tuple(out, t);
        }
        codec::put_usize(out, self.trace.len());
        for p in &self.trace {
            codec::put_u64(out, p.queries);
            codec::put_usize(out, p.skyline_found);
        }
    }

    /// Restores a knowledge base from the binary checkpoint format by
    /// replaying the ingest of the stored tuple list, then reattaching the
    /// recorded trace. Because ingest deduplicates by id and builds the
    /// posting lists and incremental index in retrieval order, the restored
    /// state is identical to the encoded one (re-encoding reproduces the
    /// same bytes).
    pub(crate) fn decode(r: &mut codec::Reader<'_>) -> Result<Self, codec::CodecError> {
        let attrs = codec::read_usize_vec(r)?;
        let band = r.usize()?;
        let mut kb = KnowledgeBase::with_band(attrs, band);
        let n = r.usize()?;
        for _ in 0..n {
            let t = codec::read_tuple(r)?;
            kb.ingest(std::slice::from_ref(&t));
        }
        let n = r.usize()?;
        let mut trace = Vec::new();
        for _ in 0..n {
            let queries = r.u64()?;
            let skyline_found = r.usize()?;
            trace.push(TracePoint {
                queries,
                skyline_found,
            });
        }
        kb.trace = trace;
        Ok(kb)
    }

    /// Consumes the knowledge base into a [`DiscoveryResult`], sharing
    /// every tuple handle with the database store.
    pub fn finish(self, query_cost: u64, complete: bool) -> DiscoveryResult {
        let mut retrieved = self.retrieved;
        retrieved.sort_by_key(|t| t.id);
        let mut skyline: Vec<Arc<Tuple>> = self.index.skyline().map(Arc::clone).collect();
        skyline.sort_by_key(|t| t.id);
        DiscoveryResult {
            skyline,
            retrieved,
            query_cost,
            trace: self.trace,
            complete,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_hidden_db::Predicate;

    #[test]
    fn maintains_skyline_of_seen() {
        let mut kb = KnowledgeBase::new(vec![0, 1]);
        kb.ingest_owned(vec![Tuple::new(1, vec![4, 4])]);
        assert_eq!(kb.skyline_len(), 1);
        kb.ingest_owned(vec![Tuple::new(3, vec![3, 2])]);
        // (3,2) dominates (4,4).
        assert_eq!(kb.skyline_len(), 1);
        assert_eq!(kb.skyline_tuples()[0].id, 3);
        kb.ingest_owned(vec![Tuple::new(0, vec![5, 1]), Tuple::new(3, vec![3, 2])]);
        assert_eq!(kb.skyline_len(), 2);
        assert_eq!(kb.retrieved_len(), 3);
    }

    #[test]
    fn trace_and_finish() {
        let mut kb = KnowledgeBase::new(vec![0, 1]);
        kb.record(1);
        kb.ingest_owned(vec![Tuple::new(0, vec![5, 1])]);
        kb.record(2);
        let result = kb.finish(2, true);
        assert_eq!(result.trace.len(), 2);
        assert_eq!(result.trace[0].skyline_found, 0);
        assert_eq!(result.trace[1].skyline_found, 1);
        assert_eq!(result.query_cost, 2);
        assert!(result.complete);
        assert!((result.queries_per_skyline() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn matching_and_domination_helpers() {
        let mut kb = KnowledgeBase::new(vec![0, 1]);
        kb.ingest_owned(vec![Tuple::new(3, vec![3, 2])]);
        assert!(kb.any_seen_matches(&Query::new(vec![Predicate::lt(0, 4)])));
        assert!(!kb.any_seen_matches(&Query::new(vec![Predicate::lt(0, 2)])));
        assert!(kb
            .dominated_by_skyline(&Tuple::new(9, vec![4, 4]))
            .is_some());
        assert!(kb
            .dominated_by_skyline(&Tuple::new(9, vec![1, 1]))
            .is_none());
    }

    #[test]
    fn any_seen_matches_covers_non_downward_closed_shapes() {
        let mut kb = KnowledgeBase::new(vec![0, 1, 2]);
        kb.ingest_owned(vec![
            Tuple::new(0, vec![2, 5, 1]),
            Tuple::new(1, vec![4, 2, 0]),
            Tuple::new(2, vec![7, 7, 2]),
        ]);
        // Equality pivot (MQ point phase).
        assert!(kb.any_seen_matches(&Query::new(vec![Predicate::eq(2, 0)])));
        assert!(!kb.any_seen_matches(&Query::new(vec![Predicate::eq(2, 3)])));
        // Equality pivot conjoined with a range.
        assert!(kb.any_seen_matches(&Query::new(vec![Predicate::eq(2, 2), Predicate::ge(0, 6),])));
        assert!(!kb.any_seen_matches(&Query::new(vec![Predicate::eq(2, 2), Predicate::lt(0, 6),])));
        // ≥-rooted box (sky-band domination subspaces).
        assert!(kb.any_seen_matches(&Query::new(vec![Predicate::ge(0, 4), Predicate::ge(1, 2),])));
        assert!(!kb.any_seen_matches(&Query::new(vec![Predicate::ge(0, 8), Predicate::ge(1, 2),])));
        // Unsatisfiable conjunction.
        assert!(!kb.any_seen_matches(&Query::new(vec![Predicate::lt(0, 3), Predicate::gt(0, 5),])));
        // SELECT *.
        assert!(kb.any_seen_matches(&Query::select_all()));
    }

    #[test]
    fn band_levels_are_exact() {
        let mut kb = KnowledgeBase::with_band(vec![0, 1], 3);
        // Chain (i, i): tuple i has exactly i dominators.
        kb.ingest_owned(
            (0..6)
                .map(|i| Tuple::new(i, vec![i as u32, i as u32]))
                .collect(),
        );
        assert_eq!(kb.band_tuples(1).len(), 1);
        assert_eq!(kb.band_tuples(2).len(), 2);
        assert_eq!(kb.band_tuples(3).len(), 3);
        assert_eq!(kb.skyline_len(), 1);
    }

    #[test]
    fn ingest_deduplicates_and_aliases() {
        let mut kb = KnowledgeBase::new(vec![0]);
        let t = Arc::new(Tuple::new(7, vec![3]));
        kb.ingest(&[Arc::clone(&t), Arc::clone(&t)]);
        kb.ingest(&[Arc::clone(&t)]);
        assert_eq!(kb.retrieved_len(), 1);
        assert!(Arc::ptr_eq(&kb.retrieved_snapshot()[0], &t));
    }
}
