//! Analytical query-cost models from the paper (Section 3.2), used by the
//! Figure 4 / Figure 15 harnesses and by tests that sanity-check the
//! measured costs against theory.
//!
//! * [`sq_worst_case_bound`] — the worst-case bound `O(m · |S|^{m+1})` on
//!   the number of queries SQ-DB-SKY can issue under an arbitrary
//!   (ill-behaved) domination-consistent ranking function.
//! * [`sq_average_case_cost`] — the exact expectation `E(C_s)` of the query
//!   cost under the random-over-matching-skyline ranking model, computed
//!   with the paper's recurrence (Equation 4); [`sq_average_case_closed_form`]
//!   evaluates the closed form of Equation 5 and must agree with it.
//! * [`sq_average_case_upper_bound`] — the `(e + e·|S|/m)^m` bound of
//!   Equation 10, whose growth in `|S|` is orders of magnitude slower than
//!   the worst case.
//! * [`pq2d_cost`] — Equation 11, the exact (instance-optimal) query cost of
//!   PQ-2D-SKY on a given 2D skyline.

/// Worst-case query cost bound of SQ-DB-SKY: `m · |S|^{m+1}` (Section 3.2).
///
/// Returned as `f64` because the bound overflows 64-bit integers already for
/// moderate `m` and `|S|`.
pub fn sq_worst_case_bound(m: usize, s: usize) -> f64 {
    (m as f64) * (s as f64).powi(m as i32 + 1)
}

/// Expected query cost `E(C_s)` of SQ-DB-SKY under the average-case model
/// (the ranking function returns a uniformly random skyline tuple of the
/// matching set), computed with the recurrence of Equation 4:
///
/// `E(C_s) = 1 + (m / s) · Σ_{i=0}^{s-1} E(C_i)`, with `E(C_0) = 1`.
pub fn sq_average_case_cost(m: usize, s: usize) -> f64 {
    assert!(m >= 1, "need at least one attribute");
    let m = m as f64;
    let mut costs = Vec::with_capacity(s + 1);
    costs.push(1.0); // C_0
    let mut prefix_sum = 1.0;
    for i in 1..=s {
        let c = 1.0 + (m / i as f64) * prefix_sum;
        prefix_sum += c;
        costs.push(c);
    }
    costs[s]
}

/// Closed form of the average-case cost, derived from Equation 5 of the
/// paper:
///
/// `E(C_s) = m·((m+s-1)! − (m−1)!·s!) / ((m−1)·(m−1)!·s!) + 1` for `m ≥ 2`.
///
/// The paper's Equation 5 omits the `+1` accounting for the root
/// (`SELECT *`) query that the recurrence of Equation 4 includes; we add it
/// back so that this closed form agrees exactly with
/// [`sq_average_case_cost`] (e.g. for `m = 2` the cost is `2s + 1`, i.e. the
/// `2s` reported in the paper plus the root query).
///
/// Evaluated with logarithms of factorials to stay finite for large inputs.
pub fn sq_average_case_closed_form(m: usize, s: usize) -> f64 {
    assert!(
        m >= 2,
        "the closed form requires m >= 2 (m = 1 is degenerate)"
    );
    if s == 0 {
        return 1.0;
    }
    let m_f = m as f64;
    // (m+s-1)! / ((m-1)! * s!) = C(m+s-1, s); compute via ln-factorial sums.
    let ln_binom = ln_factorial(m + s - 1) - ln_factorial(m - 1) - ln_factorial(s);
    let binom = ln_binom.exp();
    m_f * (binom - 1.0) / (m_f - 1.0) + 1.0
}

/// The `(e + e·s/m)^m` upper bound of Equation 10 on the average-case cost.
pub fn sq_average_case_upper_bound(m: usize, s: usize) -> f64 {
    let e = std::f64::consts::E;
    (e + e * (s as f64) / (m as f64)).powi(m as i32)
}

/// Natural logarithm of `n!` via a Stirling-free exact sum (fine for the
/// input sizes used in the experiments).
fn ln_factorial(n: usize) -> f64 {
    (1..=n).map(|i| (i as f64).ln()).sum()
}

/// Equation 11: the exact query cost of PQ-2D-SKY given the skyline points
/// of a 2D database (sorted by the first attribute, ascending) and the two
/// domain sizes.
pub fn pq2d_cost(skyline_sorted: &[(u32, u32)], dx: u32, dy: u32) -> u64 {
    crate::pq2d::eq11_cost(skyline_sorted, dx, dy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_bound_grows_fast() {
        // m · s^(m+1) = 2 · 3^3.
        assert_eq!(sq_worst_case_bound(2, 3), 54.0);
        assert!(sq_worst_case_bound(8, 19) > sq_worst_case_bound(4, 19));
        assert!(sq_worst_case_bound(4, 19) > sq_worst_case_bound(4, 3));
    }

    #[test]
    fn average_case_base_cases() {
        // |S| = 1: the SELECT * query plus m empty branches.
        for m in 1..=6 {
            assert!((sq_average_case_cost(m, 1) - (m as f64 + 1.0)).abs() < 1e-9);
        }
        // |S| = 0 (empty database): a single query.
        assert!((sq_average_case_cost(3, 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn average_case_m2_is_2s_plus_root() {
        // The paper notes E(C_s) = 2s for m = 2; the recurrence additionally
        // counts the root SELECT * query, giving 2s + 1.
        for s in 1..=40 {
            assert!(
                (sq_average_case_cost(2, s) - (2.0 * s as f64 + 1.0)).abs() < 1e-6,
                "E(C_{s}) for m=2 should be {}",
                2 * s + 1
            );
        }
    }

    #[test]
    fn recurrence_matches_closed_form() {
        for m in 2..=8 {
            for s in 0..=25 {
                let rec = sq_average_case_cost(m, s);
                let closed = sq_average_case_closed_form(m, s);
                let rel = (rec - closed).abs() / closed.max(1.0);
                assert!(
                    rel < 1e-6,
                    "m={m}, s={s}: recurrence {rec} vs closed form {closed}"
                );
            }
        }
    }

    #[test]
    fn average_case_is_below_its_upper_bound() {
        for m in 2..=8 {
            for s in 1..=30 {
                assert!(
                    sq_average_case_cost(m, s) <= sq_average_case_upper_bound(m, s) * 1.0001,
                    "m={m}, s={s}"
                );
            }
        }
    }

    #[test]
    fn average_case_is_orders_of_magnitude_below_worst_case() {
        // The Figure 4 message: for m = 8, |S| = 19 the gap is enormous.
        let avg = sq_average_case_cost(8, 19);
        let worst = sq_worst_case_bound(8, 19);
        assert!(worst / avg > 1e6);
    }

    #[test]
    fn pq2d_cost_is_reexported() {
        // min(5-0, 9-5) + min(9-5, 5-0) = 4 + 4.
        assert_eq!(pq2d_cost(&[(5, 5)], 10, 10), 8);
    }
}
