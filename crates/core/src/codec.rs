//! The versioned binary codec behind crash/restore failover: hand-rolled
//! encode/decode for [`Checkpoint`](crate::Checkpoint)s, [`QueryPlan`]s and
//! response batches, with corruption detection.
//!
//! # Envelope format
//!
//! Every sealed buffer is one *envelope*:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"SWCK"
//! 4       2     format version, u16 LE (currently 1)
//! 6       1     payload kind (1 = checkpoint, 2 = plan, 3 = responses,
//!               4 = hello, 5 = welcome, 6 = error reply)
//! 7       8     payload length, u64 LE
//! 15      n     payload
//! 15+n    8     FNV-1a 64 checksum of the payload, u64 LE
//! ```
//!
//! Decoding validates every layer in order — magic, version, kind, exact
//! length, checksum — before a single payload byte is interpreted, so a
//! truncated file, a foreign file, a future-version file and a bit-flipped
//! file are all rejected with a specific [`CodecError`] instead of being
//! mis-restored. The payload itself is a flat little-endian structure walk
//! (no self-describing framing): integers are fixed-width LE, collections
//! are length-prefixed with a `u64`, options carry a one-byte presence
//! flag, and enums carry a one-byte tag.
//!
//! The same envelopes are framed over TCP by `skyweb-net` (kinds 2–6; see
//! `docs/wire-protocol.md`). That makes every decode path here subject to
//! **untrusted input**: a length or count prefix is attacker-controlled
//! until it has been validated. Two defenses apply. Stream transports
//! validate the header's length claim against a frame cap via
//! [`parse_header`] *before* reading or allocating a payload, and every
//! collection reader below validates its count prefix against the bytes
//! actually remaining ([`Reader::len_prefix`]) *before* preallocating —
//! a 16-byte frame claiming a 2⁴⁰-element collection is rejected as
//! truncation without a single oversized allocation.
//!
//! # Checkpoint payloads
//!
//! A checkpoint payload is `machine tag (u8)` + the machine chassis
//! (issued-query counter, halted flag, first-skyline-at, the complete
//! [`KnowledgeBase`]) + the control state of the concrete algorithm. All
//! eight discovery machines are supported:
//!
//! | tag | machine |
//! |-----|---------|
//! | 1 | SQ-DB-SKY |
//! | 2 | RQ-DB-SKY |
//! | 3 | PQ-DB-SKY |
//! | 4 | PQ-2D-SKY |
//! | 5 | MQ-DB-SKY |
//! | 6 | RQ-SKYBAND |
//! | 7 | BASELINE (region crawl) |
//! | 8 | POINT-CRAWL |
//!
//! The knowledge base is stored as its retrieval-ordered tuple list plus
//! the anytime trace; decoding **replays** the ingest, which rebuilds the
//! posting lists and the incremental dominance index in exactly the state
//! they had at pause time (ingest is deterministic in retrieval order).
//! Hash-set valued control state (MQ leaf memos, sky-band roots) is written
//! in sorted order, so re-encoding a decoded checkpoint reproduces the
//! original bytes — the property the round-trip test suites pin.

use std::fmt;
use std::sync::Arc;

use skyweb_hidden_db::{
    AttributeRole, AttributeSpec, CmpOp, InterfaceType, Predicate, PrefixGroup, Query, QueryError,
    QueryResponse, Schema, SegmentError, Tuple,
};

use crate::machine::{DiscoveryMachine, Machine, QueryPlan};
use crate::KnowledgeBase;

/// Magic bytes every sealed buffer starts with.
pub const MAGIC: [u8; 4] = *b"SWCK";

/// The format version this build writes and the only one it reads.
pub const FORMAT_VERSION: u16 = 1;

/// Envelope kind of a checkpoint payload.
pub const KIND_CHECKPOINT: u8 = 1;
/// Envelope kind of a query-plan payload.
pub const KIND_PLAN: u8 = 2;
/// Envelope kind of a response-batch payload.
pub const KIND_RESPONSES: u8 = 3;
/// Envelope kind of a client handshake payload (wire protocol).
pub const KIND_HELLO: u8 = 4;
/// Envelope kind of a server handshake payload (wire protocol).
pub const KIND_WELCOME: u8 = 5;
/// Envelope kind of an error reply: the answered prefix of a plan plus the
/// [`QueryError`] that cut it short (wire protocol).
pub const KIND_ERROR: u8 = 6;

/// Version of the TCP wire protocol spoken by `skyweb-net` (handshake,
/// frame sequencing, error mapping). Independent of [`FORMAT_VERSION`],
/// which versions the envelope encoding itself: a wire-protocol bump can
/// reuse the same envelopes, and vice versa.
pub const WIRE_PROTOCOL: u32 = 1;

pub(crate) const TAG_SQ: u8 = 1;
pub(crate) const TAG_RQ: u8 = 2;
pub(crate) const TAG_PQ: u8 = 3;
pub(crate) const TAG_PQ2D: u8 = 4;
pub(crate) const TAG_MQ: u8 = 5;
pub(crate) const TAG_SKYBAND: u8 = 6;
pub(crate) const TAG_CRAWL: u8 = 7;
pub(crate) const TAG_POINT_CRAWL: u8 = 8;

/// Size of the fixed envelope header (magic + version + kind + length).
pub const HEADER_LEN: usize = 15;
/// Size of the trailing payload checksum.
pub const CHECKSUM_LEN: usize = 8;

/// Why a byte buffer was rejected by the codec. A corrupted or foreign
/// buffer always surfaces as an error — it is never silently mis-restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ends before the structure it claims to carry.
    Truncated,
    /// The buffer does not start with the [`MAGIC`] bytes.
    BadMagic,
    /// The buffer was written by an unknown format version.
    UnsupportedVersion {
        /// The version found in the envelope header.
        found: u16,
    },
    /// The envelope carries a different payload kind than requested.
    WrongKind {
        /// The kind the caller asked to decode.
        expected: u8,
        /// The kind found in the envelope header.
        found: u8,
    },
    /// The payload checksum does not match: the bytes were corrupted.
    ChecksumMismatch,
    /// An enum tag in the payload has no defined meaning.
    BadTag {
        /// The offending tag byte.
        tag: u8,
    },
    /// The payload decoded cleanly but left unconsumed bytes behind.
    TrailingBytes,
    /// The machine does not support the binary checkpoint codec (a custom
    /// [`MachineControl`](crate::MachineControl) without a codec tag).
    Unsupported,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "buffer is truncated"),
            CodecError::BadMagic => write!(f, "bad magic: not a skyweb codec buffer"),
            CodecError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported format version {found} (supported: {FORMAT_VERSION})"
                )
            }
            CodecError::WrongKind { expected, found } => {
                write!(f, "wrong payload kind {found} (expected {expected})")
            }
            CodecError::ChecksumMismatch => write!(f, "payload checksum mismatch: corrupted bytes"),
            CodecError::BadTag { tag } => write!(f, "undefined enum tag {tag} in payload"),
            CodecError::TrailingBytes => write!(f, "payload left trailing bytes unconsumed"),
            CodecError::Unsupported => {
                write!(
                    f,
                    "this machine does not support the binary checkpoint codec"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64-bit hash of `bytes` — the envelope's corruption detector.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Little-endian `u64` from the first 8 bytes of `b`, zero-padded when
/// shorter. Callers always slice exactly 8 bytes; the zero pad replaces
/// the `try_into().expect(...)` panic path that lint L1 bans.
fn le_u64(b: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    for (d, s) in buf.iter_mut().zip(b) {
        *d = *s;
    }
    u64::from_le_bytes(buf)
}

/// Little-endian `i64` from the first 8 bytes of `b` (see [`le_u64`]).
fn le_i64(b: &[u8]) -> i64 {
    let mut buf = [0u8; 8];
    for (d, s) in buf.iter_mut().zip(b) {
        *d = *s;
    }
    i64::from_le_bytes(buf)
}

/// Little-endian `u32` from the first 4 bytes of `b` (see [`le_u64`]).
fn le_u32(b: &[u8]) -> u32 {
    let mut buf = [0u8; 4];
    for (d, s) in buf.iter_mut().zip(b) {
        *d = *s;
    }
    u32::from_le_bytes(buf)
}

/// Widens a `usize` to the wire's `u64` without an `as` cast (lint L2
/// bans bare casts on wire paths); infallible on supported targets.
pub(crate) fn u64_of(v: usize) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// Wraps `payload` in the magic/version/kind/length/checksum envelope.
pub(crate) fn seal(kind: u8, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&u64_of(payload.len()).to_le_bytes());
    let checksum = fnv1a64(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Validates the fixed 15-byte envelope header (magic and format version)
/// and returns `(kind, payload length claim)` — without touching, or even
/// requiring, the payload bytes.
///
/// This is the hook stream transports use to vet a frame *before* it is
/// read off the wire: the length claim is attacker-controlled, so it must
/// be checked against the transport's frame cap before a single payload
/// byte is buffered. The claim is returned unvalidated on purpose — only
/// the caller knows its cap; [`open`] later enforces exact-length and
/// checksum equality on the full buffer.
pub fn parse_header(header: &[u8]) -> Result<(u8, u64), CodecError> {
    if header.len() < 4 {
        return Err(CodecError::Truncated);
    }
    if header[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    if header.len() < HEADER_LEN {
        return Err(CodecError::Truncated);
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != FORMAT_VERSION {
        return Err(CodecError::UnsupportedVersion { found: version });
    }
    Ok((header[6], le_u64(&header[7..15])))
}

/// Validates the envelope of `bytes` and returns the payload slice.
pub(crate) fn open(bytes: &[u8], expected_kind: u8) -> Result<&[u8], CodecError> {
    let (kind, len) = parse_header(bytes)?;
    if kind != expected_kind {
        return Err(CodecError::WrongKind {
            expected: expected_kind,
            found: kind,
        });
    }
    let Ok(len) = usize::try_from(len) else {
        return Err(CodecError::Truncated);
    };
    let Some(total) = HEADER_LEN
        .checked_add(len)
        .and_then(|n| n.checked_add(CHECKSUM_LEN))
    else {
        return Err(CodecError::Truncated);
    };
    if bytes.len() < total {
        return Err(CodecError::Truncated);
    }
    if bytes.len() > total {
        return Err(CodecError::TrailingBytes);
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + len];
    let stored = le_u64(&bytes[total - CHECKSUM_LEN..]);
    if fnv1a64(payload) != stored {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok(payload)
}

/// A cursor over a payload slice; every read checks bounds and surfaces
/// [`CodecError::Truncated`] instead of panicking.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(le_u32(self.take(4)?))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(le_u64(self.take(8)?))
    }

    pub(crate) fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(le_i64(self.take(8)?))
    }

    pub(crate) fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::Truncated)
    }

    pub(crate) fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag { tag }),
        }
    }

    pub(crate) fn opt_u64(&mut self) -> Result<Option<u64>, CodecError> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    pub(crate) fn string(&mut self) -> Result<String, CodecError> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadTag { tag: 0 })
    }

    /// Bytes of the payload not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads a collection-count prefix and validates it against the bytes
    /// actually remaining before the caller preallocates: a count whose
    /// elements (at a minimum of `min_elem_bytes` each) could not possibly
    /// fit in the rest of the payload is rejected as [`CodecError::Truncated`].
    /// The count prefix is attacker-controlled on wire paths, so every
    /// `Vec::with_capacity` in a decoder must be driven by this, never by
    /// the raw prefix.
    pub(crate) fn len_prefix(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let len = self.usize()?;
        if len > self.remaining() / min_elem_bytes.max(1) {
            return Err(CodecError::Truncated);
        }
        Ok(len)
    }

    /// Asserts that the payload was consumed exactly.
    pub(crate) fn finish(&self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }
}

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, u64_of(v));
}

pub(crate) fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

pub(crate) fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    put_bool(out, v.is_some());
    if let Some(v) = v {
        put_u64(out, v);
    }
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_usize_slice(out: &mut Vec<u8>, v: &[usize]) {
    put_usize(out, v.len());
    for &x in v {
        put_usize(out, x);
    }
}

pub(crate) fn read_usize_vec(r: &mut Reader<'_>) -> Result<Vec<usize>, CodecError> {
    let len = r.len_prefix(8)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(r.usize()?);
    }
    Ok(out)
}

pub(crate) fn put_u32_slice(out: &mut Vec<u8>, v: &[u32]) {
    put_usize(out, v.len());
    for &x in v {
        put_u32(out, x);
    }
}

pub(crate) fn read_u32_vec(r: &mut Reader<'_>) -> Result<Vec<u32>, CodecError> {
    let len = r.len_prefix(4)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(r.u32()?);
    }
    Ok(out)
}

fn cmp_op_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Lt => 0,
        CmpOp::Le => 1,
        CmpOp::Eq => 2,
        CmpOp::Ge => 3,
        CmpOp::Gt => 4,
    }
}

fn cmp_op_from_tag(tag: u8) -> Result<CmpOp, CodecError> {
    Ok(match tag {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Eq,
        3 => CmpOp::Ge,
        4 => CmpOp::Gt,
        tag => return Err(CodecError::BadTag { tag }),
    })
}

pub(crate) fn put_predicate(out: &mut Vec<u8>, p: &Predicate) {
    put_usize(out, p.attr);
    put_u8(out, cmp_op_tag(p.op));
    put_u32(out, p.value);
}

pub(crate) fn read_predicate(r: &mut Reader<'_>) -> Result<Predicate, CodecError> {
    let attr = r.usize()?;
    let op = cmp_op_from_tag(r.u8()?)?;
    let value = r.u32()?;
    Ok(Predicate::new(attr, op, value))
}

pub(crate) fn put_predicates(out: &mut Vec<u8>, preds: &[Predicate]) {
    put_usize(out, preds.len());
    for p in preds {
        put_predicate(out, p);
    }
}

pub(crate) fn read_predicates(r: &mut Reader<'_>) -> Result<Vec<Predicate>, CodecError> {
    // A predicate is 8 (attr) + 1 (op tag) + 4 (value) bytes.
    let len = r.len_prefix(13)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(read_predicate(r)?);
    }
    Ok(out)
}

pub(crate) fn put_query(out: &mut Vec<u8>, q: &Query) {
    put_predicates(out, q.predicates());
}

pub(crate) fn read_query(r: &mut Reader<'_>) -> Result<Query, CodecError> {
    Ok(Query::new(read_predicates(r)?))
}

pub(crate) fn put_tuple(out: &mut Vec<u8>, t: &Tuple) {
    put_u64(out, t.id);
    put_u32_slice(out, &t.values);
}

pub(crate) fn read_tuple(r: &mut Reader<'_>) -> Result<Arc<Tuple>, CodecError> {
    let id = r.u64()?;
    let values = read_u32_vec(r)?;
    Ok(Arc::new(Tuple::new(id, values)))
}

fn interface_tag(i: InterfaceType) -> u8 {
    match i {
        InterfaceType::Sq => 0,
        InterfaceType::Rq => 1,
        InterfaceType::Pq => 2,
    }
}

fn interface_from_tag(tag: u8) -> Result<InterfaceType, CodecError> {
    Ok(match tag {
        0 => InterfaceType::Sq,
        1 => InterfaceType::Rq,
        2 => InterfaceType::Pq,
        tag => return Err(CodecError::BadTag { tag }),
    })
}

pub(crate) fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_usize(out, schema.len());
    for spec in schema.attrs() {
        put_str(out, &spec.name);
        put_u32(out, spec.domain_size);
        put_u8(out, interface_tag(spec.interface));
        put_u8(
            out,
            match spec.role {
                AttributeRole::Ranking => 0,
                AttributeRole::Filtering => 1,
            },
        );
    }
}

pub(crate) fn read_schema(r: &mut Reader<'_>) -> Result<Schema, CodecError> {
    // An attribute spec is at least 8 (name length) + 4 + 1 + 1 bytes.
    let len = r.len_prefix(14)?;
    let mut attrs = Vec::with_capacity(len);
    for _ in 0..len {
        let name = r.string()?;
        let domain_size = r.u32()?;
        let interface = interface_from_tag(r.u8()?)?;
        let role = match r.u8()? {
            0 => AttributeRole::Ranking,
            1 => AttributeRole::Filtering,
            tag => return Err(CodecError::BadTag { tag }),
        };
        attrs.push(AttributeSpec {
            name,
            domain_size,
            interface,
            role,
        });
    }
    Ok(Schema::new(attrs))
}

/// Serializes a [`QueryPlan`] (queries plus the optional sibling-group
/// annotation) into a sealed envelope.
pub fn encode_plan(plan: &QueryPlan) -> Vec<u8> {
    let mut payload = Vec::new();
    put_usize(&mut payload, plan.len());
    for q in plan.queries() {
        put_query(&mut payload, q);
    }
    match plan.groups() {
        None => put_bool(&mut payload, false),
        Some(groups) => {
            put_bool(&mut payload, true);
            put_usize(&mut payload, groups.len());
            for g in groups {
                put_usize(&mut payload, g.len);
                put_usize(&mut payload, g.prefix_len);
            }
        }
    }
    seal(KIND_PLAN, payload)
}

/// Restores a [`QueryPlan`] from a sealed envelope produced by
/// [`encode_plan`].
pub fn decode_plan(bytes: &[u8]) -> Result<QueryPlan, CodecError> {
    let payload = open(bytes, KIND_PLAN)?;
    let mut r = Reader::new(payload);
    // A query is at least its empty predicate list: 8 bytes.
    let n = r.len_prefix(8)?;
    let mut queries = Vec::with_capacity(n);
    for _ in 0..n {
        queries.push(read_query(&mut r)?);
    }
    let plan = if r.bool()? {
        // A group is 8 (len) + 8 (prefix_len) bytes.
        let n = r.len_prefix(16)?;
        let mut groups = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r.usize()?;
            let prefix_len = r.usize()?;
            groups.push(PrefixGroup { len, prefix_len });
        }
        QueryPlan::with_groups(queries, groups)
    } else {
        QueryPlan::new(queries)
    };
    r.finish()?;
    Ok(plan)
}

/// Writes a batch of [`QueryResponse`]s into `payload` (shared by the
/// responses envelope and the error-reply envelope).
fn put_responses(payload: &mut Vec<u8>, responses: &[QueryResponse]) {
    put_usize(payload, responses.len());
    for resp in responses {
        put_usize(payload, resp.tuples.len());
        for t in &resp.tuples {
            put_tuple(payload, t);
        }
        put_bool(payload, resp.overflowed);
    }
}

/// Reads a batch of [`QueryResponse`]s written by [`put_responses`].
fn read_responses(r: &mut Reader<'_>) -> Result<Vec<QueryResponse>, CodecError> {
    // A response is at least 8 (tuple count) + 1 (overflow flag) bytes.
    let n = r.len_prefix(9)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // A tuple is at least 8 (id) + 8 (value count) bytes.
        let t = r.len_prefix(16)?;
        let mut tuples = Vec::with_capacity(t);
        for _ in 0..t {
            tuples.push(read_tuple(r)?);
        }
        let overflowed = r.bool()?;
        out.push(QueryResponse { tuples, overflowed });
    }
    Ok(out)
}

/// Serializes a batch of [`QueryResponse`]s into a sealed envelope.
pub fn encode_responses(responses: &[QueryResponse]) -> Vec<u8> {
    let mut payload = Vec::new();
    put_responses(&mut payload, responses);
    seal(KIND_RESPONSES, payload)
}

/// Restores a batch of [`QueryResponse`]s from a sealed envelope produced
/// by [`encode_responses`]. The tuples come back as fresh `Arc` handles
/// (they no longer alias a database store).
pub fn decode_responses(bytes: &[u8]) -> Result<Vec<QueryResponse>, CodecError> {
    let payload = open(bytes, KIND_RESPONSES)?;
    let mut r = Reader::new(payload);
    let out = read_responses(&mut r)?;
    r.finish()?;
    Ok(out)
}

/// Decodes a checkpoint payload (tag + chassis + control) into a boxed
/// machine; the dispatch point over the eight machine tags.
pub(crate) fn decode_machine(r: &mut Reader<'_>) -> Result<Box<dyn DiscoveryMachine>, CodecError> {
    let tag = r.u8()?;
    let issued = r.u64()?;
    let halted = r.bool()?;
    let first_skyline_at = r.opt_u64()?;
    let kb = KnowledgeBase::decode(r)?;
    Ok(match tag {
        TAG_SQ => Box::new(Machine::from_restored(
            kb,
            issued,
            halted,
            first_skyline_at,
            crate::sq::SqControl::decode(r)?,
        )),
        TAG_RQ => Box::new(Machine::from_restored(
            kb,
            issued,
            halted,
            first_skyline_at,
            crate::rq::RqControl::decode(r)?,
        )),
        TAG_PQ => Box::new(Machine::from_restored(
            kb,
            issued,
            halted,
            first_skyline_at,
            crate::pq::PqControl::decode(r)?,
        )),
        TAG_PQ2D => Box::new(Machine::from_restored(
            kb,
            issued,
            halted,
            first_skyline_at,
            crate::pq2d::Pq2dControl::decode(r)?,
        )),
        TAG_MQ => Box::new(Machine::from_restored(
            kb,
            issued,
            halted,
            first_skyline_at,
            crate::mq::MqControl::decode(r)?,
        )),
        TAG_SKYBAND => Box::new(Machine::from_restored(
            kb,
            issued,
            halted,
            first_skyline_at,
            crate::skyband::SkybandControl::decode(r)?,
        )),
        TAG_CRAWL => Box::new(Machine::from_restored(
            kb,
            issued,
            halted,
            first_skyline_at,
            crate::baseline::CrawlControl::decode(r)?,
        )),
        TAG_POINT_CRAWL => Box::new(Machine::from_restored(
            kb,
            issued,
            halted,
            first_skyline_at,
            crate::baseline::PointCrawlControl::decode(r)?,
        )),
        tag => return Err(CodecError::BadTag { tag }),
    })
}

// ---------------------------------------------------------------------------
// Wire-protocol payloads (kinds 4–6): the handshake and error-reply
// envelopes framed over TCP by `skyweb-net`. See `docs/wire-protocol.md`.
// ---------------------------------------------------------------------------

/// The client half of the wire handshake: the first frame on a new
/// connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// The wire-protocol version the client speaks ([`WIRE_PROTOCOL`]).
    pub protocol: u32,
    /// Free-form client label the server uses for per-connection
    /// accounting (e.g. the tenant or machine name).
    pub label: String,
}

/// The server half of the wire handshake: identifies the hidden database
/// behind the connection so a remote client can build machine replicas
/// without ever seeing a tuple.
#[derive(Debug, Clone)]
pub struct Welcome {
    /// The wire-protocol version the server speaks ([`WIRE_PROTOCOL`]).
    pub protocol: u32,
    /// Name of the server's ranking function.
    pub ranker: String,
    /// The interface's top-`k` result cap.
    pub k: u64,
    /// Number of tuples behind the interface (public metadata in the
    /// paper's model: clients size crawl budgets from it).
    pub tuple_count: u64,
    /// The public query schema.
    pub schema: Schema,
}

/// Serializes a [`Hello`] handshake into a sealed envelope.
pub fn encode_hello(hello: &Hello) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u32(&mut payload, hello.protocol);
    put_str(&mut payload, &hello.label);
    seal(KIND_HELLO, payload)
}

/// Restores a [`Hello`] from a sealed envelope produced by
/// [`encode_hello`].
pub fn decode_hello(bytes: &[u8]) -> Result<Hello, CodecError> {
    let payload = open(bytes, KIND_HELLO)?;
    let mut r = Reader::new(payload);
    let protocol = r.u32()?;
    let label = r.string()?;
    r.finish()?;
    Ok(Hello { protocol, label })
}

/// Serializes a [`Welcome`] handshake into a sealed envelope.
pub fn encode_welcome(welcome: &Welcome) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u32(&mut payload, welcome.protocol);
    put_str(&mut payload, &welcome.ranker);
    put_u64(&mut payload, welcome.k);
    put_u64(&mut payload, welcome.tuple_count);
    put_schema(&mut payload, &welcome.schema);
    seal(KIND_WELCOME, payload)
}

/// Restores a [`Welcome`] from a sealed envelope produced by
/// [`encode_welcome`].
pub fn decode_welcome(bytes: &[u8]) -> Result<Welcome, CodecError> {
    let payload = open(bytes, KIND_WELCOME)?;
    let mut r = Reader::new(payload);
    let protocol = r.u32()?;
    let ranker = r.string()?;
    let k = r.u64()?;
    let tuple_count = r.u64()?;
    let schema = read_schema(&mut r)?;
    r.finish()?;
    Ok(Welcome {
        protocol,
        ranker,
        k,
        tuple_count,
        schema,
    })
}

/// Writes a [`SegmentError`] with a one-byte variant tag. The I/O variant's
/// [`std::io::ErrorKind`] is folded into the detail string — it is an OS
/// detail with no stable wire representation — and decodes as
/// [`std::io::ErrorKind::Other`].
fn put_segment_error(out: &mut Vec<u8>, e: &SegmentError) {
    match e {
        SegmentError::Io { kind, detail } => {
            put_u8(out, 0);
            put_str(out, &format!("{kind:?}: {detail}"));
        }
        SegmentError::Truncated => put_u8(out, 1),
        SegmentError::BadMagic => put_u8(out, 2),
        SegmentError::UnsupportedVersion { found } => {
            put_u8(out, 3);
            let [lo, hi] = found.to_le_bytes();
            put_u8(out, lo);
            put_u8(out, hi);
        }
        SegmentError::WrongKind { expected, found } => {
            put_u8(out, 4);
            put_u8(out, *expected);
            put_u8(out, *found);
        }
        SegmentError::ChecksumMismatch => put_u8(out, 5),
        SegmentError::TrailingBytes => put_u8(out, 6),
        SegmentError::Malformed { detail } => {
            put_u8(out, 7);
            put_str(out, detail);
        }
        SegmentError::RankerMismatch { expected, found } => {
            put_u8(out, 8);
            put_str(out, expected);
            put_str(out, found);
        }
    }
}

/// Reads a [`SegmentError`] written by [`put_segment_error`].
fn read_segment_error(r: &mut Reader<'_>) -> Result<SegmentError, CodecError> {
    Ok(match r.u8()? {
        0 => SegmentError::Io {
            kind: std::io::ErrorKind::Other,
            detail: r.string()?,
        },
        1 => SegmentError::Truncated,
        2 => SegmentError::BadMagic,
        3 => {
            let lo = r.u8()?;
            let hi = r.u8()?;
            SegmentError::UnsupportedVersion {
                found: u16::from_le_bytes([lo, hi]),
            }
        }
        4 => SegmentError::WrongKind {
            expected: r.u8()?,
            found: r.u8()?,
        },
        5 => SegmentError::ChecksumMismatch,
        6 => SegmentError::TrailingBytes,
        7 => SegmentError::Malformed {
            detail: r.string()?,
        },
        8 => SegmentError::RankerMismatch {
            expected: r.string()?,
            found: r.string()?,
        },
        tag => return Err(CodecError::BadTag { tag }),
    })
}

/// Writes a [`QueryError`] with a one-byte variant tag (0–8, in
/// declaration order).
fn put_query_error(out: &mut Vec<u8>, e: &QueryError) {
    match e {
        QueryError::UnknownAttribute { attr } => {
            put_u8(out, 0);
            put_usize(out, *attr);
        }
        QueryError::UnsupportedPredicate {
            attr,
            op,
            interface,
        } => {
            put_u8(out, 1);
            put_usize(out, *attr);
            put_u8(out, cmp_op_tag(*op));
            put_u8(out, interface_tag(*interface));
        }
        QueryError::ValueOutOfDomain {
            attr,
            value,
            domain_size,
        } => {
            put_u8(out, 2);
            put_usize(out, *attr);
            put_u32(out, *value);
            put_u32(out, *domain_size);
        }
        QueryError::RateLimitExceeded { limit } => {
            put_u8(out, 3);
            put_u64(out, *limit);
        }
        QueryError::Unavailable => put_u8(out, 4),
        QueryError::Timeout { elapsed_ms } => {
            put_u8(out, 5);
            put_u64(out, *elapsed_ms);
        }
        QueryError::Throttled => put_u8(out, 6),
        QueryError::ConnectionDropped => put_u8(out, 7),
        QueryError::Storage { error } => {
            put_u8(out, 8);
            put_segment_error(out, error);
        }
    }
}

/// Reads a [`QueryError`] written by [`put_query_error`].
fn read_query_error(r: &mut Reader<'_>) -> Result<QueryError, CodecError> {
    Ok(match r.u8()? {
        0 => QueryError::UnknownAttribute { attr: r.usize()? },
        1 => QueryError::UnsupportedPredicate {
            attr: r.usize()?,
            op: cmp_op_from_tag(r.u8()?)?,
            interface: interface_from_tag(r.u8()?)?,
        },
        2 => QueryError::ValueOutOfDomain {
            attr: r.usize()?,
            value: r.u32()?,
            domain_size: r.u32()?,
        },
        3 => QueryError::RateLimitExceeded { limit: r.u64()? },
        4 => QueryError::Unavailable,
        5 => QueryError::Timeout {
            elapsed_ms: r.u64()?,
        },
        6 => QueryError::Throttled,
        7 => QueryError::ConnectionDropped,
        8 => QueryError::Storage {
            error: read_segment_error(r)?,
        },
        tag => return Err(CodecError::BadTag { tag }),
    })
}

/// Serializes an error reply — the answered prefix of a plan plus the
/// [`QueryError`] that cut it short — into a sealed envelope. This is how
/// the wire carries the oracle contract's `(Vec<QueryResponse>,
/// Option<QueryError>)` shape: a fully answered plan travels as a plain
/// responses envelope, a cut plan as this one.
pub fn encode_error_reply(answered: &[QueryResponse], error: &QueryError) -> Vec<u8> {
    let mut payload = Vec::new();
    put_responses(&mut payload, answered);
    put_query_error(&mut payload, error);
    seal(KIND_ERROR, payload)
}

/// Restores an error reply from a sealed envelope produced by
/// [`encode_error_reply`].
pub fn decode_error_reply(bytes: &[u8]) -> Result<(Vec<QueryResponse>, QueryError), CodecError> {
    let payload = open(bytes, KIND_ERROR)?;
    let mut r = Reader::new(payload);
    let answered = read_responses(&mut r)?;
    let error = read_query_error(&mut r)?;
    r.finish()?;
    Ok((answered, error))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_hidden_db::Predicate;

    #[test]
    fn envelope_rejects_every_corruption_class() {
        let sealed = seal(KIND_PLAN, vec![1, 2, 3, 4]);
        assert!(open(&sealed, KIND_PLAN).is_ok());
        // Truncations at every length.
        for cut in 0..sealed.len() {
            assert!(open(&sealed[..cut], KIND_PLAN).is_err(), "cut at {cut}");
        }
        // Trailing garbage.
        let mut longer = sealed.clone();
        longer.push(0);
        assert_eq!(open(&longer, KIND_PLAN), Err(CodecError::TrailingBytes));
        // Wrong kind requested.
        assert!(matches!(
            open(&sealed, KIND_CHECKPOINT),
            Err(CodecError::WrongKind { .. })
        ));
        // Every single-bit flip is caught.
        for byte in 0..sealed.len() {
            for bit in 0..8 {
                let mut bad = sealed.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    open(&bad, KIND_PLAN).is_err(),
                    "flip of byte {byte} bit {bit} must be rejected"
                );
            }
        }
    }

    #[test]
    fn plan_round_trips_with_and_without_groups() {
        let queries = vec![
            Query::select_all(),
            Query::new(vec![Predicate::lt(0, 5), Predicate::ge(1, 2)]),
        ];
        let plain = QueryPlan::new(queries.clone());
        assert_eq!(decode_plan(&encode_plan(&plain)).unwrap(), plain);
        let grouped = QueryPlan::with_groups(
            queries,
            vec![PrefixGroup {
                len: 2,
                prefix_len: 0,
            }],
        );
        assert_eq!(decode_plan(&encode_plan(&grouped)).unwrap(), grouped);
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            QueryResponse {
                tuples: vec![
                    Arc::new(Tuple::new(3, vec![1, 2])),
                    Arc::new(Tuple::new(9, vec![0, 7])),
                ],
                overflowed: true,
            },
            QueryResponse {
                tuples: Vec::new(),
                overflowed: false,
            },
        ];
        let decoded = decode_responses(&encode_responses(&responses)).unwrap();
        assert_eq!(decoded.len(), 2);
        assert!(decoded[0].overflowed);
        assert_eq!(decoded[0].tuples[0].id, 3);
        assert_eq!(decoded[0].tuples[1].values, vec![0, 7]);
        assert!(decoded[1].tuples.is_empty());
    }

    #[test]
    fn schema_round_trips() {
        let schema = skyweb_hidden_db::SchemaBuilder::new()
            .ranking("price", 100, InterfaceType::Rq)
            .ranking("stops", 3, InterfaceType::Pq)
            .filtering("carrier", 14)
            .build();
        let mut buf = Vec::new();
        put_schema(&mut buf, &schema);
        let mut r = Reader::new(&buf);
        let decoded = read_schema(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded.attr(0).name, "price");
        assert_eq!(decoded.attr(1).interface, InterfaceType::Pq);
        assert_eq!(decoded.attr(2).role, AttributeRole::Filtering);
        assert_eq!(decoded.ranking_attrs(), &[0, 1]);
    }

    #[test]
    fn tiny_frame_claiming_huge_payload_is_rejected_cheaply() {
        // A 16-byte frame whose header claims a 2^40-byte payload: the
        // header parse must reject it from the length claim alone (the
        // stream transport checks the claim against its frame cap before
        // allocating), and `open` must reject it as truncation without
        // trusting the claim.
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        frame.push(KIND_PLAN);
        frame.extend_from_slice(&(1u64 << 40).to_le_bytes());
        frame.push(0);
        assert_eq!(frame.len(), 16);
        let (kind, len) = parse_header(&frame).unwrap();
        assert_eq!((kind, len), (KIND_PLAN, 1 << 40));
        assert_eq!(open(&frame, KIND_PLAN), Err(CodecError::Truncated));
    }

    #[test]
    fn forged_count_prefix_is_rejected_before_preallocation() {
        // Seal a *valid* envelope whose payload is a forged count: the
        // checksum passes, so only the count-vs-remaining validation in
        // `len_prefix` stands between the decoder and a 2^40-element
        // `Vec::with_capacity`. Every collection decoder must reject it.
        let forged = (1u64 << 40).to_le_bytes().to_vec();
        let plan = seal(KIND_PLAN, forged.clone());
        assert_eq!(decode_plan(&plan), Err(CodecError::Truncated));
        let responses = seal(KIND_RESPONSES, forged.clone());
        assert!(matches!(
            decode_responses(&responses),
            Err(CodecError::Truncated)
        ));
        let error_reply = seal(KIND_ERROR, forged.clone());
        assert!(matches!(
            decode_error_reply(&error_reply),
            Err(CodecError::Truncated)
        ));
        // A forged inner count (tuple count inside the first response).
        let mut payload = Vec::new();
        put_usize(&mut payload, 1);
        payload.extend_from_slice(&forged);
        let inner = seal(KIND_RESPONSES, payload);
        assert!(matches!(
            decode_responses(&inner),
            Err(CodecError::Truncated)
        ));
        // And a forged schema count inside a welcome frame.
        let mut payload = Vec::new();
        put_u32(&mut payload, WIRE_PROTOCOL);
        put_str(&mut payload, "sum");
        put_u64(&mut payload, 10);
        put_u64(&mut payload, 100);
        payload.extend_from_slice(&forged);
        let welcome = seal(KIND_WELCOME, payload);
        assert!(matches!(
            decode_welcome(&welcome),
            Err(CodecError::Truncated)
        ));
    }

    #[test]
    fn hello_and_welcome_round_trip() {
        let hello = Hello {
            protocol: WIRE_PROTOCOL,
            label: "tenant-sq".to_string(),
        };
        assert_eq!(decode_hello(&encode_hello(&hello)).unwrap(), hello);
        let schema = skyweb_hidden_db::SchemaBuilder::new()
            .ranking("price", 100, InterfaceType::Rq)
            .filtering("carrier", 14)
            .build();
        let welcome = Welcome {
            protocol: WIRE_PROTOCOL,
            ranker: "sum".to_string(),
            k: 10,
            tuple_count: 100_000,
            schema,
        };
        let decoded = decode_welcome(&encode_welcome(&welcome)).unwrap();
        assert_eq!(decoded.protocol, welcome.protocol);
        assert_eq!(decoded.ranker, welcome.ranker);
        assert_eq!(decoded.k, welcome.k);
        assert_eq!(decoded.tuple_count, welcome.tuple_count);
        assert_eq!(decoded.schema.len(), 2);
        assert_eq!(decoded.schema.attr(0).name, "price");
    }

    #[test]
    fn error_reply_round_trips_every_variant() {
        let answered = vec![QueryResponse {
            tuples: vec![Arc::new(Tuple::new(7, vec![3, 1]))],
            overflowed: false,
        }];
        let errors = vec![
            QueryError::UnknownAttribute { attr: 9 },
            QueryError::UnsupportedPredicate {
                attr: 2,
                op: CmpOp::Gt,
                interface: InterfaceType::Sq,
            },
            QueryError::ValueOutOfDomain {
                attr: 1,
                value: 77,
                domain_size: 10,
            },
            QueryError::RateLimitExceeded { limit: 500 },
            QueryError::Unavailable,
            QueryError::Timeout { elapsed_ms: 250 },
            QueryError::Throttled,
            QueryError::ConnectionDropped,
            QueryError::Storage {
                error: SegmentError::ChecksumMismatch,
            },
            QueryError::Storage {
                error: SegmentError::UnsupportedVersion { found: 9 },
            },
            QueryError::Storage {
                error: SegmentError::RankerMismatch {
                    expected: "sum".to_string(),
                    found: "mean".to_string(),
                },
            },
        ];
        for err in errors {
            let sealed = encode_error_reply(&answered, &err);
            let (got_answered, got_err) = decode_error_reply(&sealed).unwrap();
            assert_eq!(got_answered.len(), 1);
            assert_eq!(got_answered[0].tuples[0].id, 7);
            assert_eq!(format!("{got_err:?}"), format!("{err:?}"));
        }
        // The I/O kind is folded into the detail string on the wire.
        let io = QueryError::Storage {
            error: SegmentError::Io {
                kind: std::io::ErrorKind::NotFound,
                detail: "gone".to_string(),
            },
        };
        let (_, got) = decode_error_reply(&encode_error_reply(&[], &io)).unwrap();
        match got {
            QueryError::Storage {
                error: SegmentError::Io { kind, detail },
            } => {
                assert_eq!(kind, std::io::ErrorKind::Other);
                assert_eq!(detail, "NotFound: gone");
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn wire_frames_reject_bit_flips_and_wrong_kinds() {
        let hello = encode_hello(&Hello {
            protocol: WIRE_PROTOCOL,
            label: "t".to_string(),
        });
        for byte in 0..hello.len() {
            for bit in 0..8 {
                let mut bad = hello.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_hello(&bad).is_err(),
                    "flip of byte {byte} bit {bit} must be rejected"
                );
            }
        }
        // Kind confusion between the wire envelopes is caught.
        assert!(matches!(
            decode_welcome(&hello),
            Err(CodecError::WrongKind {
                expected: KIND_WELCOME,
                found: KIND_HELLO,
            })
        ));
    }
}
