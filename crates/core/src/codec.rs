//! The versioned binary codec behind crash/restore failover: hand-rolled
//! encode/decode for [`Checkpoint`](crate::Checkpoint)s, [`QueryPlan`]s and
//! response batches, with corruption detection.
//!
//! # Envelope format
//!
//! Every sealed buffer is one *envelope*:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"SWCK"
//! 4       2     format version, u16 LE (currently 1)
//! 6       1     payload kind (1 = checkpoint, 2 = plan, 3 = responses)
//! 7       8     payload length, u64 LE
//! 15      n     payload
//! 15+n    8     FNV-1a 64 checksum of the payload, u64 LE
//! ```
//!
//! Decoding validates every layer in order — magic, version, kind, exact
//! length, checksum — before a single payload byte is interpreted, so a
//! truncated file, a foreign file, a future-version file and a bit-flipped
//! file are all rejected with a specific [`CodecError`] instead of being
//! mis-restored. The payload itself is a flat little-endian structure walk
//! (no self-describing framing): integers are fixed-width LE, collections
//! are length-prefixed with a `u64`, options carry a one-byte presence
//! flag, and enums carry a one-byte tag.
//!
//! # Checkpoint payloads
//!
//! A checkpoint payload is `machine tag (u8)` + the machine chassis
//! (issued-query counter, halted flag, first-skyline-at, the complete
//! [`KnowledgeBase`]) + the control state of the concrete algorithm. All
//! eight discovery machines are supported:
//!
//! | tag | machine |
//! |-----|---------|
//! | 1 | SQ-DB-SKY |
//! | 2 | RQ-DB-SKY |
//! | 3 | PQ-DB-SKY |
//! | 4 | PQ-2D-SKY |
//! | 5 | MQ-DB-SKY |
//! | 6 | RQ-SKYBAND |
//! | 7 | BASELINE (region crawl) |
//! | 8 | POINT-CRAWL |
//!
//! The knowledge base is stored as its retrieval-ordered tuple list plus
//! the anytime trace; decoding **replays** the ingest, which rebuilds the
//! posting lists and the incremental dominance index in exactly the state
//! they had at pause time (ingest is deterministic in retrieval order).
//! Hash-set valued control state (MQ leaf memos, sky-band roots) is written
//! in sorted order, so re-encoding a decoded checkpoint reproduces the
//! original bytes — the property the round-trip test suites pin.

use std::fmt;
use std::sync::Arc;

use skyweb_hidden_db::{
    AttributeRole, AttributeSpec, CmpOp, InterfaceType, Predicate, PrefixGroup, Query,
    QueryResponse, Schema, Tuple,
};

use crate::machine::{DiscoveryMachine, Machine, QueryPlan};
use crate::KnowledgeBase;

/// Magic bytes every sealed buffer starts with.
pub const MAGIC: [u8; 4] = *b"SWCK";

/// The format version this build writes and the only one it reads.
pub const FORMAT_VERSION: u16 = 1;

/// Envelope kind of a checkpoint payload.
pub const KIND_CHECKPOINT: u8 = 1;
/// Envelope kind of a query-plan payload.
pub const KIND_PLAN: u8 = 2;
/// Envelope kind of a response-batch payload.
pub const KIND_RESPONSES: u8 = 3;

pub(crate) const TAG_SQ: u8 = 1;
pub(crate) const TAG_RQ: u8 = 2;
pub(crate) const TAG_PQ: u8 = 3;
pub(crate) const TAG_PQ2D: u8 = 4;
pub(crate) const TAG_MQ: u8 = 5;
pub(crate) const TAG_SKYBAND: u8 = 6;
pub(crate) const TAG_CRAWL: u8 = 7;
pub(crate) const TAG_POINT_CRAWL: u8 = 8;

const HEADER_LEN: usize = 15;
const CHECKSUM_LEN: usize = 8;

/// Why a byte buffer was rejected by the codec. A corrupted or foreign
/// buffer always surfaces as an error — it is never silently mis-restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ends before the structure it claims to carry.
    Truncated,
    /// The buffer does not start with the [`MAGIC`] bytes.
    BadMagic,
    /// The buffer was written by an unknown format version.
    UnsupportedVersion {
        /// The version found in the envelope header.
        found: u16,
    },
    /// The envelope carries a different payload kind than requested.
    WrongKind {
        /// The kind the caller asked to decode.
        expected: u8,
        /// The kind found in the envelope header.
        found: u8,
    },
    /// The payload checksum does not match: the bytes were corrupted.
    ChecksumMismatch,
    /// An enum tag in the payload has no defined meaning.
    BadTag {
        /// The offending tag byte.
        tag: u8,
    },
    /// The payload decoded cleanly but left unconsumed bytes behind.
    TrailingBytes,
    /// The machine does not support the binary checkpoint codec (a custom
    /// [`MachineControl`](crate::MachineControl) without a codec tag).
    Unsupported,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "buffer is truncated"),
            CodecError::BadMagic => write!(f, "bad magic: not a skyweb codec buffer"),
            CodecError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported format version {found} (supported: {FORMAT_VERSION})"
                )
            }
            CodecError::WrongKind { expected, found } => {
                write!(f, "wrong payload kind {found} (expected {expected})")
            }
            CodecError::ChecksumMismatch => write!(f, "payload checksum mismatch: corrupted bytes"),
            CodecError::BadTag { tag } => write!(f, "undefined enum tag {tag} in payload"),
            CodecError::TrailingBytes => write!(f, "payload left trailing bytes unconsumed"),
            CodecError::Unsupported => {
                write!(
                    f,
                    "this machine does not support the binary checkpoint codec"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64-bit hash of `bytes` — the envelope's corruption detector.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Little-endian `u64` from the first 8 bytes of `b`, zero-padded when
/// shorter. Callers always slice exactly 8 bytes; the zero pad replaces
/// the `try_into().expect(...)` panic path that lint L1 bans.
fn le_u64(b: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    for (d, s) in buf.iter_mut().zip(b) {
        *d = *s;
    }
    u64::from_le_bytes(buf)
}

/// Little-endian `i64` from the first 8 bytes of `b` (see [`le_u64`]).
fn le_i64(b: &[u8]) -> i64 {
    let mut buf = [0u8; 8];
    for (d, s) in buf.iter_mut().zip(b) {
        *d = *s;
    }
    i64::from_le_bytes(buf)
}

/// Little-endian `u32` from the first 4 bytes of `b` (see [`le_u64`]).
fn le_u32(b: &[u8]) -> u32 {
    let mut buf = [0u8; 4];
    for (d, s) in buf.iter_mut().zip(b) {
        *d = *s;
    }
    u32::from_le_bytes(buf)
}

/// Widens a `usize` to the wire's `u64` without an `as` cast (lint L2
/// bans bare casts on wire paths); infallible on supported targets.
pub(crate) fn u64_of(v: usize) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// Wraps `payload` in the magic/version/kind/length/checksum envelope.
pub(crate) fn seal(kind: u8, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&u64_of(payload.len()).to_le_bytes());
    let checksum = fnv1a64(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Validates the envelope of `bytes` and returns the payload slice.
pub(crate) fn open(bytes: &[u8], expected_kind: u8) -> Result<&[u8], CodecError> {
    if bytes.len() < 4 {
        return Err(CodecError::Truncated);
    }
    if bytes[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(CodecError::Truncated);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FORMAT_VERSION {
        return Err(CodecError::UnsupportedVersion { found: version });
    }
    let kind = bytes[6];
    if kind != expected_kind {
        return Err(CodecError::WrongKind {
            expected: expected_kind,
            found: kind,
        });
    }
    let len = le_u64(&bytes[7..15]);
    let Ok(len) = usize::try_from(len) else {
        return Err(CodecError::Truncated);
    };
    let Some(total) = HEADER_LEN
        .checked_add(len)
        .and_then(|n| n.checked_add(CHECKSUM_LEN))
    else {
        return Err(CodecError::Truncated);
    };
    if bytes.len() < total {
        return Err(CodecError::Truncated);
    }
    if bytes.len() > total {
        return Err(CodecError::TrailingBytes);
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + len];
    let stored = le_u64(&bytes[total - CHECKSUM_LEN..]);
    if fnv1a64(payload) != stored {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok(payload)
}

/// A cursor over a payload slice; every read checks bounds and surfaces
/// [`CodecError::Truncated`] instead of panicking.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(le_u32(self.take(4)?))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(le_u64(self.take(8)?))
    }

    pub(crate) fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(le_i64(self.take(8)?))
    }

    pub(crate) fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::Truncated)
    }

    pub(crate) fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag { tag }),
        }
    }

    pub(crate) fn opt_u64(&mut self) -> Result<Option<u64>, CodecError> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    pub(crate) fn string(&mut self) -> Result<String, CodecError> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadTag { tag: 0 })
    }

    /// Asserts that the payload was consumed exactly.
    pub(crate) fn finish(&self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }
}

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, u64_of(v));
}

pub(crate) fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

pub(crate) fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    put_bool(out, v.is_some());
    if let Some(v) = v {
        put_u64(out, v);
    }
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_usize_slice(out: &mut Vec<u8>, v: &[usize]) {
    put_usize(out, v.len());
    for &x in v {
        put_usize(out, x);
    }
}

pub(crate) fn read_usize_vec(r: &mut Reader<'_>) -> Result<Vec<usize>, CodecError> {
    let len = r.usize()?;
    let mut out = Vec::new();
    for _ in 0..len {
        out.push(r.usize()?);
    }
    Ok(out)
}

pub(crate) fn put_u32_slice(out: &mut Vec<u8>, v: &[u32]) {
    put_usize(out, v.len());
    for &x in v {
        put_u32(out, x);
    }
}

pub(crate) fn read_u32_vec(r: &mut Reader<'_>) -> Result<Vec<u32>, CodecError> {
    let len = r.usize()?;
    let mut out = Vec::new();
    for _ in 0..len {
        out.push(r.u32()?);
    }
    Ok(out)
}

fn cmp_op_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Lt => 0,
        CmpOp::Le => 1,
        CmpOp::Eq => 2,
        CmpOp::Ge => 3,
        CmpOp::Gt => 4,
    }
}

fn cmp_op_from_tag(tag: u8) -> Result<CmpOp, CodecError> {
    Ok(match tag {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Eq,
        3 => CmpOp::Ge,
        4 => CmpOp::Gt,
        tag => return Err(CodecError::BadTag { tag }),
    })
}

pub(crate) fn put_predicate(out: &mut Vec<u8>, p: &Predicate) {
    put_usize(out, p.attr);
    put_u8(out, cmp_op_tag(p.op));
    put_u32(out, p.value);
}

pub(crate) fn read_predicate(r: &mut Reader<'_>) -> Result<Predicate, CodecError> {
    let attr = r.usize()?;
    let op = cmp_op_from_tag(r.u8()?)?;
    let value = r.u32()?;
    Ok(Predicate::new(attr, op, value))
}

pub(crate) fn put_predicates(out: &mut Vec<u8>, preds: &[Predicate]) {
    put_usize(out, preds.len());
    for p in preds {
        put_predicate(out, p);
    }
}

pub(crate) fn read_predicates(r: &mut Reader<'_>) -> Result<Vec<Predicate>, CodecError> {
    let len = r.usize()?;
    let mut out = Vec::new();
    for _ in 0..len {
        out.push(read_predicate(r)?);
    }
    Ok(out)
}

pub(crate) fn put_query(out: &mut Vec<u8>, q: &Query) {
    put_predicates(out, q.predicates());
}

pub(crate) fn read_query(r: &mut Reader<'_>) -> Result<Query, CodecError> {
    Ok(Query::new(read_predicates(r)?))
}

pub(crate) fn put_tuple(out: &mut Vec<u8>, t: &Tuple) {
    put_u64(out, t.id);
    put_u32_slice(out, &t.values);
}

pub(crate) fn read_tuple(r: &mut Reader<'_>) -> Result<Arc<Tuple>, CodecError> {
    let id = r.u64()?;
    let values = read_u32_vec(r)?;
    Ok(Arc::new(Tuple::new(id, values)))
}

fn interface_tag(i: InterfaceType) -> u8 {
    match i {
        InterfaceType::Sq => 0,
        InterfaceType::Rq => 1,
        InterfaceType::Pq => 2,
    }
}

fn interface_from_tag(tag: u8) -> Result<InterfaceType, CodecError> {
    Ok(match tag {
        0 => InterfaceType::Sq,
        1 => InterfaceType::Rq,
        2 => InterfaceType::Pq,
        tag => return Err(CodecError::BadTag { tag }),
    })
}

pub(crate) fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_usize(out, schema.len());
    for spec in schema.attrs() {
        put_str(out, &spec.name);
        put_u32(out, spec.domain_size);
        put_u8(out, interface_tag(spec.interface));
        put_u8(
            out,
            match spec.role {
                AttributeRole::Ranking => 0,
                AttributeRole::Filtering => 1,
            },
        );
    }
}

pub(crate) fn read_schema(r: &mut Reader<'_>) -> Result<Schema, CodecError> {
    let len = r.usize()?;
    let mut attrs = Vec::new();
    for _ in 0..len {
        let name = r.string()?;
        let domain_size = r.u32()?;
        let interface = interface_from_tag(r.u8()?)?;
        let role = match r.u8()? {
            0 => AttributeRole::Ranking,
            1 => AttributeRole::Filtering,
            tag => return Err(CodecError::BadTag { tag }),
        };
        attrs.push(AttributeSpec {
            name,
            domain_size,
            interface,
            role,
        });
    }
    Ok(Schema::new(attrs))
}

/// Serializes a [`QueryPlan`] (queries plus the optional sibling-group
/// annotation) into a sealed envelope.
pub fn encode_plan(plan: &QueryPlan) -> Vec<u8> {
    let mut payload = Vec::new();
    put_usize(&mut payload, plan.len());
    for q in plan.queries() {
        put_query(&mut payload, q);
    }
    match plan.groups() {
        None => put_bool(&mut payload, false),
        Some(groups) => {
            put_bool(&mut payload, true);
            put_usize(&mut payload, groups.len());
            for g in groups {
                put_usize(&mut payload, g.len);
                put_usize(&mut payload, g.prefix_len);
            }
        }
    }
    seal(KIND_PLAN, payload)
}

/// Restores a [`QueryPlan`] from a sealed envelope produced by
/// [`encode_plan`].
pub fn decode_plan(bytes: &[u8]) -> Result<QueryPlan, CodecError> {
    let payload = open(bytes, KIND_PLAN)?;
    let mut r = Reader::new(payload);
    let n = r.usize()?;
    let mut queries = Vec::new();
    for _ in 0..n {
        queries.push(read_query(&mut r)?);
    }
    let plan = if r.bool()? {
        let n = r.usize()?;
        let mut groups = Vec::new();
        for _ in 0..n {
            let len = r.usize()?;
            let prefix_len = r.usize()?;
            groups.push(PrefixGroup { len, prefix_len });
        }
        QueryPlan::with_groups(queries, groups)
    } else {
        QueryPlan::new(queries)
    };
    r.finish()?;
    Ok(plan)
}

/// Serializes a batch of [`QueryResponse`]s into a sealed envelope.
pub fn encode_responses(responses: &[QueryResponse]) -> Vec<u8> {
    let mut payload = Vec::new();
    put_usize(&mut payload, responses.len());
    for resp in responses {
        put_usize(&mut payload, resp.tuples.len());
        for t in &resp.tuples {
            put_tuple(&mut payload, t);
        }
        put_bool(&mut payload, resp.overflowed);
    }
    seal(KIND_RESPONSES, payload)
}

/// Restores a batch of [`QueryResponse`]s from a sealed envelope produced
/// by [`encode_responses`]. The tuples come back as fresh `Arc` handles
/// (they no longer alias a database store).
pub fn decode_responses(bytes: &[u8]) -> Result<Vec<QueryResponse>, CodecError> {
    let payload = open(bytes, KIND_RESPONSES)?;
    let mut r = Reader::new(payload);
    let n = r.usize()?;
    let mut out = Vec::new();
    for _ in 0..n {
        let t = r.usize()?;
        let mut tuples = Vec::new();
        for _ in 0..t {
            tuples.push(read_tuple(&mut r)?);
        }
        let overflowed = r.bool()?;
        out.push(QueryResponse { tuples, overflowed });
    }
    r.finish()?;
    Ok(out)
}

/// Decodes a checkpoint payload (tag + chassis + control) into a boxed
/// machine; the dispatch point over the eight machine tags.
pub(crate) fn decode_machine(r: &mut Reader<'_>) -> Result<Box<dyn DiscoveryMachine>, CodecError> {
    let tag = r.u8()?;
    let issued = r.u64()?;
    let halted = r.bool()?;
    let first_skyline_at = r.opt_u64()?;
    let kb = KnowledgeBase::decode(r)?;
    Ok(match tag {
        TAG_SQ => Box::new(Machine::from_restored(
            kb,
            issued,
            halted,
            first_skyline_at,
            crate::sq::SqControl::decode(r)?,
        )),
        TAG_RQ => Box::new(Machine::from_restored(
            kb,
            issued,
            halted,
            first_skyline_at,
            crate::rq::RqControl::decode(r)?,
        )),
        TAG_PQ => Box::new(Machine::from_restored(
            kb,
            issued,
            halted,
            first_skyline_at,
            crate::pq::PqControl::decode(r)?,
        )),
        TAG_PQ2D => Box::new(Machine::from_restored(
            kb,
            issued,
            halted,
            first_skyline_at,
            crate::pq2d::Pq2dControl::decode(r)?,
        )),
        TAG_MQ => Box::new(Machine::from_restored(
            kb,
            issued,
            halted,
            first_skyline_at,
            crate::mq::MqControl::decode(r)?,
        )),
        TAG_SKYBAND => Box::new(Machine::from_restored(
            kb,
            issued,
            halted,
            first_skyline_at,
            crate::skyband::SkybandControl::decode(r)?,
        )),
        TAG_CRAWL => Box::new(Machine::from_restored(
            kb,
            issued,
            halted,
            first_skyline_at,
            crate::baseline::CrawlControl::decode(r)?,
        )),
        TAG_POINT_CRAWL => Box::new(Machine::from_restored(
            kb,
            issued,
            halted,
            first_skyline_at,
            crate::baseline::PointCrawlControl::decode(r)?,
        )),
        tag => return Err(CodecError::BadTag { tag }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_hidden_db::Predicate;

    #[test]
    fn envelope_rejects_every_corruption_class() {
        let sealed = seal(KIND_PLAN, vec![1, 2, 3, 4]);
        assert!(open(&sealed, KIND_PLAN).is_ok());
        // Truncations at every length.
        for cut in 0..sealed.len() {
            assert!(open(&sealed[..cut], KIND_PLAN).is_err(), "cut at {cut}");
        }
        // Trailing garbage.
        let mut longer = sealed.clone();
        longer.push(0);
        assert_eq!(open(&longer, KIND_PLAN), Err(CodecError::TrailingBytes));
        // Wrong kind requested.
        assert!(matches!(
            open(&sealed, KIND_CHECKPOINT),
            Err(CodecError::WrongKind { .. })
        ));
        // Every single-bit flip is caught.
        for byte in 0..sealed.len() {
            for bit in 0..8 {
                let mut bad = sealed.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    open(&bad, KIND_PLAN).is_err(),
                    "flip of byte {byte} bit {bit} must be rejected"
                );
            }
        }
    }

    #[test]
    fn plan_round_trips_with_and_without_groups() {
        let queries = vec![
            Query::select_all(),
            Query::new(vec![Predicate::lt(0, 5), Predicate::ge(1, 2)]),
        ];
        let plain = QueryPlan::new(queries.clone());
        assert_eq!(decode_plan(&encode_plan(&plain)).unwrap(), plain);
        let grouped = QueryPlan::with_groups(
            queries,
            vec![PrefixGroup {
                len: 2,
                prefix_len: 0,
            }],
        );
        assert_eq!(decode_plan(&encode_plan(&grouped)).unwrap(), grouped);
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            QueryResponse {
                tuples: vec![
                    Arc::new(Tuple::new(3, vec![1, 2])),
                    Arc::new(Tuple::new(9, vec![0, 7])),
                ],
                overflowed: true,
            },
            QueryResponse {
                tuples: Vec::new(),
                overflowed: false,
            },
        ];
        let decoded = decode_responses(&encode_responses(&responses)).unwrap();
        assert_eq!(decoded.len(), 2);
        assert!(decoded[0].overflowed);
        assert_eq!(decoded[0].tuples[0].id, 3);
        assert_eq!(decoded[0].tuples[1].values, vec![0, 7]);
        assert!(decoded[1].tuples.is_empty());
    }

    #[test]
    fn schema_round_trips() {
        let schema = skyweb_hidden_db::SchemaBuilder::new()
            .ranking("price", 100, InterfaceType::Rq)
            .ranking("stops", 3, InterfaceType::Pq)
            .filtering("carrier", 14)
            .build();
        let mut buf = Vec::new();
        put_schema(&mut buf, &schema);
        let mut r = Reader::new(&buf);
        let decoded = read_schema(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded.attr(0).name, "price");
        assert_eq!(decoded.attr(1).interface, InterfaceType::Pq);
        assert_eq!(decoded.attr(2).role, AttributeRole::Filtering);
        assert_eq!(decoded.ranking_attrs(), &[0, 1]);
    }
}
