//! PQ-DB-SKY (Algorithm 5 of the paper): skyline discovery for databases of
//! arbitrary dimensionality whose ranking attributes only support point
//! predicates.
//!
//! No instance-optimal algorithm can exist for three or more PQ dimensions
//! (Section 5.2 of the paper), so PQ-DB-SKY is a carefully engineered
//! greedy scheme:
//!
//! 1. Issue `SELECT *` (its top tuple is a skyline tuple and seeds pruning).
//! 2. Pick the **two attributes with the largest domains** as the 2D plane —
//!    their domain sizes enter the query cost *additively*, while every
//!    other attribute's domain size enters *multiplicatively*.
//! 3. Enumerate the value combinations of the remaining attributes in
//!    preferential order; for each combination, discover the skyline tuples
//!    lying in that plane with the PQ-2DSUB-SKY machinery
//!    ([`crate::pq2dsub`]), after pruning the plane with everything
//!    retrieved so far (tuples whose other-attribute values are at least as
//!    good dominate part of the plane; the `SELECT *` answer proves a
//!    lower-left rectangle empty).
//!
//! Processing the other attributes in preferential order preserves the
//! anytime property: every tuple reported before the run finishes is on the
//! eventual skyline.

use std::sync::Arc;

use skyweb_hidden_db::{HiddenDb, Predicate, Query, QueryResponse, Tuple, Value};

use crate::codec::{self, CodecError, Reader};
use crate::machine::{DiscoveryMachine, Machine, MachineControl};
use crate::pq2dsub::{build_plane_rects, PlanePoint, PlaneSweep};
use crate::{Discoverer, DiscoveryError, KnowledgeBase};

/// The sans-io machine form of [`PqDbSky`]: one `SELECT *`, then one
/// pruned PQ-2DSUB-SKY sweep per value combination of the non-plane
/// attributes, enumerated in preferential order.
pub type PqMachine = Machine<PqControl>;

/// PQ-DB-SKY: skyline discovery for point-predicate databases of any
/// dimensionality (m ≥ 2).
#[derive(Debug, Clone, Default)]
pub struct PqDbSky {
    budget: Option<u64>,
}

impl PqDbSky {
    /// Creates the algorithm with no client-side query budget.
    pub fn new() -> Self {
        PqDbSky::default()
    }

    /// Limits the number of queries the algorithm may issue (anytime mode).
    pub fn with_budget(budget: u64) -> Self {
        PqDbSky {
            budget: Some(budget),
        }
    }

    fn check_interface(db: &HiddenDb) -> Result<(), DiscoveryError> {
        let m = db.schema().num_ranking();
        if m < 2 {
            return Err(DiscoveryError::UnsupportedInterface {
                reason: format!(
                    "PQ-DB-SKY needs at least 2 ranking attributes, the schema has {m}"
                ),
            });
        }
        // Every interface type supports equality predicates, so PQ-DB-SKY
        // runs on any schema; nothing else to validate.
        Ok(())
    }

    /// Picks the two ranking attributes with the largest domains (the 2D
    /// plane) and returns `(plane_attrs, other_attrs)`.
    fn split_attributes(db: &HiddenDb) -> ((usize, usize), Vec<usize>) {
        let schema = db.schema();
        let mut ranked: Vec<usize> = schema.ranking_attrs().to_vec();
        ranked.sort_by_key(|&a| std::cmp::Reverse(schema.attr(a).domain_size));
        let a1 = ranked[0];
        let a2 = ranked[1];
        let others: Vec<usize> = schema
            .ranking_attrs()
            .iter()
            .copied()
            .filter(|&a| a != a1 && a != a2)
            .collect();
        ((a1, a2), others)
    }
}

/// Advances a mixed-radix odometer (`combo`) over the given domain sizes in
/// ascending lexicographic order. Returns `false` once the enumeration has
/// wrapped around.
pub(crate) fn next_combo(combo: &mut [Value], domains: &[Value]) -> bool {
    for i in (0..combo.len()).rev() {
        combo[i] += 1;
        if combo[i] < domains[i] {
            return true;
        }
        combo[i] = 0;
    }
    false
}

impl PqDbSky {
    /// Builds the concrete machine (also available through the boxed
    /// [`Discoverer::machine`] entry point).
    pub fn build_machine(&self, db: &HiddenDb) -> Result<PqMachine, DiscoveryError> {
        Self::check_interface(db)?;
        let schema = db.schema();
        let attrs: Vec<usize> = schema.ranking_attrs().to_vec();
        let ((a1, a2), others) = Self::split_attributes(db);
        let other_domains: Vec<Value> =
            others.iter().map(|&a| schema.attr(a).domain_size).collect();
        let control = PqControl {
            a1,
            a2,
            dx: schema.attr(a1).domain_size,
            dy: schema.attr(a2).domain_size,
            others,
            other_domains,
            k: db.k(),
            select_star_top: None,
            state: PqState::Init,
        };
        Ok(Machine::from_parts(KnowledgeBase::new(attrs), control))
    }
}

#[derive(Debug, Clone)]
enum PqState {
    /// `SELECT *` not yet answered.
    Init,
    /// Sweeping the plane of one non-plane value combination.
    Planes {
        combo: Vec<Value>,
        sweep: PlaneSweep,
    },
    /// Finished.
    Done,
}

/// Control state of [`PqMachine`]: the plane enumeration of PQ-DB-SKY.
#[derive(Debug, Clone)]
pub struct PqControl {
    a1: usize,
    a2: usize,
    dx: Value,
    dy: Value,
    others: Vec<usize>,
    other_domains: Vec<Value>,
    k: usize,
    select_star_top: Option<Arc<Tuple>>,
    state: PqState,
}

impl PqControl {
    /// The candidate rectangles of the plane fixed by `combo`, pruned with
    /// everything retrieved so far (borrowed from the knowledge base, not
    /// deep-cloned per plane).
    fn rects_for(&self, combo: &[Value], kb: &KnowledgeBase) -> Vec<crate::pq2dsub::Rect> {
        let pruning: Vec<PlanePoint> = kb
            .retrieved_snapshot()
            .iter()
            .filter(|t| {
                self.others
                    .iter()
                    .zip(combo)
                    .all(|(&a, &v)| t.values[a] <= v)
            })
            .map(|t| PlanePoint {
                x: i64::from(t.values[self.a1]),
                y: i64::from(t.values[self.a2]),
            })
            .collect();
        let top = self
            .select_star_top
            .as_ref()
            .expect("SELECT * answered before any plane is swept");
        let empty_corner = if self
            .others
            .iter()
            .zip(combo)
            .all(|(&a, &v)| top.values[a] >= v)
        {
            Some(PlanePoint {
                x: i64::from(top.values[self.a1]),
                y: i64::from(top.values[self.a2]),
            })
        } else {
            None
        };
        build_plane_rects(self.dx, self.dy, &pruning, empty_corner)
    }

    /// Enters the sweep of the first combination at or after `combo` whose
    /// plane still holds candidate rectangles; `Done` when the enumeration
    /// wraps first.
    fn begin_planes(&mut self, kb: &KnowledgeBase, mut combo: Vec<Value>) {
        loop {
            let rects = self.rects_for(&combo, kb);
            if !rects.is_empty() {
                let plane_preds: Vec<Predicate> = self
                    .others
                    .iter()
                    .zip(&combo)
                    .map(|(&a, &v)| Predicate::eq(a, v))
                    .collect();
                let sweep = PlaneSweep::new(self.a1, self.a2, plane_preds, rects);
                self.state = PqState::Planes { combo, sweep };
                return;
            }
            if self.others.is_empty() || !next_combo(&mut combo, &self.other_domains) {
                self.state = PqState::Done;
                return;
            }
        }
    }

    /// Advances past a fully swept combination.
    fn after_sweep(&mut self, kb: &KnowledgeBase, mut combo: Vec<Value>) {
        if self.others.is_empty() || !next_combo(&mut combo, &self.other_domains) {
            self.state = PqState::Done;
            return;
        }
        self.begin_planes(kb, combo);
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let a1 = r.usize()?;
        let a2 = r.usize()?;
        let dx = r.u32()?;
        let dy = r.u32()?;
        let others = codec::read_usize_vec(r)?;
        let other_domains = codec::read_u32_vec(r)?;
        let k = r.usize()?;
        let select_star_top = if r.bool()? {
            Some(codec::read_tuple(r)?)
        } else {
            None
        };
        let state = match r.u8()? {
            0 => PqState::Init,
            1 => {
                let combo = codec::read_u32_vec(r)?;
                let sweep = PlaneSweep::decode(r)?;
                PqState::Planes { combo, sweep }
            }
            2 => PqState::Done,
            tag => return Err(CodecError::BadTag { tag }),
        };
        Ok(PqControl {
            a1,
            a2,
            dx,
            dy,
            others,
            other_domains,
            k,
            select_star_top,
            state,
        })
    }
}

impl MachineControl for PqControl {
    fn name(&self) -> &str {
        "PQ-DB-SKY"
    }

    fn done(&self) -> bool {
        matches!(self.state, PqState::Done)
    }

    fn plan_into(&self, _kb: &KnowledgeBase, _limit: usize, out: &mut Vec<Query>) {
        match &self.state {
            PqState::Init => out.push(Query::select_all()),
            PqState::Planes { sweep, .. } => sweep.plan_into(out),
            PqState::Done => {}
        }
    }

    fn on_response(&mut self, kb: &mut KnowledgeBase, issued: u64, resp: &QueryResponse) {
        match std::mem::replace(&mut self.state, PqState::Done) {
            PqState::Init => {
                kb.ingest(&resp.tuples);
                kb.record(issued);
                if resp.tuples.len() < self.k {
                    // Underflow: the whole database was returned.
                    self.state = PqState::Done;
                    return;
                }
                self.select_star_top = Some(resp.tuples[0].clone());
                let combo: Vec<Value> = vec![0; self.others.len()];
                self.begin_planes(kb, combo);
            }
            PqState::Planes { combo, mut sweep } => {
                sweep.on_response(kb, issued, resp);
                if sweep.done() {
                    self.after_sweep(kb, combo);
                } else {
                    self.state = PqState::Planes { combo, sweep };
                }
            }
            PqState::Done => unreachable!("no response expected after the enumeration finished"),
        }
    }

    fn codec_tag(&self) -> Option<u8> {
        Some(codec::TAG_PQ)
    }

    fn encode_control(&self, out: &mut Vec<u8>) {
        codec::put_usize(out, self.a1);
        codec::put_usize(out, self.a2);
        codec::put_u32(out, self.dx);
        codec::put_u32(out, self.dy);
        codec::put_usize_slice(out, &self.others);
        codec::put_u32_slice(out, &self.other_domains);
        codec::put_usize(out, self.k);
        codec::put_bool(out, self.select_star_top.is_some());
        if let Some(top) = &self.select_star_top {
            codec::put_tuple(out, top);
        }
        match &self.state {
            PqState::Init => codec::put_u8(out, 0),
            PqState::Planes { combo, sweep } => {
                codec::put_u8(out, 1);
                codec::put_u32_slice(out, combo);
                sweep.encode(out);
            }
            PqState::Done => codec::put_u8(out, 2),
        }
    }
}

impl Discoverer for PqDbSky {
    fn name(&self) -> &str {
        "PQ-DB-SKY"
    }

    fn budget(&self) -> Option<u64> {
        self.budget
    }

    fn machine(&self, db: &HiddenDb) -> Result<Box<dyn DiscoveryMachine>, DiscoveryError> {
        Ok(Box::new(self.build_machine(db)?))
    }
}

/// Returns `true` if every ranking attribute of `db` is a point-predicate
/// attribute — the situation PQ-DB-SKY was designed for (it also runs on
/// stronger interfaces, where equality predicates are always available).
#[cfg(test)]
pub(crate) fn all_ranking_attrs_are_pq(db: &HiddenDb) -> bool {
    db.schema()
        .ranking_attrs()
        .iter()
        .all(|&a| db.schema().attr(a).interface == skyweb_hidden_db::InterfaceType::Pq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_hidden_db::{InterfaceType, SchemaBuilder, SumRanker, WorstCaseRanker};
    use skyweb_skyline::{bnl_skyline, same_ids};

    fn pq_schema(domains: &[u32]) -> skyweb_hidden_db::Schema {
        let mut b = SchemaBuilder::new();
        for (i, &d) in domains.iter().enumerate() {
            b = b.ranking(format!("a{i}"), d, InterfaceType::Pq);
        }
        b.build()
    }

    /// Duplicate-free test database: every tuple occupies a distinct cell of
    /// the value grid, realising the paper's general positioning assumption.
    fn pseudo_random_db(domains: &[u32], n: u64, k: usize, salt: u64) -> HiddenDb {
        let tuples = skyweb_datagen::synthetic::distinct_cells(domains, n as usize, salt);
        HiddenDb::new(pq_schema(domains), tuples, Box::new(SumRanker), k)
    }

    #[test]
    fn three_dimensional_completeness() {
        let db = pseudo_random_db(&[8, 6, 4], 120, 1, 0);
        let result = PqDbSky::new().discover(&db).unwrap();
        assert!(result.complete);
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
    }

    #[test]
    fn four_dimensional_completeness_with_larger_k() {
        let db = pseudo_random_db(&[6, 5, 4, 3], 200, 3, 7);
        let result = PqDbSky::new().discover(&db).unwrap();
        assert!(result.complete);
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
    }

    #[test]
    fn completeness_under_an_adversarial_ranker() {
        let tuples = skyweb_datagen::synthetic::distinct_cells(&[7, 6, 5], 80, 13);
        let db = HiddenDb::new(pq_schema(&[7, 6, 5]), tuples, Box::new(WorstCaseRanker), 1);
        let result = PqDbSky::new().discover(&db).unwrap();
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
    }

    #[test]
    fn two_dimensional_case_matches_pq2d() {
        let db = pseudo_random_db(&[12, 10], 60, 1, 3);
        let pq = PqDbSky::new().discover(&db).unwrap();
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&pq.skyline, &truth));
    }

    #[test]
    fn plane_attributes_are_the_largest_domains() {
        let db = pseudo_random_db(&[3, 50, 4, 40], 20, 1, 0);
        let ((a1, a2), others) = PqDbSky::split_attributes(&db);
        assert_eq!((a1, a2), (1, 3));
        assert_eq!(others, vec![0, 2]);
    }

    #[test]
    fn odometer_enumerates_every_combination() {
        let domains = vec![2u32, 3u32];
        let mut combo = vec![0u32, 0u32];
        let mut seen = vec![combo.clone()];
        while next_combo(&mut combo, &domains) {
            seen.push(combo.clone());
        }
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0], vec![0, 0]);
        assert_eq!(seen[5], vec![1, 2]);
    }

    #[test]
    fn underflowing_select_star_short_circuits() {
        let db = pseudo_random_db(&[5, 5, 5], 4, 50, 0);
        let result = PqDbSky::new().discover(&db).unwrap();
        assert_eq!(result.query_cost, 1);
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
    }

    #[test]
    fn budget_exhaustion_is_graceful_and_sound() {
        let db = pseudo_random_db(&[10, 10, 6], 200, 1, 11);
        let result = PqDbSky::with_budget(3).discover(&db).unwrap();
        assert!(!result.complete);
        assert!(result.query_cost <= 3);
        // The partial result is internally consistent: no reported skyline
        // candidate is dominated by any other retrieved tuple.
        for s in &result.skyline {
            for r in &result.retrieved {
                assert!(!skyweb_hidden_db::dominates(r, s, db.schema()));
            }
        }
    }

    #[test]
    fn rejects_single_attribute_schemas() {
        let db = pseudo_random_db(&[5], 5, 1, 0);
        assert!(PqDbSky::new().discover(&db).is_err());
    }

    #[test]
    fn pq_detection_helper() {
        let db = pseudo_random_db(&[5, 5], 10, 1, 0);
        assert!(all_ranking_attrs_are_pq(&db));
        let s = SchemaBuilder::new()
            .ranking("a", 5, InterfaceType::Rq)
            .ranking("b", 5, InterfaceType::Pq)
            .build();
        let db2 = HiddenDb::new(s, vec![], Box::new(SumRanker), 1);
        assert!(!all_ranking_attrs_are_pq(&db2));
    }
}
