//! The paper's BASELINE: crawl *every* tuple of the hidden database through
//! its top-k interface (in the spirit of Sheng et al., "Optimal algorithms
//! for crawling a hidden database in the web", VLDB 2012) and extract the
//! skyline locally afterwards.
//!
//! Crawling works by recursive region splitting over the two-ended range
//! attributes: a region (a box of per-attribute value ranges) is queried
//! with conjunctive `>=` / `<=` predicates; if the answer is truncated by
//! the top-k constraint, the region is split in half along its widest
//! attribute and both halves are crawled recursively. This requires
//! two-ended range support (which is also what the original crawler
//! assumes), so the baseline is only applicable to RQ databases — one of the
//! reasons the paper's discovery algorithms are interesting in the first
//! place.
//!
//! A companion [`PointSpaceCrawl`] exhaustively enumerates the value
//! combinations of a pure point-predicate database; it is used as a
//! reference baseline for PQ experiments on small domains.

use skyweb_hidden_db::{
    HiddenDb, InterfaceType, Predicate, PrefixGroup, Query, QueryResponse, Value,
};

use crate::codec::{self, CodecError, Reader};
use crate::machine::{DiscoveryMachine, Machine, MachineControl};
use crate::pq::next_combo;
use crate::{Discoverer, DiscoveryError, KnowledgeBase};

/// The sans-io machine form of [`BaselineCrawl`]: single-query plans (each
/// region's split decision consumes its own answer).
pub type CrawlMachine = Machine<CrawlControl>;

/// The sans-io machine form of [`PointSpaceCrawl`]: the whole query
/// sequence is the predetermined value-combination odometer, so plans carry
/// as many queries as the driver's batch limit allows.
pub type PointCrawlMachine = Machine<PointCrawlControl>;

/// Crawl-everything-then-compute-locally baseline for two-ended range
/// interfaces.
#[derive(Debug, Clone, Default)]
pub struct BaselineCrawl {
    budget: Option<u64>,
}

impl BaselineCrawl {
    /// Creates the baseline with no client-side query budget.
    pub fn new() -> Self {
        BaselineCrawl::default()
    }

    /// Limits the number of queries the baseline may issue. Note that,
    /// unlike the discovery algorithms, the baseline has no anytime
    /// property: a partial crawl cannot certify that any tuple is on the
    /// skyline of the *whole* database; the partial result is merely the
    /// skyline of what happened to be downloaded.
    pub fn with_budget(budget: u64) -> Self {
        BaselineCrawl {
            budget: Some(budget),
        }
    }

    fn check_interface(db: &HiddenDb) -> Result<(), DiscoveryError> {
        for &a in db.schema().ranking_attrs() {
            let spec = db.schema().attr(a);
            if spec.interface != InterfaceType::Rq {
                return Err(DiscoveryError::UnsupportedInterface {
                    reason: format!(
                        "the crawling baseline needs two-ended ranges on every ranking \
                         attribute, but '{}' is {}",
                        spec.name,
                        spec.interface.label()
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Crawling every tuple matching a base conjunction by recursive region
/// splitting over `split_attrs` (attribute id + domain size pairs) — the
/// building block shared by the BASELINE crawler and MQ-DB-SKY's
/// fully-pinned leaf subspaces, in sans-io form.
///
/// Plans are single-query: whether a region is split (and therefore which
/// region is probed next, children before siblings) depends on its own
/// answer size.
#[derive(Debug, Clone)]
pub(crate) struct RegionCrawl {
    base: Vec<Predicate>,
    split_attrs: Vec<(usize, Value)>,
    k: usize,
    /// Each region is one inclusive (lo, hi) interval per split attribute.
    stack: Vec<Vec<(i64, i64)>>,
}

impl RegionCrawl {
    pub(crate) fn new(base: Vec<Predicate>, split_attrs: Vec<(usize, Value)>, k: usize) -> Self {
        let initial: Vec<(i64, i64)> = split_attrs
            .iter()
            .map(|&(_, d)| (0i64, i64::from(d) - 1))
            .collect();
        RegionCrawl {
            base,
            split_attrs,
            k,
            stack: vec![initial],
        }
    }

    pub(crate) fn done(&self) -> bool {
        self.stack.is_empty()
    }

    fn region_query(&self, region: &[(i64, i64)]) -> Query {
        let mut q = Query::new(self.base.clone());
        for (i, &(attr, domain)) in self.split_attrs.iter().enumerate() {
            let (lo, hi) = region[i];
            if lo > 0 {
                q.push(Predicate::ge(attr, lo as Value));
            }
            if hi < i64::from(domain) - 1 {
                q.push(Predicate::le(attr, hi as Value));
            }
        }
        q
    }

    pub(crate) fn plan_into(&self, out: &mut Vec<Query>) {
        if let Some(region) = self.stack.last() {
            out.push(self.region_query(region));
        }
    }

    pub(crate) fn on_response(
        &mut self,
        kb: &mut KnowledgeBase,
        issued: u64,
        resp: &QueryResponse,
    ) {
        let region = self
            .stack
            .pop()
            .expect("a response arrived without a pending region");
        kb.ingest(&resp.tuples);
        kb.record(issued);
        if resp.tuples.len() == self.k {
            // Possibly truncated: split the widest attribute interval.
            let (widest, &(lo, hi)) = match region
                .iter()
                .enumerate()
                .max_by_key(|(_, (lo, hi))| hi - lo)
            {
                Some(x) => x,
                None => return,
            };
            if hi == lo {
                // All attributes are pinned to single values; the matching
                // tuples are indistinguishable through the ranking
                // attributes and nothing further can be retrieved.
                return;
            }
            let mid = lo + (hi - lo) / 2;
            let mut lower = region.clone();
            lower[widest] = (lo, mid);
            let mut upper = region;
            upper[widest] = (mid + 1, hi);
            self.stack.push(upper);
            self.stack.push(lower);
        }
    }

    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        codec::put_predicates(out, &self.base);
        codec::put_usize(out, self.split_attrs.len());
        for &(attr, domain) in &self.split_attrs {
            codec::put_usize(out, attr);
            codec::put_u32(out, domain);
        }
        codec::put_usize(out, self.k);
        codec::put_usize(out, self.stack.len());
        for region in &self.stack {
            codec::put_usize(out, region.len());
            for &(lo, hi) in region {
                codec::put_i64(out, lo);
                codec::put_i64(out, hi);
            }
        }
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let base = codec::read_predicates(r)?;
        let n = r.usize()?;
        let mut split_attrs = Vec::new();
        for _ in 0..n {
            let attr = r.usize()?;
            let domain = r.u32()?;
            split_attrs.push((attr, domain));
        }
        let k = r.usize()?;
        let n = r.usize()?;
        let mut stack = Vec::new();
        for _ in 0..n {
            let len = r.usize()?;
            let mut region = Vec::new();
            for _ in 0..len {
                let lo = r.i64()?;
                let hi = r.i64()?;
                region.push((lo, hi));
            }
            stack.push(region);
        }
        Ok(RegionCrawl {
            base,
            split_attrs,
            k,
            stack,
        })
    }
}

/// Control state of [`CrawlMachine`]: the recursive region splitting of the
/// crawling BASELINE.
#[derive(Debug, Clone)]
pub struct CrawlControl {
    crawl: RegionCrawl,
}

impl CrawlControl {
    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(CrawlControl {
            crawl: RegionCrawl::decode(r)?,
        })
    }
}

impl MachineControl for CrawlControl {
    fn name(&self) -> &str {
        "BASELINE"
    }

    fn done(&self) -> bool {
        self.crawl.done()
    }

    fn plan_into(&self, _kb: &KnowledgeBase, _limit: usize, out: &mut Vec<Query>) {
        self.crawl.plan_into(out);
    }

    fn on_response(&mut self, kb: &mut KnowledgeBase, issued: u64, resp: &QueryResponse) {
        self.crawl.on_response(kb, issued, resp);
    }

    fn codec_tag(&self) -> Option<u8> {
        Some(codec::TAG_CRAWL)
    }

    fn encode_control(&self, out: &mut Vec<u8>) {
        self.crawl.encode(out);
    }
}

impl BaselineCrawl {
    /// Builds the concrete machine (also available through the boxed
    /// [`Discoverer::machine`] entry point).
    pub fn build_machine(&self, db: &HiddenDb) -> Result<CrawlMachine, DiscoveryError> {
        Self::check_interface(db)?;
        let attrs: Vec<usize> = db.schema().ranking_attrs().to_vec();
        let split_attrs: Vec<(usize, Value)> = attrs
            .iter()
            .map(|&a| (a, db.schema().attr(a).domain_size))
            .collect();
        let crawl = RegionCrawl::new(Vec::new(), split_attrs, db.k());
        Ok(Machine::from_parts(
            KnowledgeBase::new(attrs),
            CrawlControl { crawl },
        ))
    }
}

impl Discoverer for BaselineCrawl {
    fn name(&self) -> &str {
        "BASELINE"
    }

    fn budget(&self) -> Option<u64> {
        self.budget
    }

    fn machine(&self, db: &HiddenDb) -> Result<Box<dyn DiscoveryMachine>, DiscoveryError> {
        Ok(Box::new(self.build_machine(db)?))
    }
}

/// Exhaustive point-space crawl: issues one fully specified equality query
/// per value combination of the ranking attributes. Only sensible for small
/// domains; serves as the reference baseline for PQ interfaces.
#[derive(Debug, Clone, Default)]
pub struct PointSpaceCrawl {
    budget: Option<u64>,
}

impl PointSpaceCrawl {
    /// Creates the crawler with no client-side query budget.
    pub fn new() -> Self {
        PointSpaceCrawl::default()
    }

    /// Limits the number of queries the crawler may issue.
    pub fn with_budget(budget: u64) -> Self {
        PointSpaceCrawl {
            budget: Some(budget),
        }
    }
}

/// Control state of [`PointCrawlMachine`]: the mixed-radix odometer over
/// every value combination of the ranking attributes.
///
/// The query sequence is fully predetermined — responses never influence
/// which query comes next — so `plan_into` emits as many upcoming odometer
/// queries as the driver's batch limit allows, and batched execution is
/// trivially order-identical to the sequential crawl.
#[derive(Debug, Clone)]
pub struct PointCrawlControl {
    attrs: Vec<usize>,
    domains: Vec<Value>,
    /// The next combination to query; `None` once the odometer wrapped.
    combo: Option<Vec<Value>>,
}

impl PointCrawlControl {
    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let attrs = codec::read_usize_vec(r)?;
        let domains = codec::read_u32_vec(r)?;
        let combo = if r.bool()? {
            Some(codec::read_u32_vec(r)?)
        } else {
            None
        };
        Ok(PointCrawlControl {
            attrs,
            domains,
            combo,
        })
    }

    fn combo_query(&self, combo: &[Value]) -> Query {
        Query::new(
            self.attrs
                .iter()
                .zip(combo)
                .map(|(&a, &v)| Predicate::eq(a, v))
                .collect(),
        )
    }

    fn advance(&self, combo: &mut [Value]) -> bool {
        next_combo(combo, &self.domains)
    }
}

impl MachineControl for PointCrawlControl {
    fn name(&self) -> &str {
        "POINT-CRAWL"
    }

    fn done(&self) -> bool {
        self.combo.is_none()
    }

    fn plan_into(&self, _kb: &KnowledgeBase, limit: usize, out: &mut Vec<Query>) {
        let Some(combo) = &self.combo else {
            return;
        };
        let mut combo = combo.clone();
        loop {
            out.push(self.combo_query(&combo));
            if out.len() >= limit || !self.advance(&mut combo) {
                return;
            }
        }
    }

    /// The odometer's sibling tiling: consecutive combinations differing
    /// only in the fastest (last) digit pin every other attribute to the
    /// same equality predicates, so each run between carries shares a
    /// prefix of `m - 1` predicates — the shape the engine's batch executor
    /// evaluates once per run.
    fn plan_groups_into(&self, limit: usize, out: &mut Vec<PrefixGroup>) {
        let Some(combo) = &self.combo else {
            return;
        };
        let prefix_len = self.attrs.len().saturating_sub(1);
        let mut combo = combo.clone();
        let mut len = 0usize;
        let mut total = 0usize;
        loop {
            len += 1;
            total += 1;
            if total >= limit || !self.advance(&mut combo) {
                out.push(PrefixGroup { len, prefix_len });
                return;
            }
            if combo.last() == Some(&0) {
                // The advance carried past the fastest digit: a new run of
                // siblings (with a different shared prefix) starts here.
                out.push(PrefixGroup { len, prefix_len });
                len = 0;
            }
        }
    }

    fn on_response(&mut self, kb: &mut KnowledgeBase, issued: u64, resp: &QueryResponse) {
        kb.ingest(&resp.tuples);
        kb.record(issued);
        let combo = self
            .combo
            .as_mut()
            .expect("a response arrived after the odometer wrapped");
        if !next_combo(combo, &self.domains) {
            self.combo = None;
        }
    }

    fn codec_tag(&self) -> Option<u8> {
        Some(codec::TAG_POINT_CRAWL)
    }

    fn encode_control(&self, out: &mut Vec<u8>) {
        codec::put_usize_slice(out, &self.attrs);
        codec::put_u32_slice(out, &self.domains);
        codec::put_bool(out, self.combo.is_some());
        if let Some(combo) = &self.combo {
            codec::put_u32_slice(out, combo);
        }
    }
}

impl PointSpaceCrawl {
    /// Builds the concrete machine (also available through the boxed
    /// [`Discoverer::machine`] entry point).
    pub fn build_machine(&self, db: &HiddenDb) -> Result<PointCrawlMachine, DiscoveryError> {
        let attrs: Vec<usize> = db.schema().ranking_attrs().to_vec();
        let domains: Vec<Value> = attrs
            .iter()
            .map(|&a| db.schema().attr(a).domain_size)
            .collect();
        let combo = Some(vec![0; attrs.len()]);
        Ok(Machine::from_parts(
            KnowledgeBase::new(attrs.clone()),
            PointCrawlControl {
                attrs,
                domains,
                combo,
            },
        ))
    }
}

impl Discoverer for PointSpaceCrawl {
    fn name(&self) -> &str {
        "POINT-CRAWL"
    }

    fn budget(&self) -> Option<u64> {
        self.budget
    }

    fn machine(&self, db: &HiddenDb) -> Result<Box<dyn DiscoveryMachine>, DiscoveryError> {
        Ok(Box::new(self.build_machine(db)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_hidden_db::{SchemaBuilder, SumRanker, Tuple};
    use skyweb_skyline::{bnl_skyline, same_ids};

    fn rq_schema(m: usize, domain: u32) -> skyweb_hidden_db::Schema {
        let mut b = SchemaBuilder::new();
        for i in 0..m {
            b = b.ranking(format!("a{i}"), domain, InterfaceType::Rq);
        }
        b.build()
    }

    fn pseudo_random_db(m: usize, domain: u32, n: u64, k: usize) -> HiddenDb {
        let tuples: Vec<Tuple> = (0..n)
            .map(|i| {
                let values = (0..m)
                    .map(|j| ((i * 2654435761 + j as u64 * 40503) % u64::from(domain)) as u32)
                    .collect();
                Tuple::new(i, values)
            })
            .collect();
        HiddenDb::new(rq_schema(m, domain), tuples, Box::new(SumRanker), k)
    }

    #[test]
    fn crawl_retrieves_every_tuple() {
        let db = pseudo_random_db(3, 32, 150, 5);
        let result = BaselineCrawl::new().discover(&db).unwrap();
        assert!(result.complete);
        assert_eq!(result.retrieved.len(), db.n());
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
    }

    #[test]
    fn crawl_cost_scales_with_n_over_k() {
        let db_small_k = pseudo_random_db(2, 64, 300, 2);
        let db_large_k = pseudo_random_db(2, 64, 300, 25);
        let c_small = BaselineCrawl::new()
            .discover(&db_small_k)
            .unwrap()
            .query_cost;
        let c_large = BaselineCrawl::new()
            .discover(&db_large_k)
            .unwrap()
            .query_cost;
        assert!(c_large < c_small, "larger k must reduce the crawl cost");
        assert!(c_small as usize >= db_small_k.n() / 2);
    }

    #[test]
    fn crawl_handles_duplicate_value_combinations() {
        // Many tuples share the exact same ranking values; the region
        // splitter must not loop forever on an unsplittable region.
        let tuples: Vec<Tuple> = (0..40u64).map(|i| Tuple::new(i, vec![1, 1])).collect();
        let db = HiddenDb::new(rq_schema(2, 4), tuples, Box::new(SumRanker), 5);
        let result = BaselineCrawl::new().discover(&db).unwrap();
        assert!(result.complete);
        // Only k tuples of the duplicate pile can ever be retrieved.
        assert_eq!(result.retrieved.len(), 5);
    }

    #[test]
    fn crawl_rejects_weaker_interfaces() {
        let s = SchemaBuilder::new()
            .ranking("a", 8, InterfaceType::Sq)
            .ranking("b", 8, InterfaceType::Rq)
            .build();
        let db = HiddenDb::new(s, vec![], Box::new(SumRanker), 2);
        assert!(BaselineCrawl::new().discover(&db).is_err());
    }

    #[test]
    fn crawl_budget_is_respected() {
        let db = pseudo_random_db(3, 32, 500, 2);
        let result = BaselineCrawl::with_budget(20).discover(&db).unwrap();
        assert!(!result.complete);
        assert_eq!(result.query_cost, 20);
        assert!(result.retrieved.len() < db.n());
    }

    #[test]
    fn odometer_plans_carry_valid_sibling_annotations() {
        use crate::machine::DiscoveryMachine;
        let schema = SchemaBuilder::new()
            .ranking("x", 3, InterfaceType::Pq)
            .ranking("y", 4, InterfaceType::Pq)
            .build();
        let db = HiddenDb::new(
            schema,
            vec![Tuple::new(0, vec![1, 2])],
            Box::new(SumRanker),
            2,
        );
        let machine = PointSpaceCrawl::new().build_machine(&db).unwrap();
        // A full-grid plan: 12 combinations, the last digit (domain 4)
        // wrapping three times → three sibling runs of 4 sharing the first
        // predicate (x pinned).
        let plan = machine.next_plan(64);
        assert_eq!(plan.len(), 12);
        let groups = plan.groups().expect("odometer plans are annotated");
        assert!(skyweb_hidden_db::groups_cover(plan.queries(), groups));
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|g| g.len == 4 && g.prefix_len == 1));
        // A batch limit cutting mid-run truncates the tiling consistently.
        let plan = machine.next_plan(6);
        assert_eq!(plan.len(), 6);
        let groups = plan.groups().expect("odometer plans are annotated");
        assert!(skyweb_hidden_db::groups_cover(plan.queries(), groups));
        assert_eq!(groups.len(), 2);
        assert_eq!((groups[0].len, groups[1].len), (4, 2));
    }

    #[test]
    fn point_space_crawl_enumerates_the_whole_grid() {
        let schema = SchemaBuilder::new()
            .ranking("x", 4, InterfaceType::Pq)
            .ranking("y", 3, InterfaceType::Pq)
            .build();
        let tuples = vec![
            Tuple::new(0, vec![1, 2]),
            Tuple::new(1, vec![3, 0]),
            Tuple::new(2, vec![0, 1]),
        ];
        let db = HiddenDb::new(schema, tuples, Box::new(SumRanker), 2);
        let result = PointSpaceCrawl::new().discover(&db).unwrap();
        assert!(result.complete);
        assert_eq!(result.query_cost, 12);
        assert_eq!(result.retrieved.len(), 3);
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
    }
}
