//! # skyweb-core
//!
//! Skyline discovery over hidden web databases with top-k interfaces — a
//! Rust implementation of the algorithm family from *Discovering the Skyline
//! of Web Databases* (Asudeh, Thirumuruganathan, Zhang, Das; VLDB 2016).
//!
//! A hidden web database (see [`skyweb_hidden_db`]) can only be accessed
//! through a restrictive search form: conjunctive queries with per-attribute
//! predicate limitations and a top-k output constraint. The algorithms in
//! this crate retrieve **all skyline tuples** of such a database while
//! issuing as few search queries as possible:
//!
//! | Type | Algorithm | Interface requirement |
//! |------|-----------|----------------------|
//! | [`SqDbSky`]   | SQ-DB-SKY  | one-ended ranges (`<`, `<=`, `=`) on every ranking attribute |
//! | [`RqDbSky`]   | RQ-DB-SKY  | two-ended ranges on every ranking attribute |
//! | [`Pq2dSky`]   | PQ-2D-SKY  | point predicates, exactly two ranking attributes |
//! | [`PqDbSky`]   | PQ-DB-SKY  | point predicates, any dimensionality |
//! | [`MqDbSky`]   | MQ-DB-SKY  | arbitrary mixture of SQ / RQ / PQ attributes |
//! | [`BaselineCrawl`] | crawl + local skyline | two-ended ranges (the paper's baseline) |
//! | [`RqSkyband`] | top-h sky band via RQ-DB-SKY | two-ended ranges |
//!
//! Every algorithm implements the [`Discoverer`] trait, reports its exact
//! query cost, and records an *anytime trace* (how many skyline tuples were
//! known after every issued query).
//!
//! Each algorithm is implemented as a **sans-io state machine**
//! ([`DiscoveryMachine`], see the [`machine`] module): it yields
//! [`QueryPlan`]s and is resumed with responses, so runs can be paused,
//! checkpointed, resumed, deadlined, streamed, and multiplexed. The
//! [`DiscoveryDriver`] executes a machine against a database session
//! (batching plans, enforcing budgets/deadlines); the [`DiscoveryService`]
//! runs many machines concurrently over one shared database with
//! round-robin fairness. [`Discoverer::discover`] is a thin adapter over
//! machine + driver, byte-identical to the historical blocking API.
//!
//! ```
//! use skyweb_core::{Discoverer, RqDbSky};
//! use skyweb_hidden_db::{HiddenDb, InterfaceType, SchemaBuilder, Tuple};
//!
//! let schema = SchemaBuilder::new()
//!     .ranking("price", 10, InterfaceType::Rq)
//!     .ranking("mileage", 10, InterfaceType::Rq)
//!     .build();
//! let tuples = vec![
//!     Tuple::new(0, vec![5, 1]),
//!     Tuple::new(1, vec![4, 4]),
//!     Tuple::new(2, vec![1, 3]),
//!     Tuple::new(3, vec![3, 2]),
//! ];
//! let db = HiddenDb::with_sum_ranking(schema, tuples, 2);
//! let result = RqDbSky::new().discover(&db).unwrap();
//! assert!(result.complete);
//! assert_eq!(result.skyline.len(), 3);
//! assert_eq!(result.query_cost, db.queries_issued());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod baseline;
#[deny(missing_docs)]
pub mod codec;
mod discovery;
mod driver;
mod knowledge;
pub mod machine;
mod mq;
mod pq;
mod pq2d;
mod pq2dsub;
mod rq;
mod service;
mod skyband;
mod sq;

pub use codec::CodecError;
// The wire-protocol surface consumed by `skyweb-net`: handshake payloads,
// the error-reply envelope, and the header parser stream transports use to
// validate length claims before allocating.
pub use codec::{
    decode_error_reply, decode_hello, decode_plan, decode_responses, decode_welcome,
    encode_error_reply, encode_hello, encode_plan, encode_responses, encode_welcome, parse_header,
    Hello, Welcome, CHECKSUM_LEN, HEADER_LEN, KIND_ERROR, KIND_HELLO, KIND_PLAN, KIND_RESPONSES,
    KIND_WELCOME, WIRE_PROTOCOL,
};

pub use baseline::{
    BaselineCrawl, CrawlControl, CrawlMachine, PointCrawlControl, PointCrawlMachine,
    PointSpaceCrawl,
};
pub use discovery::{Discoverer, DiscoveryError, DiscoveryResult, TracePoint};
pub use driver::{
    Checkpoint, DiscoveryDriver, DriverConfig, PlanOracle, RetryPolicy, StepOutcome,
    DEFAULT_MAX_BATCH,
};
pub use knowledge::KnowledgeBase;
pub use machine::{
    AnytimeSnapshot, DiscoveryMachine, Machine, MachineControl, QueryPlan, RunProgress,
};
pub use mq::{MqControl, MqDbSky, MqMachine};
pub use pq::{PqControl, PqDbSky, PqMachine};
pub use pq2d::{Pq2dControl, Pq2dMachine, Pq2dSky};
pub use rq::{RqControl, RqDbSky, RqMachine};
pub use service::{DiscoveryService, TenantId, TenantStats};
pub use skyband::{skyband_of_retrieved, RqSkyband, SkybandControl, SkybandMachine, SkybandResult};
// The sibling-group annotation of a [`QueryPlan`], re-exported so
// `MachineControl` implementors need not depend on the engine crate
// directly.
pub use skyweb_hidden_db::PrefixGroup;
pub use sq::{SqControl, SqDbSky, SqMachine};
