//! # skyweb-core
//!
//! Skyline discovery over hidden web databases with top-k interfaces — a
//! Rust implementation of the algorithm family from *Discovering the Skyline
//! of Web Databases* (Asudeh, Thirumuruganathan, Zhang, Das; VLDB 2016).
//!
//! A hidden web database (see [`skyweb_hidden_db`]) can only be accessed
//! through a restrictive search form: conjunctive queries with per-attribute
//! predicate limitations and a top-k output constraint. The algorithms in
//! this crate retrieve **all skyline tuples** of such a database while
//! issuing as few search queries as possible:
//!
//! | Type | Algorithm | Interface requirement |
//! |------|-----------|----------------------|
//! | [`SqDbSky`]   | SQ-DB-SKY  | one-ended ranges (`<`, `<=`, `=`) on every ranking attribute |
//! | [`RqDbSky`]   | RQ-DB-SKY  | two-ended ranges on every ranking attribute |
//! | [`Pq2dSky`]   | PQ-2D-SKY  | point predicates, exactly two ranking attributes |
//! | [`PqDbSky`]   | PQ-DB-SKY  | point predicates, any dimensionality |
//! | [`MqDbSky`]   | MQ-DB-SKY  | arbitrary mixture of SQ / RQ / PQ attributes |
//! | [`BaselineCrawl`] | crawl + local skyline | two-ended ranges (the paper's baseline) |
//! | [`RqSkyband`] | top-h sky band via RQ-DB-SKY | two-ended ranges |
//!
//! Every algorithm implements the [`Discoverer`] trait, reports its exact
//! query cost, and records an *anytime trace* (how many skyline tuples were
//! known after every issued query).
//!
//! ```
//! use skyweb_core::{Discoverer, RqDbSky};
//! use skyweb_hidden_db::{HiddenDb, InterfaceType, SchemaBuilder, Tuple};
//!
//! let schema = SchemaBuilder::new()
//!     .ranking("price", 10, InterfaceType::Rq)
//!     .ranking("mileage", 10, InterfaceType::Rq)
//!     .build();
//! let tuples = vec![
//!     Tuple::new(0, vec![5, 1]),
//!     Tuple::new(1, vec![4, 4]),
//!     Tuple::new(2, vec![1, 3]),
//!     Tuple::new(3, vec![3, 2]),
//! ];
//! let db = HiddenDb::with_sum_ranking(schema, tuples, 2);
//! let result = RqDbSky::new().discover(&db).unwrap();
//! assert!(result.complete);
//! assert_eq!(result.skyline.len(), 3);
//! assert_eq!(result.query_cost, db.queries_issued());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod baseline;
mod discovery;
mod knowledge;
mod mq;
mod pq;
mod pq2d;
mod pq2dsub;
mod rq;
mod skyband;
mod sq;

pub use baseline::{BaselineCrawl, PointSpaceCrawl};
pub use discovery::{Discoverer, DiscoveryError, DiscoveryResult, TracePoint};
pub use knowledge::KnowledgeBase;
pub use mq::MqDbSky;
pub use pq::PqDbSky;
pub use pq2d::Pq2dSky;
pub use rq::RqDbSky;
pub use skyband::{skyband_of_retrieved, RqSkyband, SkybandResult};
pub use sq::SqDbSky;

pub(crate) use discovery::Client;
