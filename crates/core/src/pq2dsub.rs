//! PQ-2DSUB-SKY: the 2D-subspace machinery shared by [`crate::Pq2dSky`] and
//! [`crate::PqDbSky`].
//!
//! A *plane* is the 2D subspace obtained by fixing every ranking attribute
//! except two (`a1`, `a2`) to a concrete value combination through equality
//! predicates. Skyline discovery inside a plane works on a set of disjoint
//! candidate **rectangles**:
//!
//! * rectangles are derived from the paper's "block-diagonal" construction:
//!   the plane grid minus the region dominated by already-retrieved tuples
//!   (an upper-right staircase) and minus the lower-left rectangle that a
//!   query containing the plane has proven empty (Figure 12 of the paper);
//! * each rectangle is then consumed with the PQ-2D-SKY probing rule: probe
//!   the cheaper dimension — a column query `a1 = x_L` if the rectangle is
//!   narrower than it is tall, a row query `a2 = y_B` otherwise — and shrink
//!   the rectangle according to the answer.
//!
//! Every cell ever removed from a rectangle is either certified empty by a
//! query answer or dominated by a retrieved tuple, which is what guarantees
//! complete skyline discovery.

use skyweb_hidden_db::{AttrId, Predicate, Query, QueryResponse, Value};

use crate::codec::{self, CodecError, Reader};
use crate::KnowledgeBase;

/// An inclusive candidate rectangle `[xl, xr] × [yb, yt]` in a 2D plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Rect {
    pub xl: i64,
    pub xr: i64,
    pub yb: i64,
    pub yt: i64,
}

impl Rect {
    pub(crate) fn new(xl: i64, xr: i64, yb: i64, yt: i64) -> Self {
        Rect { xl, xr, yb, yt }
    }

    /// `true` if the rectangle still contains at least one cell.
    pub(crate) fn is_valid(&self) -> bool {
        self.xl <= self.xr && self.yb <= self.yt
    }

    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        codec::put_i64(out, self.xl);
        codec::put_i64(out, self.xr);
        codec::put_i64(out, self.yb);
        codec::put_i64(out, self.yt);
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Rect {
            xl: r.i64()?,
            xr: r.i64()?,
            yb: r.i64()?,
            yt: r.i64()?,
        })
    }

    fn width(&self) -> i64 {
        self.xr - self.xl
    }

    fn height(&self) -> i64 {
        self.yt - self.yb
    }
}

/// A point of the plane (projection of a tuple onto the two plane
/// attributes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PlanePoint {
    pub x: i64,
    pub y: i64,
}

/// Builds the candidate rectangles of a plane.
///
/// * `dx`, `dy` — domain sizes of the two plane attributes;
/// * `pruning` — projections of retrieved tuples that dominate within the
///   plane (each removes the closed upper-right quadrant it spans);
/// * `empty_corner` — optional projection of a tuple returned by a query
///   containing the plane, proving the closed lower-left rectangle
///   `(0,0)..=(ex,ey)` empty.
pub(crate) fn build_plane_rects(
    dx: Value,
    dy: Value,
    pruning: &[PlanePoint],
    empty_corner: Option<PlanePoint>,
) -> Vec<Rect> {
    let dx = i64::from(dx);
    let dy = i64::from(dy);

    // Keep only the minima (staircase corners) of the pruning set, sorted by
    // x ascending; their y values are then strictly decreasing.
    let mut minima: Vec<PlanePoint> = Vec::new();
    for &p in pruning {
        if pruning
            .iter()
            .any(|&q| (q.x <= p.x && q.y <= p.y) && (q.x < p.x || q.y < p.y))
        {
            continue;
        }
        if !minima.contains(&p) {
            minima.push(p);
        }
    }
    minima.sort_by_key(|p| (p.x, p.y));

    // Vertical strips of the non-dominated region.
    let mut strips: Vec<Rect> = Vec::new();
    if minima.is_empty() {
        strips.push(Rect::new(0, dx - 1, 0, dy - 1));
    } else {
        if minima[0].x > 0 {
            strips.push(Rect::new(0, minima[0].x - 1, 0, dy - 1));
        }
        for (i, p) in minima.iter().enumerate() {
            let next_x = if i + 1 < minima.len() {
                minima[i + 1].x
            } else {
                dx
            };
            if p.y > 0 && p.x < next_x {
                strips.push(Rect::new(p.x, next_x - 1, 0, p.y - 1));
            }
        }
    }

    // Refine each strip with the proven-empty lower-left corner.
    let mut rects = Vec::new();
    for strip in strips {
        match empty_corner {
            None => rects.push(strip),
            Some(e) => {
                if strip.xl > e.x || strip.yb > e.y {
                    // Entire strip lies outside the empty rectangle's columns
                    // or above its rows.
                    rects.push(strip);
                } else if strip.xr <= e.x {
                    // Whole strip within the empty columns: only rows above
                    // the corner remain.
                    rects.push(Rect::new(strip.xl, strip.xr, e.y + 1, strip.yt));
                } else {
                    // Split at the corner column.
                    rects.push(Rect::new(strip.xl, e.x, e.y + 1, strip.yt));
                    rects.push(Rect::new(e.x + 1, strip.xr, strip.yb, strip.yt));
                }
            }
        }
    }
    rects.retain(Rect::is_valid);
    rects
}

/// The PQ-2DSUB-SKY sub-machine: discovers every skyline tuple of one
/// plane by consuming its candidate rectangles, one 1D probe per
/// round-trip.
///
/// This is the sans-io form of the paper's 2D probing rule, composed by the
/// [`crate::Pq2dMachine`] (one sweep over the whole grid) and the
/// [`crate::PqMachine`] (one sweep per value combination of the non-plane
/// attributes). Plans are single-query: every probe's answer decides how
/// the current rectangle shrinks, and whether it is abandoned.
#[derive(Debug, Clone)]
pub(crate) struct PlaneSweep {
    a1: AttrId,
    a2: AttrId,
    plane_preds: Vec<Predicate>,
    /// Remaining rectangles, sorted by `Reverse(xl)` so popping from the
    /// back processes them left-to-right (preferential order on the first
    /// plane attribute — the anytime property inside a plane).
    rects: Vec<Rect>,
    /// The rectangle currently being consumed.
    cur: Option<Rect>,
}

impl PlaneSweep {
    pub(crate) fn new(
        a1: AttrId,
        a2: AttrId,
        plane_preds: Vec<Predicate>,
        mut rects: Vec<Rect>,
    ) -> Self {
        rects.sort_by_key(|r| std::cmp::Reverse(r.xl));
        let mut sweep = PlaneSweep {
            a1,
            a2,
            plane_preds,
            rects,
            cur: None,
        };
        sweep.advance_rect();
        sweep
    }

    /// Moves on to the next valid rectangle when the current one is
    /// consumed or abandoned.
    fn advance_rect(&mut self) {
        while self.cur.is_none_or(|r| !r.is_valid()) {
            match self.rects.pop() {
                Some(r) => self.cur = Some(r),
                None => {
                    self.cur = None;
                    return;
                }
            }
        }
    }

    pub(crate) fn done(&self) -> bool {
        self.cur.is_none()
    }

    /// The probing rule: query the cheaper dimension of the rectangle.
    fn probe(&self, rect: &Rect) -> (bool, Query) {
        let probe_column = rect.width() <= rect.height();
        let query = if probe_column {
            Query::new(self.plane_preds.clone()).and(Predicate::eq(self.a1, rect.xl as Value))
        } else {
            Query::new(self.plane_preds.clone()).and(Predicate::eq(self.a2, rect.yb as Value))
        };
        (probe_column, query)
    }

    pub(crate) fn plan_into(&self, out: &mut Vec<Query>) {
        if let Some(rect) = &self.cur {
            out.push(self.probe(rect).1);
        }
    }

    pub(crate) fn on_response(
        &mut self,
        kb: &mut KnowledgeBase,
        issued: u64,
        resp: &QueryResponse,
    ) {
        let rect = self
            .cur
            .as_mut()
            .expect("a response arrived without a pending probe");
        // Same decision the plan was derived from (rect unchanged since).
        let probe_column = rect.width() <= rect.height();
        kb.ingest(&resp.tuples);
        kb.record(issued);

        let mut abandon = false;
        match resp.tuples.first() {
            None => {
                // The probed line of the plane is empty.
                if probe_column {
                    rect.xl += 1;
                } else {
                    rect.yb += 1;
                }
            }
            Some(top) => {
                if probe_column {
                    let y = i64::from(top.values[self.a2]);
                    if y > rect.yt {
                        // The best tuple of this column lies above the
                        // rectangle: no candidate inside it.
                        rect.xl += 1;
                    } else if y < rect.yb {
                        // The returned tuple dominates the entire
                        // remaining rectangle.
                        abandon = true;
                    } else {
                        rect.xl += 1;
                        rect.yt = y - 1;
                    }
                } else {
                    let x = i64::from(top.values[self.a1]);
                    if x > rect.xr {
                        rect.yb += 1;
                    } else if x < rect.xl {
                        abandon = true;
                    } else {
                        rect.yb += 1;
                        rect.xr = x - 1;
                    }
                }
            }
        }
        if abandon {
            self.cur = None;
        }
        self.advance_rect();
    }

    /// Field-verbatim encode: the sweep's rectangle list is mid-traversal
    /// state, so the decoder must **not** go through [`PlaneSweep::new`]
    /// (which re-sorts the list and advances to the first rectangle).
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        codec::put_usize(out, self.a1);
        codec::put_usize(out, self.a2);
        codec::put_predicates(out, &self.plane_preds);
        codec::put_usize(out, self.rects.len());
        for r in &self.rects {
            r.encode(out);
        }
        codec::put_bool(out, self.cur.is_some());
        if let Some(r) = &self.cur {
            r.encode(out);
        }
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let a1 = r.usize()?;
        let a2 = r.usize()?;
        let plane_preds = codec::read_predicates(r)?;
        let n = r.usize()?;
        let mut rects = Vec::new();
        for _ in 0..n {
            rects.push(Rect::decode(r)?);
        }
        let cur = if r.bool()? {
            Some(Rect::decode(r)?)
        } else {
            None
        };
        Ok(PlaneSweep {
            a1,
            a2,
            plane_preds,
            rects,
            cur,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(rects: &[Rect]) -> Vec<(i64, i64, i64, i64)> {
        let mut v: Vec<_> = rects.iter().map(|r| (r.xl, r.xr, r.yb, r.yt)).collect();
        v.sort();
        v
    }

    #[test]
    fn no_pruning_yields_the_full_grid() {
        let rects = build_plane_rects(5, 7, &[], None);
        assert_eq!(ids(&rects), vec![(0, 4, 0, 6)]);
    }

    #[test]
    fn single_corner_matches_the_paper_construction() {
        // SELECT * returned (x1, y1) = (3, 4) on a 10x10 grid: the remaining
        // candidate rectangles are [0,2]x[5,9] and [4,9]x[0,3]
        // (Figure 7 of the paper).
        let p = PlanePoint { x: 3, y: 4 };
        let rects = build_plane_rects(10, 10, &[p], Some(p));
        assert_eq!(ids(&rects), vec![(0, 2, 5, 9), (4, 9, 0, 3)]);
    }

    #[test]
    fn staircase_of_two_points() {
        let pts = [PlanePoint { x: 2, y: 6 }, PlanePoint { x: 5, y: 3 }];
        let rects = build_plane_rects(8, 8, &pts, None);
        // Strips: [0,1]x[0,7], [2,4]x[0,5], [5,7]x[0,2].
        assert_eq!(ids(&rects), vec![(0, 1, 0, 7), (2, 4, 0, 5), (5, 7, 0, 2)]);
    }

    #[test]
    fn dominated_pruning_points_are_ignored() {
        let pts = [
            PlanePoint { x: 2, y: 2 },
            PlanePoint { x: 4, y: 4 }, // dominated by (2,2)
        ];
        let rects = build_plane_rects(6, 6, &pts, None);
        assert_eq!(ids(&rects), vec![(0, 1, 0, 5), (2, 5, 0, 1)]);
    }

    #[test]
    fn corner_at_origin_eliminates_nothing_extra() {
        // A pruning point at (0, 0) dominates the whole plane.
        let pts = [PlanePoint { x: 0, y: 0 }];
        let rects = build_plane_rects(6, 6, &pts, None);
        assert!(rects.is_empty());
    }

    #[test]
    fn empty_corner_covering_whole_strip_moves_its_floor() {
        let rects = build_plane_rects(4, 6, &[], Some(PlanePoint { x: 3, y: 2 }));
        assert_eq!(ids(&rects), vec![(0, 3, 3, 5)]);
    }

    #[test]
    fn degenerate_domains() {
        let rects = build_plane_rects(1, 1, &[], None);
        assert_eq!(ids(&rects), vec![(0, 0, 0, 0)]);
        let rects = build_plane_rects(1, 1, &[PlanePoint { x: 0, y: 0 }], None);
        assert!(rects.is_empty());
    }
}
