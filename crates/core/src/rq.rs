//! RQ-DB-SKY (Algorithm 2 of the paper): skyline discovery through an
//! interface that supports **two-ended** range predicates.
//!
//! The algorithm traverses the same conceptual query tree as
//! [SQ-DB-SKY](crate::SqDbSky) in depth-first preorder, but exploits the
//! two-ended interface in two ways:
//!
//! 1. Before issuing a node's (one-ended) query `q`, it checks the tuples
//!    retrieved so far. If none of them matches `q`, issuing `q` is safe and
//!    behaves exactly like SQ-DB-SKY.
//! 2. Otherwise it issues the *mutually exclusive* counterpart `R(q)`,
//!    which covers the value combinations matching `q` but none of the
//!    queries visited earlier in the traversal (built by replacing each
//!    branch predicate `A_i < t[A_i]` with
//!    `A_1 ≥ t[A_1] ∧ … ∧ A_{i-1} ≥ t[A_{i-1}] ∧ A_i < t[A_i]`). If `R(q)`
//!    comes back empty, the whole subtree can be abandoned — the
//!    early-termination that makes RQ-DB-SKY far cheaper than SQ-DB-SKY when
//!    the skyline is large.
//!
//! When `R(q)` returns a tuple that is dominated by an already discovered
//! skyline tuple `t'`, the children are generated from `t'` (the stronger
//! pivot), otherwise from the returned tuple itself.

use skyweb_hidden_db::{HiddenDb, InterfaceType, Predicate, Query, QueryResponse, Tuple};

use crate::codec::{self, CodecError, Reader};
use crate::machine::{DiscoveryMachine, Machine, MachineControl};
use crate::{Discoverer, DiscoveryError, KnowledgeBase};

/// The sans-io machine form of [`RqDbSky`].
///
/// RQ plans are single-query by construction: whether a node issues `q` or
/// its exclusive counterpart `R(q)`, and whether its subtree is expanded or
/// abandoned, both consume the *previous* answer — the adaptivity that
/// makes RQ-DB-SKY cheaper than SQ-DB-SKY is exactly what rules out
/// batching its frontier without speculating server-billed queries.
pub type RqMachine = Machine<RqControl>;

/// RQ-DB-SKY: skyline discovery for databases whose ranking attributes all
/// support two-ended range predicates.
#[derive(Debug, Clone, Default)]
pub struct RqDbSky {
    budget: Option<u64>,
}

/// A node of the traversal: the SQ-tree query and its mutually exclusive
/// counterpart.
#[derive(Debug, Clone)]
struct Node {
    sq: Query,
    rq: Query,
}

impl RqDbSky {
    /// Creates the algorithm with no client-side query budget.
    pub fn new() -> Self {
        RqDbSky::default()
    }

    /// Limits the number of queries the algorithm may issue (anytime mode).
    pub fn with_budget(budget: u64) -> Self {
        RqDbSky {
            budget: Some(budget),
        }
    }

    fn check_interface(db: &HiddenDb) -> Result<(), DiscoveryError> {
        for &a in db.schema().ranking_attrs() {
            let spec = db.schema().attr(a);
            if spec.interface != InterfaceType::Rq {
                return Err(DiscoveryError::UnsupportedInterface {
                    reason: format!(
                        "RQ-DB-SKY needs two-ended ranges on every ranking attribute, \
                         but '{}' is {}",
                        spec.name,
                        spec.interface.label()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Generates the children of a node for the given pivot tuple, in branch
    /// order (attribute 0 first).
    fn children(node: &Node, pivot: &Tuple, attrs: &[usize]) -> Vec<Node> {
        let mut out = Vec::with_capacity(attrs.len());
        for (i, &a) in attrs.iter().enumerate() {
            let sq = node.sq.and(Predicate::lt(a, pivot.values[a]));
            let mut rq = node.rq.clone();
            for &earlier in &attrs[..i] {
                rq.push(Predicate::ge(earlier, pivot.values[earlier]));
            }
            rq.push(Predicate::lt(a, pivot.values[a]));
            out.push(Node { sq, rq });
        }
        out
    }

    /// Builds the concrete machine (also available through the boxed
    /// [`Discoverer::machine`] entry point).
    pub fn build_machine(&self, db: &HiddenDb) -> Result<RqMachine, DiscoveryError> {
        Self::check_interface(db)?;
        let attrs: Vec<usize> = db.schema().ranking_attrs().to_vec();
        let walk = RqTreeWalk::new(Query::select_all(), attrs.clone(), db.k());
        Ok(Machine::from_parts(
            KnowledgeBase::new(attrs),
            RqControl { walk },
        ))
    }
}

/// The depth-first RQ traversal, rooted anywhere and branching on an
/// arbitrary attribute subset — shared by RQ-DB-SKY, MQ-DB-SKY's range
/// phase and the sky-band extension (which roots the traversal in a
/// domination subspace).
///
/// The sq-vs-rq decision for a node is evaluated against the knowledge
/// base both when the plan is derived and when the response is consumed;
/// the two agree because plans are single-query (nothing is ingested in
/// between) and `any_seen_matches` is monotone in the retrieved set.
#[derive(Debug, Clone)]
pub(crate) struct RqTreeWalk {
    stack: Vec<Node>,
    branch: Vec<usize>,
    k: usize,
}

impl RqTreeWalk {
    pub(crate) fn new(root: Query, branch: Vec<usize>, k: usize) -> Self {
        RqTreeWalk {
            stack: vec![Node {
                sq: root.clone(),
                rq: root,
            }],
            branch,
            k,
        }
    }

    pub(crate) fn done(&self) -> bool {
        self.stack.is_empty()
    }

    pub(crate) fn plan_into(&self, kb: &KnowledgeBase, out: &mut Vec<Query>) {
        if let Some(node) = self.stack.last() {
            if kb.any_seen_matches(&node.sq) {
                out.push(node.rq.clone());
            } else {
                out.push(node.sq.clone());
            }
        }
    }

    pub(crate) fn on_response(
        &mut self,
        kb: &mut KnowledgeBase,
        issued: u64,
        resp: &QueryResponse,
    ) {
        let node = self
            .stack
            .pop()
            .expect("a response arrived without a pending node");
        // Same decision the plan was derived from (kb unchanged since).
        let exclusive = kb.any_seen_matches(&node.sq);
        kb.ingest(&resp.tuples);
        kb.record(issued);
        let expand_pivot: Option<std::sync::Arc<Tuple>> = if !exclusive {
            // The node's own (one-ended) query q was issued.
            if resp.tuples.len() == self.k {
                Some(std::sync::Arc::clone(&resp.tuples[0]))
            } else {
                None
            }
        } else if resp.tuples.is_empty() {
            // R(q) came back empty: no new tuple in this subtree.
            None
        } else if resp.tuples.len() == self.k {
            // Children are generated from a dominating skyline tuple
            // if one exists, otherwise from the returned top tuple.
            // The pivot must itself satisfy the node's query so that
            // "dominated by the pivot" implies "dominated inside the
            // subspace rooted here" (relevant when the traversal is
            // rooted in a domination subspace for sky-band
            // discovery).
            let top = &resp.tuples[0];
            let pivot = kb
                .dominated_by_skyline(top)
                .filter(|p| node.sq.matches(p))
                .map(std::sync::Arc::clone)
                .unwrap_or_else(|| std::sync::Arc::clone(top));
            Some(pivot)
        } else {
            // R(q) underflowed: every tuple in its (exclusive)
            // region has been retrieved; nothing left in the subtree.
            None
        };

        if let Some(pivot) = expand_pivot {
            for child in RqDbSky::children(&node, &pivot, &self.branch)
                .into_iter()
                .rev()
            {
                self.stack.push(child);
            }
        }
    }

    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        codec::put_usize(out, self.stack.len());
        for node in &self.stack {
            codec::put_query(out, &node.sq);
            codec::put_query(out, &node.rq);
        }
        codec::put_usize_slice(out, &self.branch);
        codec::put_usize(out, self.k);
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.usize()?;
        let mut stack = Vec::new();
        for _ in 0..n {
            let sq = codec::read_query(r)?;
            let rq = codec::read_query(r)?;
            stack.push(Node { sq, rq });
        }
        let branch = codec::read_usize_vec(r)?;
        let k = r.usize()?;
        Ok(RqTreeWalk { stack, branch, k })
    }
}

/// Control state of [`RqMachine`]: the depth-first RQ traversal of
/// RQ-DB-SKY.
#[derive(Debug, Clone)]
pub struct RqControl {
    walk: RqTreeWalk,
}

impl RqControl {
    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RqControl {
            walk: RqTreeWalk::decode(r)?,
        })
    }
}

impl MachineControl for RqControl {
    fn name(&self) -> &str {
        "RQ-DB-SKY"
    }

    fn done(&self) -> bool {
        self.walk.done()
    }

    fn plan_into(&self, kb: &KnowledgeBase, _limit: usize, out: &mut Vec<Query>) {
        self.walk.plan_into(kb, out);
    }

    fn on_response(&mut self, kb: &mut KnowledgeBase, issued: u64, resp: &QueryResponse) {
        self.walk.on_response(kb, issued, resp);
    }

    fn codec_tag(&self) -> Option<u8> {
        Some(codec::TAG_RQ)
    }

    fn encode_control(&self, out: &mut Vec<u8>) {
        self.walk.encode(out);
    }
}

impl Discoverer for RqDbSky {
    fn name(&self) -> &str {
        "RQ-DB-SKY"
    }

    fn budget(&self) -> Option<u64> {
        self.budget
    }

    fn machine(&self, db: &HiddenDb) -> Result<Box<dyn DiscoveryMachine>, DiscoveryError> {
        Ok(Box::new(self.build_machine(db)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_hidden_db::{RandomSkylineRanker, SchemaBuilder, SumRanker};
    use skyweb_skyline::{bnl_skyline, same_ids};

    fn schema(m: usize, domain: u32) -> skyweb_hidden_db::Schema {
        let mut b = SchemaBuilder::new();
        for i in 0..m {
            b = b.ranking(format!("a{i}"), domain, InterfaceType::Rq);
        }
        b.build()
    }

    fn figure2_db(k: usize) -> HiddenDb {
        let tuples = vec![
            Tuple::new(1, vec![5, 1, 9]),
            Tuple::new(2, vec![4, 4, 8]),
            Tuple::new(3, vec![1, 3, 7]),
            Tuple::new(4, vec![3, 2, 3]),
        ];
        HiddenDb::new(schema(3, 10), tuples, Box::new(SumRanker), k)
    }

    #[test]
    fn discovers_all_skyline_tuples_of_the_paper_example() {
        let db = figure2_db(1);
        let result = RqDbSky::new().discover(&db).unwrap();
        assert!(result.complete);
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
    }

    #[test]
    fn never_more_expensive_than_sq_on_anticorrelated_data() {
        // Anti-correlated data: every tuple is on the skyline, which is
        // exactly where RQ-DB-SKY's early termination pays off.
        let n = 40u64;
        let tuples: Vec<Tuple> = (0..n)
            .map(|i| Tuple::new(i, vec![i as u32, (n - 1 - i) as u32]))
            .collect();
        let db_rq = HiddenDb::new(schema(2, 64), tuples.clone(), Box::new(SumRanker), 1);
        let db_sq = HiddenDb::new(schema(2, 64), tuples, Box::new(SumRanker), 1);
        let rq = RqDbSky::new().discover(&db_rq).unwrap();
        let sq = crate::SqDbSky::new().discover(&db_sq).unwrap();
        assert_eq!(rq.skyline.len(), n as usize);
        assert_eq!(sq.skyline.len(), n as usize);
        assert!(
            rq.query_cost <= sq.query_cost,
            "RQ ({}) should not exceed SQ ({}) when |S| is large",
            rq.query_cost,
            sq.query_cost
        );
    }

    #[test]
    fn complete_under_a_randomized_ranking_function() {
        // Duplicate-free data (general positioning assumption).
        let tuples = skyweb_datagen::synthetic::distinct_cells(&[50, 50, 50], 60, 37);
        let db = HiddenDb::new(
            schema(3, 50),
            tuples,
            Box::new(RandomSkylineRanker::new(123)),
            2,
        );
        let result = RqDbSky::new().discover(&db).unwrap();
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
    }

    #[test]
    fn rejects_one_ended_interfaces() {
        let s = SchemaBuilder::new()
            .ranking("a", 10, InterfaceType::Sq)
            .ranking("b", 10, InterfaceType::Rq)
            .build();
        let db = HiddenDb::new(s, vec![Tuple::new(0, vec![1, 1])], Box::new(SumRanker), 1);
        let err = RqDbSky::new().discover(&db).unwrap_err();
        assert!(matches!(err, DiscoveryError::UnsupportedInterface { .. }));
    }

    #[test]
    fn budget_exhaustion_yields_partial_anytime_result() {
        let db = figure2_db(1);
        let result = RqDbSky::with_budget(3).discover(&db).unwrap();
        assert!(!result.complete);
        assert_eq!(result.query_cost, 3);
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        let truth_ids: Vec<u64> = truth.iter().map(|t| t.id).collect();
        assert!(result.skyline.iter().all(|t| truth_ids.contains(&t.id)));
    }

    #[test]
    fn larger_k_reduces_query_cost() {
        let c1 = RqDbSky::new().discover(&figure2_db(1)).unwrap().query_cost;
        let c4 = RqDbSky::new().discover(&figure2_db(4)).unwrap().query_cost;
        assert!(c4 <= c1);
    }

    #[test]
    fn empty_database() {
        let db = HiddenDb::new(schema(2, 10), vec![], Box::new(SumRanker), 1);
        let result = RqDbSky::new().discover(&db).unwrap();
        assert!(result.complete);
        assert!(result.skyline.is_empty());
        assert_eq!(result.query_cost, 1);
    }

    #[test]
    fn children_are_mutually_exclusive() {
        let node = Node {
            sq: Query::select_all(),
            rq: Query::select_all(),
        };
        let pivot = Tuple::new(0, vec![5, 5, 5]);
        let children = RqDbSky::children(&node, &pivot, &[0, 1, 2]);
        assert_eq!(children.len(), 3);
        // A tuple can match at most one of the exclusive (rq) children.
        for probe in [
            Tuple::new(1, vec![2, 9, 9]),
            Tuple::new(2, vec![9, 2, 9]),
            Tuple::new(3, vec![9, 9, 2]),
            Tuple::new(4, vec![2, 2, 2]),
        ] {
            let matches = children.iter().filter(|c| c.rq.matches(&probe)).count();
            assert!(
                matches <= 1,
                "tuple {probe:?} matched {matches} exclusive children"
            );
            // ... but at least one of the (overlapping) SQ children whenever
            // the tuple beats the pivot somewhere.
            let sq_matches = children.iter().filter(|c| c.sq.matches(&probe)).count();
            assert!(sq_matches >= 1);
        }
    }
}
