//! The sans-io state-machine layer: every discovery algorithm re-expressed
//! as a [`DiscoveryMachine`] that *yields* query plans and is *resumed* with
//! responses, instead of calling the database itself.
//!
//! The paper's algorithms are *anytime*: after every answered query the
//! client knows a certified subset of the skyline. The old run-to-completion
//! `Discoverer::discover` entry point threw that property away at the API
//! boundary — a caller could not pause, stream, deadline, checkpoint or
//! interleave runs. The machine layer restores it by separating *what to
//! execute* from *how it is driven*:
//!
//! * a **machine** owns the complete client-side state of one run — its
//!   [`KnowledgeBase`], anytime trace and issued-query accounting — and
//!   never touches the database: it hands out a [`QueryPlan`] and consumes
//!   [`QueryResponse`]s (see [`DiscoveryMachine`]);
//! * a **driver** ([`crate::DiscoveryDriver`]) executes a machine against a
//!   [`Session`](skyweb_hidden_db::Session), pipelining multi-query plans
//!   through the batch interface and enforcing budgets and deadlines;
//! * a **service** ([`crate::DiscoveryService`]) multiplexes many machines
//!   over one shared database with round-robin fairness.
//!
//! Because a machine holds no reference to the database (its constructors
//! only copy schema metadata), its state is fully owned and explicit: it can
//! be boxed, moved across threads, kept in a [`crate::Checkpoint`] while the
//! session is gone, and resumed later — the sans-io property.
//!
//! # The plan/resume contract
//!
//! A driver repeatedly:
//!
//! 1. calls [`DiscoveryMachine::next_plan`] with a batch limit; an **empty
//!    plan means the machine is finished**;
//! 2. executes the plan's queries **in order** (all of them — the driver
//!    controls the prefix length through `limit`, not by dropping queries);
//! 3. feeds the responses back **in order** through
//!    [`DiscoveryMachine::resume`]. When the budget or the server's rate
//!    limit cut the plan short, the successfully answered *prefix* is fed
//!    and [`DiscoveryMachine::halt`] is called — the machine then reports
//!    the partial anytime result (`complete == false`).
//!
//! Between a `next_plan` and the matching `resume` the machine's state does
//! not change, so `next_plan` is idempotent: pausing a run at any plan
//! boundary and re-deriving the plan after [`crate::Checkpoint`] restoration
//! yields the same queries.
//!
//! Machines construct plans so that **any** prefix-batching schedule
//! produces the same query sequence, knowledge evolution and anytime trace
//! as the fully sequential one-query-at-a-time schedule. Algorithms whose
//! next query depends on the previous answer (RQ-DB-SKY's adaptive
//! traversal, rectangle sweeps, region crawling) therefore yield
//! single-query plans; algorithms with data-independent frontiers (the
//! SQ-DB-SKY BFS tree, the point-space odometer) yield their whole frontier
//! and profit from batched execution.

use std::fmt;
use std::sync::Arc;

use skyweb_hidden_db::{PrefixGroup, Query, QueryResponse, Tuple};

use crate::discovery::DiscoveryResult;
use crate::KnowledgeBase;

/// An ordered batch of queries a machine wants answered next.
///
/// The queries are independent *as a prefix schedule*: executing any prefix
/// of the plan in order and resuming the machine with the responses is
/// equivalent to the sequential schedule (see the module docs).
///
/// A plan may additionally carry its **sibling-group annotation**
/// ([`QueryPlan::groups`]): the tiling of the plan into runs of queries
/// sharing a predicate prefix, which tree-frontier machines know from
/// construction (children inherit their parent's conjunction). The engine's
/// shared-prefix batch executor uses it to evaluate each shared conjunction
/// once instead of rediscovering the factoring; a plan without the
/// annotation is factored engine-side and executes identically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryPlan {
    queries: Vec<Query>,
    groups: Option<Vec<PrefixGroup>>,
}

impl QueryPlan {
    /// Creates a plan from the given queries (no sibling annotation; the
    /// engine factors shared prefixes itself).
    pub fn new(queries: Vec<Query>) -> Self {
        QueryPlan {
            queries,
            groups: None,
        }
    }

    /// Creates a plan with its sibling-group annotation. `groups` must tile
    /// `queries` with literally shared predicate prefixes (the engine
    /// verifies and falls back to its own factoring otherwise, so an
    /// inconsistent annotation costs performance, never correctness).
    pub fn with_groups(queries: Vec<Query>, groups: Vec<PrefixGroup>) -> Self {
        QueryPlan {
            queries,
            groups: Some(groups),
        }
    }

    /// The empty plan (meaning: the machine is finished).
    pub fn empty() -> Self {
        QueryPlan::default()
    }

    /// Number of queries in the plan.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` if the plan carries no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The planned queries, in issue order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// The plan's sibling-group annotation, if the machine provided one.
    pub fn groups(&self) -> Option<&[PrefixGroup]> {
        self.groups.as_deref()
    }

    /// Consumes the plan into its queries.
    pub fn into_queries(self) -> Vec<Query> {
        self.queries
    }
}

impl From<Vec<Query>> for QueryPlan {
    fn from(queries: Vec<Query>) -> Self {
        QueryPlan::new(queries)
    }
}

/// Allocation-free progress counters of a running machine — what a
/// scheduler polls after every step ([`AnytimeSnapshot`] adds the skyline
/// tuples themselves for streaming consumers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunProgress {
    /// Queries answered so far.
    pub queries: u64,
    /// Number of distinct tuples retrieved so far.
    pub retrieved: usize,
    /// Number of currently certified skyline candidates.
    pub skyline_len: usize,
    /// Queries spent when the first skyline candidate was certified.
    pub first_skyline_at: Option<u64>,
    /// `true` once the machine needs no further queries.
    pub finished: bool,
}

/// A cheap anytime view of a running machine: how much was spent and what
/// is already certified.
#[derive(Debug, Clone)]
pub struct AnytimeSnapshot {
    /// Queries answered so far.
    pub queries: u64,
    /// Number of distinct tuples retrieved so far.
    pub retrieved: usize,
    /// The current certified skyline candidates (shared handles).
    pub skyline: Vec<Arc<Tuple>>,
    /// Queries spent when the first skyline candidate was certified
    /// (`None` until one is) — the anytime "time to first result".
    pub first_skyline_at: Option<u64>,
    /// `true` once the machine needs no further queries (either the run
    /// completed or it was halted).
    pub finished: bool,
}

/// A sans-io skyline-discovery run: the machine yields query plans, the
/// caller executes them and feeds the responses back.
///
/// See the [module docs](self) for the plan/resume contract. All eight
/// paper algorithms implement this trait through the [`Machine`] chassis;
/// [`crate::Discoverer::machine`] compiles an algorithm configuration into
/// a boxed machine for a concrete database schema.
pub trait DiscoveryMachine: fmt::Debug + Send {
    /// Short algorithm name (e.g. `"SQ-DB-SKY"`).
    fn name(&self) -> &str;

    /// The next batch of queries (at most `limit`, which must be ≥ 1) the
    /// machine wants answered, in issue order. An empty plan means the
    /// machine is finished. Idempotent until the next [`resume`] call.
    ///
    /// [`resume`]: DiscoveryMachine::resume
    fn next_plan(&self, limit: usize) -> QueryPlan;

    /// Feeds the responses for a prefix of the most recently planned
    /// queries, in order. Advances the machine's knowledge base, trace and
    /// issued-query accounting.
    fn resume(&mut self, responses: &[QueryResponse]);

    /// Tells the machine that no further queries will be answered (budget,
    /// deadline or rate-limit exhaustion). The machine keeps its anytime
    /// state; [`take_result`](DiscoveryMachine::take_result) then reports
    /// `complete == false` unless the run had already finished.
    fn halt(&mut self);

    /// `true` once the machine needs no further queries.
    fn is_finished(&self) -> bool;

    /// Number of queries answered so far (survives checkpoints, so budget
    /// accounting carries across pause/resume).
    fn queries_issued(&self) -> u64;

    /// Allocation-free progress counters (for per-step polling).
    fn progress(&self) -> RunProgress;

    /// An anytime snapshot of the run (cheap: shared tuple handles).
    fn snapshot(&self) -> AnytimeSnapshot;

    /// Consumes the accumulated knowledge into the final
    /// [`DiscoveryResult`]. Call at most once, after the run finished or
    /// was halted; the machine is left empty afterwards.
    fn take_result(&mut self) -> DiscoveryResult;

    /// Appends the machine's complete state in the binary checkpoint
    /// format (see [`crate::codec`]) to `out` and returns `true`, or
    /// returns `false` without touching `out` when the machine does not
    /// support the codec. The default declines; the [`Machine`] chassis
    /// encodes itself whenever its control reports a
    /// [`MachineControl::codec_tag`].
    fn encode_state(&self, out: &mut Vec<u8>) -> bool {
        let _ = out;
        false
    }
}

impl<M: DiscoveryMachine + ?Sized> DiscoveryMachine for Box<M> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn next_plan(&self, limit: usize) -> QueryPlan {
        (**self).next_plan(limit)
    }
    fn resume(&mut self, responses: &[QueryResponse]) {
        (**self).resume(responses)
    }
    fn halt(&mut self) {
        (**self).halt()
    }
    fn is_finished(&self) -> bool {
        (**self).is_finished()
    }
    fn queries_issued(&self) -> u64 {
        (**self).queries_issued()
    }
    fn progress(&self) -> RunProgress {
        (**self).progress()
    }
    fn snapshot(&self) -> AnytimeSnapshot {
        (**self).snapshot()
    }
    fn take_result(&mut self) -> DiscoveryResult {
        (**self).take_result()
    }
    fn encode_state(&self, out: &mut Vec<u8>) -> bool {
        (**self).encode_state(out)
    }
}

/// The algorithm-specific control state of a machine: which queries to ask
/// next and how an answer changes the traversal.
///
/// Implementations are *pure control flow* over the shared
/// [`KnowledgeBase`]: they hold explicit queues/stacks/frames (no database
/// handles, no I/O) and are driven by the [`Machine`] chassis, which owns
/// the knowledge base and the issued-query accounting. This is the
/// extension point for new discovery strategies: implement `MachineControl`
/// and wrap it in [`Machine::from_parts`].
pub trait MachineControl: fmt::Debug + Send {
    /// Algorithm name.
    fn name(&self) -> &str;

    /// `true` when the traversal has nothing left to ask.
    fn done(&self) -> bool;

    /// Appends up to `limit` next queries to `out`, in issue order. Must
    /// not mutate state and must be prefix-stable (see the module docs).
    fn plan_into(&self, kb: &KnowledgeBase, limit: usize, out: &mut Vec<Query>);

    /// Appends the sibling-group annotation of the same `limit`-bounded
    /// plan to `out` — one [`PrefixGroup`] per run of consecutive queries
    /// sharing a predicate prefix, tiling exactly the queries `plan_into`
    /// emits. The default emits nothing (the engine factors the plan
    /// itself); controls with data-independent frontiers (the SQ BFS tree,
    /// the point-space odometer) override it because they know the sibling
    /// structure from construction.
    fn plan_groups_into(&self, limit: usize, out: &mut Vec<PrefixGroup>) {
        let _ = (limit, out);
    }

    /// Consumes the response to the head query of the current plan:
    /// ingests the tuples into `kb`, records the trace point at `issued`
    /// answered queries, and advances the traversal.
    fn on_response(&mut self, kb: &mut KnowledgeBase, issued: u64, resp: &QueryResponse);

    /// The control's machine tag in the binary checkpoint format (see
    /// [`crate::codec`]), or `None` when the control cannot be serialized.
    /// The default declines, so custom controls are simply not
    /// checkpointable-to-bytes rather than broken.
    fn codec_tag(&self) -> Option<u8> {
        None
    }

    /// Appends the control's codec payload to `out`. Must round-trip with
    /// the decoder registered for [`codec_tag`](MachineControl::codec_tag);
    /// the default (paired with a `None` tag) writes nothing.
    fn encode_control(&self, out: &mut Vec<u8>) {
        let _ = out;
    }
}

/// Shared chassis of all discovery machines: owns the [`KnowledgeBase`],
/// the issued-query counter and the halted flag, and delegates the
/// traversal to a [`MachineControl`].
#[derive(Debug, Clone)]
pub struct Machine<C> {
    kb: KnowledgeBase,
    issued: u64,
    halted: bool,
    /// Issued-query count at which the first skyline candidate was
    /// certified, cached at resume time so progress polling never rescans
    /// the trace.
    first_skyline_at: Option<u64>,
    control: C,
}

impl<C: MachineControl> Machine<C> {
    /// Assembles a machine from a prepared knowledge base and control
    /// state.
    pub fn from_parts(kb: KnowledgeBase, control: C) -> Self {
        Machine {
            kb,
            issued: 0,
            halted: false,
            first_skyline_at: None,
            control,
        }
    }

    /// The algorithm-specific control state.
    pub fn control(&self) -> &C {
        &self.control
    }

    /// The machine's knowledge base (read access; the chassis owns it).
    pub fn knowledge(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// `true` once [`DiscoveryMachine::halt`] was called.
    pub fn halted(&self) -> bool {
        self.halted
    }

    pub(crate) fn finish_parts(&mut self, complete: bool) -> (KnowledgeBase, u64, bool) {
        let kb = std::mem::replace(&mut self.kb, KnowledgeBase::new(Vec::new()));
        (kb, self.issued, complete)
    }

    /// Reassembles a machine from decoded checkpoint state, restoring every
    /// chassis field verbatim (used by [`crate::codec`]).
    pub(crate) fn from_restored(
        kb: KnowledgeBase,
        issued: u64,
        halted: bool,
        first_skyline_at: Option<u64>,
        control: C,
    ) -> Self {
        Machine {
            kb,
            issued,
            halted,
            first_skyline_at,
            control,
        }
    }
}

impl<C: MachineControl> DiscoveryMachine for Machine<C> {
    fn name(&self) -> &str {
        self.control.name()
    }

    fn next_plan(&self, limit: usize) -> QueryPlan {
        if self.halted || self.control.done() {
            return QueryPlan::empty();
        }
        let mut queries = Vec::new();
        self.control.plan_into(&self.kb, limit.max(1), &mut queries);
        let mut groups = Vec::new();
        self.control.plan_groups_into(limit.max(1), &mut groups);
        if groups.is_empty() {
            QueryPlan::new(queries)
        } else {
            QueryPlan::with_groups(queries, groups)
        }
    }

    fn resume(&mut self, responses: &[QueryResponse]) {
        for resp in responses {
            self.issued += 1;
            self.control.on_response(&mut self.kb, self.issued, resp);
            if self.first_skyline_at.is_none() && self.kb.skyline_len() > 0 {
                self.first_skyline_at = Some(self.issued);
            }
        }
    }

    fn halt(&mut self) {
        self.halted = true;
    }

    fn is_finished(&self) -> bool {
        self.halted || self.control.done()
    }

    fn queries_issued(&self) -> u64 {
        self.issued
    }

    fn progress(&self) -> RunProgress {
        RunProgress {
            queries: self.issued,
            retrieved: self.kb.retrieved_len(),
            skyline_len: self.kb.skyline_len(),
            first_skyline_at: self.first_skyline_at,
            finished: self.is_finished(),
        }
    }

    fn snapshot(&self) -> AnytimeSnapshot {
        AnytimeSnapshot {
            queries: self.issued,
            retrieved: self.kb.retrieved_len(),
            skyline: self.kb.skyline_tuples(),
            first_skyline_at: self.first_skyline_at,
            finished: self.is_finished(),
        }
    }

    fn take_result(&mut self) -> DiscoveryResult {
        let complete = self.control.done() && !self.halted;
        let (kb, issued, complete) = self.finish_parts(complete);
        kb.finish(issued, complete)
    }

    fn encode_state(&self, out: &mut Vec<u8>) -> bool {
        let Some(tag) = self.control.codec_tag() else {
            return false;
        };
        crate::codec::put_u8(out, tag);
        crate::codec::put_u64(out, self.issued);
        crate::codec::put_bool(out, self.halted);
        crate::codec::put_opt_u64(out, self.first_skyline_at);
        self.kb.encode(out);
        self.control.encode_control(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct CountDown {
        left: usize,
    }

    impl MachineControl for CountDown {
        fn name(&self) -> &str {
            "COUNTDOWN"
        }
        fn done(&self) -> bool {
            self.left == 0
        }
        fn plan_into(&self, _kb: &KnowledgeBase, limit: usize, out: &mut Vec<Query>) {
            for _ in 0..self.left.min(limit) {
                out.push(Query::select_all());
            }
        }
        fn on_response(&mut self, kb: &mut KnowledgeBase, issued: u64, resp: &QueryResponse) {
            kb.ingest(&resp.tuples);
            kb.record(issued);
            self.left -= 1;
        }
    }

    fn resp(tuples: Vec<Tuple>) -> QueryResponse {
        QueryResponse {
            tuples: tuples.into_iter().map(Arc::new).collect(),
            overflowed: false,
        }
    }

    #[test]
    fn chassis_tracks_plans_responses_and_halt() {
        let mut m = Machine::from_parts(KnowledgeBase::new(vec![0]), CountDown { left: 3 });
        assert_eq!(m.next_plan(2).len(), 2);
        assert_eq!(m.next_plan(9).len(), 3); // idempotent until resumed
        m.resume(&[resp(vec![Tuple::new(0, vec![4])]), resp(vec![])]);
        assert_eq!(m.queries_issued(), 2);
        assert_eq!(m.next_plan(9).len(), 1);
        assert!(!m.is_finished());
        let snap = m.snapshot();
        assert_eq!(snap.queries, 2);
        assert_eq!(snap.retrieved, 1);
        m.halt();
        assert!(m.is_finished());
        assert!(m.next_plan(4).is_empty());
        let result = m.take_result();
        assert!(!result.complete);
        assert_eq!(result.query_cost, 2);
        assert_eq!(result.trace.len(), 2);
    }

    #[test]
    fn finished_control_reports_complete() {
        let mut m = Machine::from_parts(KnowledgeBase::new(vec![0]), CountDown { left: 1 });
        m.resume(&[resp(vec![])]);
        assert!(m.is_finished());
        let result = m.take_result();
        assert!(result.complete);
        assert_eq!(result.query_cost, 1);
    }
}
