//! MQ-DB-SKY (Algorithm 6 of the paper): skyline discovery over a search
//! interface with an arbitrary **mixture** of one-ended range (SQ),
//! two-ended range (RQ) and point (PQ) attributes.
//!
//! The algorithm runs in two phases:
//!
//! 1. **Range phase** — run the SQ/RQ query-tree over the range attributes
//!    only, leaving the point attributes unconstrained. Every tuple returned
//!    as a top answer here is a true skyline tuple, but tuples that are
//!    dominated *on the range attributes* by another tuple (while beating it
//!    on a point attribute) are missed.
//! 2. **Point phase** (the `MIXED-DB-SKY` subroutine) — by the
//!    *range-domination property*, every missing skyline tuple is dominated
//!    on all range attributes by some phase-1 skyline tuple and beats it on
//!    at least one point attribute. The search space is therefore pruned to
//!    `A_r ≥ min_{t ∈ S}(t[A_r])` on every two-ended range attribute, and
//!    the point attributes are explored value by value: for each point
//!    attribute `B_i` and each value `v` better than the worst value seen on
//!    the phase-1 skyline, the query `P ∧ B_i = v` is issued; overflowing
//!    answers are refined by recursively fixing the remaining point
//!    attributes (stopping as soon as an answer is empty) and, once all
//!    point attributes are pinned, by crawling the remaining range subspace.
//!
//! When the database has only range attributes MQ-DB-SKY reduces to
//! SQ-/RQ-DB-SKY; with only point attributes it reduces to PQ-DB-SKY.

use std::collections::HashSet;

use skyweb_hidden_db::{HiddenDb, InterfaceType, Predicate, Query, QueryResponse, Value};

use crate::baseline::RegionCrawl;
use crate::codec::{self, CodecError, Reader};
use crate::machine::{DiscoveryMachine, Machine, MachineControl};
use crate::rq::RqTreeWalk;
use crate::sq::SqTreeWalk;
use crate::{Discoverer, DiscoveryError, KnowledgeBase, PqDbSky, RqDbSky, SqDbSky};

/// The sans-io machine form of [`MqDbSky`] for genuinely mixed schemas
/// (range *and* point attributes). Degenerate mixtures compile to the
/// specialised machines instead — see [`MqDbSky::machine`].
pub type MqMachine = Machine<MqControl>;

/// MQ-DB-SKY: skyline discovery for any mixture of SQ, RQ and PQ ranking
/// attributes.
#[derive(Debug, Clone, Default)]
pub struct MqDbSky {
    budget: Option<u64>,
}

impl MqDbSky {
    /// Creates the algorithm with no client-side query budget.
    pub fn new() -> Self {
        MqDbSky::default()
    }

    /// Limits the number of queries the algorithm may issue (anytime mode).
    pub fn with_budget(budget: u64) -> Self {
        MqDbSky {
            budget: Some(budget),
        }
    }

    /// Builds the concrete machine for a genuinely mixed schema. Errors on
    /// degenerate mixtures (use [`Discoverer::machine`], which delegates to
    /// the specialised machine instead).
    pub fn build_machine(&self, db: &HiddenDb) -> Result<MqMachine, DiscoveryError> {
        let schema = db.schema();
        let attrs: Vec<usize> = schema.ranking_attrs().to_vec();
        let range_attrs: Vec<usize> = schema.range_attrs();
        let point_attrs: Vec<usize> = schema.point_attrs();
        if point_attrs.is_empty() || range_attrs.is_empty() {
            return Err(DiscoveryError::UnsupportedInterface {
                reason: "MQ-DB-SKY's machine form needs both range and point attributes; \
                         degenerate mixtures reduce to the specialised machines"
                    .to_string(),
            });
        }
        let two_ended: Vec<(usize, Value)> = schema
            .two_ended_attrs()
            .into_iter()
            .map(|a| (a, schema.attr(a).domain_size))
            .collect();
        let domain: Vec<Value> = (0..schema.len())
            .map(|a| schema.attr(a).domain_size)
            .collect();
        let k = db.k();

        // Phase 1: range-only discovery (point attributes left as *).
        let state = if two_ended.len() == range_attrs.len() {
            MqState::RangeRq(RqTreeWalk::new(Query::select_all(), range_attrs.clone(), k))
        } else {
            MqState::RangeSq(SqTreeWalk::new(Query::select_all(), range_attrs.clone(), k))
        };
        let control = MqControl {
            k,
            range_attrs,
            point_attrs,
            two_ended,
            domain,
            state,
        };
        Ok(Machine::from_parts(KnowledgeBase::new(attrs), control))
    }
}

/// One frame of the point-phase refinement stack — the explicit form of the
/// old recursive `refine_point_subspace`.
#[derive(Debug, Clone)]
enum MqFrame {
    /// Pinning one point attribute value by value: issues
    /// `base ∧ attr = next_v` for `next_v` in `0..bound`, recursing (a new
    /// frame) on overflowing answers.
    Values {
        base: Query,
        attr: usize,
        rest: Vec<usize>,
        next_v: Value,
        bound: Value,
    },
    /// Every point attribute pinned, all range attributes two-ended: crawl
    /// the leaf subspace exhaustively.
    CrawlLeaf(RegionCrawl),
    /// Every point attribute pinned, some range attribute one-ended:
    /// discover the leaf subspace's skyline with an SQ-DB-SKY subtree
    /// (sufficient, because within the leaf dominance reduces to the range
    /// attributes).
    TreeLeaf(SqTreeWalk),
}

impl MqFrame {
    fn exhausted(&self) -> bool {
        match self {
            MqFrame::Values { next_v, bound, .. } => next_v >= bound,
            MqFrame::CrawlLeaf(crawl) => crawl.done(),
            MqFrame::TreeLeaf(walk) => walk.done(),
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            MqFrame::Values {
                base,
                attr,
                rest,
                next_v,
                bound,
            } => {
                codec::put_u8(out, 0);
                codec::put_query(out, base);
                codec::put_usize(out, *attr);
                codec::put_usize_slice(out, rest);
                codec::put_u32(out, *next_v);
                codec::put_u32(out, *bound);
            }
            MqFrame::CrawlLeaf(crawl) => {
                codec::put_u8(out, 1);
                crawl.encode(out);
            }
            MqFrame::TreeLeaf(walk) => {
                codec::put_u8(out, 2);
                walk.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => {
                let base = codec::read_query(r)?;
                let attr = r.usize()?;
                let rest = codec::read_usize_vec(r)?;
                let next_v = r.u32()?;
                let bound = r.u32()?;
                MqFrame::Values {
                    base,
                    attr,
                    rest,
                    next_v,
                    bound,
                }
            }
            1 => MqFrame::CrawlLeaf(RegionCrawl::decode(r)?),
            2 => MqFrame::TreeLeaf(SqTreeWalk::decode(r)?),
            tag => return Err(CodecError::BadTag { tag }),
        })
    }
}

#[derive(Debug, Clone)]
enum MqState {
    /// Phase 1 over two-ended range attributes.
    RangeRq(RqTreeWalk),
    /// Phase 1 with at least one one-ended range attribute.
    RangeSq(SqTreeWalk),
    /// Phase 2: the point-attribute refinement stack.
    Point {
        frames: Vec<MqFrame>,
        leaves_done: HashSet<Vec<Predicate>>,
    },
    /// Finished.
    Done,
}

/// Control state of [`MqMachine`]: MQ-DB-SKY's range phase followed by the
/// point-phase subspace refinement.
#[derive(Debug, Clone)]
pub struct MqControl {
    k: usize,
    range_attrs: Vec<usize>,
    point_attrs: Vec<usize>,
    two_ended: Vec<(usize, Value)>,
    /// Per-attribute domain sizes (schema metadata copied at construction).
    domain: Vec<Value>,
    state: MqState,
}

impl MqControl {
    /// Transition into phase 2 once the range walk is done: computes the
    /// pruning predicate P and one outer refinement frame per point
    /// attribute from the phase-1 skyline.
    fn enter_point_phase(&mut self, kb: &KnowledgeBase) {
        let phase1_skyline = kb.skyline_tuples();
        if phase1_skyline.is_empty() {
            // Empty database.
            self.state = MqState::Done;
            return;
        }
        // Pruning predicate P over the two-ended range attributes: by the
        // range-domination property every missing skyline tuple is
        // range-dominated by some phase-1 skyline tuple.
        let p_preds: Vec<Predicate> = self
            .two_ended
            .iter()
            .filter_map(|&(r, _)| {
                let min_v = phase1_skyline
                    .iter()
                    .map(|t| t.values[r])
                    .min()
                    .expect("phase-1 skyline is non-empty");
                (min_v > 0).then_some(Predicate::ge(r, min_v))
            })
            .collect();
        // One outer frame per point attribute, pushed in reverse so the
        // first attribute sits on top of the stack (sequential order).
        let mut frames = Vec::new();
        for &bi in self.point_attrs.iter().rev() {
            let max_v = phase1_skyline
                .iter()
                .map(|t| t.values[bi])
                .max()
                .expect("phase-1 skyline is non-empty");
            if max_v == 0 {
                continue;
            }
            let others: Vec<usize> = self
                .point_attrs
                .iter()
                .copied()
                .filter(|&a| a != bi)
                .collect();
            frames.push(MqFrame::Values {
                base: Query::new(p_preds.clone()),
                attr: bi,
                rest: others,
                next_v: 0,
                bound: max_v,
            });
        }
        self.state = MqState::Point {
            frames,
            leaves_done: HashSet::new(),
        };
        self.normalize();
    }

    /// Pops exhausted refinement frames; `Done` once the stack drains.
    fn normalize(&mut self) {
        if let MqState::Point { frames, .. } = &mut self.state {
            while frames.last().is_some_and(MqFrame::exhausted) {
                frames.pop();
            }
            if frames.is_empty() {
                self.state = MqState::Done;
            }
        }
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let k = r.usize()?;
        let range_attrs = codec::read_usize_vec(r)?;
        let point_attrs = codec::read_usize_vec(r)?;
        let n = r.usize()?;
        let mut two_ended = Vec::new();
        for _ in 0..n {
            let attr = r.usize()?;
            let domain = r.u32()?;
            two_ended.push((attr, domain));
        }
        let domain = codec::read_u32_vec(r)?;
        let state = match r.u8()? {
            0 => MqState::RangeRq(RqTreeWalk::decode(r)?),
            1 => MqState::RangeSq(SqTreeWalk::decode(r)?),
            2 => {
                let n = r.usize()?;
                let mut frames = Vec::new();
                for _ in 0..n {
                    frames.push(MqFrame::decode(r)?);
                }
                let n = r.usize()?;
                let mut leaves_done = HashSet::new();
                for _ in 0..n {
                    leaves_done.insert(codec::read_predicates(r)?);
                }
                MqState::Point {
                    frames,
                    leaves_done,
                }
            }
            3 => MqState::Done,
            tag => return Err(CodecError::BadTag { tag }),
        };
        Ok(MqControl {
            k,
            range_attrs,
            point_attrs,
            two_ended,
            domain,
            state,
        })
    }
}

/// The leaf sub-machine for a fully pinned subspace rooted at `base`.
fn leaf_frame(
    base: &Query,
    two_ended: &[(usize, Value)],
    range_attrs: &[usize],
    k: usize,
) -> MqFrame {
    if two_ended.len() == range_attrs.len() {
        // All range attributes support two-ended ranges: crawl every
        // tuple of the leaf subspace.
        MqFrame::CrawlLeaf(RegionCrawl::new(
            base.predicates().to_vec(),
            two_ended.to_vec(),
            k,
        ))
    } else {
        MqFrame::TreeLeaf(SqTreeWalk::new(base.clone(), range_attrs.to_vec(), k))
    }
}

impl MachineControl for MqControl {
    fn name(&self) -> &str {
        "MQ-DB-SKY"
    }

    fn done(&self) -> bool {
        matches!(self.state, MqState::Done)
    }

    fn plan_into(&self, kb: &KnowledgeBase, limit: usize, out: &mut Vec<Query>) {
        match &self.state {
            MqState::RangeRq(walk) => walk.plan_into(kb, out),
            MqState::RangeSq(walk) => walk.plan_into(limit, out),
            MqState::Point { frames, .. } => match frames.last() {
                Some(MqFrame::Values {
                    base, attr, next_v, ..
                }) => out.push(base.and(Predicate::eq(*attr, *next_v))),
                Some(MqFrame::CrawlLeaf(crawl)) => crawl.plan_into(out),
                Some(MqFrame::TreeLeaf(walk)) => walk.plan_into(limit, out),
                None => {}
            },
            MqState::Done => {}
        }
    }

    fn plan_groups_into(&self, limit: usize, out: &mut Vec<skyweb_hidden_db::PrefixGroup>) {
        // Only the SQ-tree states yield multi-query plans with known
        // sibling structure; every other state is single-query (the engine
        // treats an unannotated plan identically).
        match &self.state {
            MqState::RangeSq(walk) => walk.plan_groups_into(limit, out),
            MqState::Point { frames, .. } => {
                if let Some(MqFrame::TreeLeaf(walk)) = frames.last() {
                    walk.plan_groups_into(limit, out);
                }
            }
            _ => {}
        }
    }

    fn on_response(&mut self, kb: &mut KnowledgeBase, issued: u64, resp: &QueryResponse) {
        match &mut self.state {
            MqState::RangeRq(walk) => {
                walk.on_response(kb, issued, resp);
                if walk.done() {
                    self.enter_point_phase(kb);
                }
            }
            MqState::RangeSq(walk) => {
                walk.on_response(kb, issued, resp);
                if walk.done() {
                    self.enter_point_phase(kb);
                }
            }
            MqState::Point {
                frames,
                leaves_done,
            } => {
                let top = frames
                    .last_mut()
                    .expect("a response arrived without a pending frame");
                let pushed: Option<MqFrame> = match top {
                    MqFrame::Values {
                        base,
                        attr,
                        rest,
                        next_v,
                        ..
                    } => {
                        let q = base.and(Predicate::eq(*attr, *next_v));
                        kb.ingest(&resp.tuples);
                        kb.record(issued);
                        *next_v += 1;
                        if resp.tuples.len() == self.k {
                            // Still possibly truncated: keep pinning point
                            // attributes, or open the leaf subspace once all
                            // are pinned (deduplicated — distinct outer
                            // attribute orders reach the same leaf).
                            if let Some((&attr, deeper)) = rest.split_first() {
                                Some(MqFrame::Values {
                                    base: q,
                                    attr,
                                    rest: deeper.to_vec(),
                                    next_v: 0,
                                    bound: self.domain[attr],
                                })
                            } else {
                                let mut key: Vec<Predicate> = q.predicates().to_vec();
                                key.sort_by_key(|p| (p.attr, p.value, p.op as u8));
                                leaves_done.insert(key).then(|| {
                                    leaf_frame(&q, &self.two_ended, &self.range_attrs, self.k)
                                })
                            }
                        } else {
                            None
                        }
                    }
                    MqFrame::CrawlLeaf(crawl) => {
                        crawl.on_response(kb, issued, resp);
                        None
                    }
                    MqFrame::TreeLeaf(walk) => {
                        walk.on_response(kb, issued, resp);
                        None
                    }
                };
                if let Some(frame) = pushed {
                    frames.push(frame);
                }
                self.normalize();
            }
            MqState::Done => unreachable!("no response expected after MQ finished"),
        }
    }

    fn codec_tag(&self) -> Option<u8> {
        Some(codec::TAG_MQ)
    }

    fn encode_control(&self, out: &mut Vec<u8>) {
        codec::put_usize(out, self.k);
        codec::put_usize_slice(out, &self.range_attrs);
        codec::put_usize_slice(out, &self.point_attrs);
        codec::put_usize(out, self.two_ended.len());
        for &(attr, domain) in &self.two_ended {
            codec::put_usize(out, attr);
            codec::put_u32(out, domain);
        }
        codec::put_u32_slice(out, &self.domain);
        match &self.state {
            MqState::RangeRq(walk) => {
                codec::put_u8(out, 0);
                walk.encode(out);
            }
            MqState::RangeSq(walk) => {
                codec::put_u8(out, 1);
                walk.encode(out);
            }
            MqState::Point {
                frames,
                leaves_done,
            } => {
                codec::put_u8(out, 2);
                codec::put_usize(out, frames.len());
                for f in frames {
                    f.encode(out);
                }
                // A hash set has no stable iteration order; write the leaf
                // keys sorted so re-encoding a decoded checkpoint
                // reproduces the original bytes.
                let mut keys: Vec<&Vec<Predicate>> = leaves_done.iter().collect();
                keys.sort_by(|a, b| {
                    let ka = a.iter().map(|p| (p.attr, p.value, p.op as u8));
                    let kb = b.iter().map(|p| (p.attr, p.value, p.op as u8));
                    ka.cmp(kb)
                });
                codec::put_usize(out, keys.len());
                for key in keys {
                    codec::put_predicates(out, key);
                }
            }
            MqState::Done => codec::put_u8(out, 3),
        }
    }
}

impl Discoverer for MqDbSky {
    fn name(&self) -> &str {
        "MQ-DB-SKY"
    }

    fn budget(&self) -> Option<u64> {
        self.budget
    }

    fn machine(&self, db: &HiddenDb) -> Result<Box<dyn DiscoveryMachine>, DiscoveryError> {
        let schema = db.schema();
        let range_attrs: Vec<usize> = schema.range_attrs();
        let point_attrs: Vec<usize> = schema.point_attrs();

        // Degenerate mixtures reduce to the specialised algorithms.
        if point_attrs.is_empty() {
            let all_two_ended = range_attrs
                .iter()
                .all(|&a| schema.attr(a).interface == InterfaceType::Rq);
            return if all_two_ended {
                RqDbSky::new().machine(db)
            } else {
                SqDbSky::new().machine(db)
            };
        }
        if range_attrs.is_empty() {
            return PqDbSky::new().machine(db);
        }
        Ok(Box::new(self.build_machine(db)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_hidden_db::{SchemaBuilder, SumRanker, Tuple};
    use skyweb_skyline::{bnl_skyline, same_ids};

    fn mixed_schema(
        rq: usize,
        sq: usize,
        pq: usize,
        range_domain: u32,
        point_domain: u32,
    ) -> skyweb_hidden_db::Schema {
        let mut b = SchemaBuilder::new();
        for i in 0..rq {
            b = b.ranking(format!("rq{i}"), range_domain, InterfaceType::Rq);
        }
        for i in 0..sq {
            b = b.ranking(format!("sq{i}"), range_domain, InterfaceType::Sq);
        }
        for i in 0..pq {
            b = b.ranking(format!("pq{i}"), point_domain, InterfaceType::Pq);
        }
        b.build()
    }

    /// Duplicate-free mixed-schema test tuples (range attributes first, then
    /// point attributes), realising the general positioning assumption.
    fn pseudo_random_tuples(
        n: u64,
        range_attrs: usize,
        point_attrs: usize,
        range_domain: u32,
        point_domain: u32,
        salt: u64,
    ) -> Vec<Tuple> {
        let mut domains = vec![range_domain; range_attrs];
        domains.extend(std::iter::repeat_n(point_domain, point_attrs));
        skyweb_datagen::synthetic::distinct_cells(&domains, n as usize, salt)
    }

    #[test]
    fn mixed_rq_and_pq_completeness() {
        let schema = mixed_schema(2, 0, 2, 40, 5);
        let tuples = pseudo_random_tuples(250, 2, 2, 40, 5, 0);
        let db = HiddenDb::new(schema, tuples, Box::new(SumRanker), 3);
        let result = MqDbSky::new().discover(&db).unwrap();
        assert!(result.complete);
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
    }

    #[test]
    fn mixed_sq_and_pq_completeness() {
        // One-ended ranges only: the weaker pruning path.
        let schema = mixed_schema(0, 2, 1, 30, 4);
        let tuples = pseudo_random_tuples(150, 2, 1, 30, 4, 5);
        let db = HiddenDb::new(schema, tuples, Box::new(SumRanker), 3);
        let result = MqDbSky::new().discover(&db).unwrap();
        assert!(result.complete);
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
    }

    #[test]
    fn mixed_rq_sq_and_pq_completeness() {
        let schema = mixed_schema(1, 1, 2, 25, 4);
        let tuples = pseudo_random_tuples(200, 2, 2, 25, 4, 11);
        let db = HiddenDb::new(schema, tuples, Box::new(SumRanker), 2);
        let result = MqDbSky::new().discover(&db).unwrap();
        assert!(result.complete);
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
    }

    #[test]
    fn range_only_reduces_to_rq_db_sky() {
        let schema = mixed_schema(3, 0, 0, 30, 4);
        let tuples = pseudo_random_tuples(120, 3, 0, 30, 4, 2);
        let db = HiddenDb::new(schema, tuples, Box::new(SumRanker), 2);
        let result = MqDbSky::new().discover(&db).unwrap();
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
    }

    #[test]
    fn point_only_reduces_to_pq_db_sky() {
        let schema = mixed_schema(0, 0, 3, 30, 6);
        let tuples = pseudo_random_tuples(120, 0, 3, 30, 6, 4);
        let db = HiddenDb::new(schema, tuples, Box::new(SumRanker), 2);
        let result = MqDbSky::new().discover(&db).unwrap();
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
    }

    #[test]
    fn ignoring_point_attributes_would_miss_tuples() {
        // Construct a database where a skyline tuple is range-dominated: it
        // loses on the range attribute but wins on the point attribute.
        let schema = mixed_schema(1, 0, 1, 10, 4);
        let tuples = vec![
            Tuple::new(0, vec![1, 3]), // best range value
            Tuple::new(1, vec![5, 0]), // range-dominated, wins on the PQ attribute
            Tuple::new(2, vec![6, 2]), // dominated by nothing? loses to 0 on range, to 1 on point
        ];
        let db = HiddenDb::new(schema, tuples, Box::new(SumRanker), 1);
        let result = MqDbSky::new().discover(&db).unwrap();
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
        assert!(result.skyline.iter().any(|t| t.id == 1));
    }

    #[test]
    fn budget_exhaustion_is_graceful() {
        let schema = mixed_schema(2, 0, 2, 40, 5);
        let tuples = pseudo_random_tuples(250, 2, 2, 40, 5, 0);
        let db = HiddenDb::new(schema, tuples, Box::new(SumRanker), 3);
        let result = MqDbSky::with_budget(1).discover(&db).unwrap();
        assert!(!result.complete);
        assert!(result.query_cost <= 1);
    }

    #[test]
    fn empty_database() {
        let schema = mixed_schema(1, 0, 1, 10, 4);
        let db = HiddenDb::new(schema, vec![], Box::new(SumRanker), 1);
        let result = MqDbSky::new().discover(&db).unwrap();
        assert!(result.complete);
        assert!(result.skyline.is_empty());
    }
}
