//! MQ-DB-SKY (Algorithm 6 of the paper): skyline discovery over a search
//! interface with an arbitrary **mixture** of one-ended range (SQ),
//! two-ended range (RQ) and point (PQ) attributes.
//!
//! The algorithm runs in two phases:
//!
//! 1. **Range phase** — run the SQ/RQ query-tree over the range attributes
//!    only, leaving the point attributes unconstrained. Every tuple returned
//!    as a top answer here is a true skyline tuple, but tuples that are
//!    dominated *on the range attributes* by another tuple (while beating it
//!    on a point attribute) are missed.
//! 2. **Point phase** (the `MIXED-DB-SKY` subroutine) — by the
//!    *range-domination property*, every missing skyline tuple is dominated
//!    on all range attributes by some phase-1 skyline tuple and beats it on
//!    at least one point attribute. The search space is therefore pruned to
//!    `A_r ≥ min_{t ∈ S}(t[A_r])` on every two-ended range attribute, and
//!    the point attributes are explored value by value: for each point
//!    attribute `B_i` and each value `v` better than the worst value seen on
//!    the phase-1 skyline, the query `P ∧ B_i = v` is issued; overflowing
//!    answers are refined by recursively fixing the remaining point
//!    attributes (stopping as soon as an answer is empty) and, once all
//!    point attributes are pinned, by crawling the remaining range subspace.
//!
//! When the database has only range attributes MQ-DB-SKY reduces to
//! SQ-/RQ-DB-SKY; with only point attributes it reduces to PQ-DB-SKY.

use std::collections::HashSet;

use skyweb_hidden_db::{HiddenDb, InterfaceType, Predicate, Query, Value};

use crate::baseline::crawl_region;
use crate::{
    Client, Discoverer, DiscoveryError, DiscoveryResult, KnowledgeBase, PqDbSky, RqDbSky, SqDbSky,
};

/// MQ-DB-SKY: skyline discovery for any mixture of SQ, RQ and PQ ranking
/// attributes.
#[derive(Debug, Clone, Default)]
pub struct MqDbSky {
    budget: Option<u64>,
}

impl MqDbSky {
    /// Creates the algorithm with no client-side query budget.
    pub fn new() -> Self {
        MqDbSky::default()
    }

    /// Limits the number of queries the algorithm may issue (anytime mode).
    pub fn with_budget(budget: u64) -> Self {
        MqDbSky {
            budget: Some(budget),
        }
    }

    /// Recursively pins the remaining point attributes of an overflowing
    /// subspace, stopping early on empty answers; once every point attribute
    /// is pinned, retrieves the remaining skyline candidates of the leaf
    /// subspace — by crawling it over the two-ended range attributes when
    /// every range attribute is two-ended, or by running an SQ-DB-SKY
    /// subtree rooted at the leaf query otherwise.
    #[allow(clippy::too_many_arguments)]
    fn refine_point_subspace(
        client: &mut Client<'_>,
        collector: &mut KnowledgeBase,
        base: &Query,
        remaining_points: &[usize],
        range_attrs: &[usize],
        two_ended: &[(usize, Value)],
        leaves_done: &mut HashSet<Vec<Predicate>>,
        db: &HiddenDb,
    ) -> Result<bool, DiscoveryError> {
        let k = db.k();
        let Some((&attr, rest)) = remaining_points.split_first() else {
            let mut key: Vec<Predicate> = base.predicates().to_vec();
            key.sort_by_key(|p| (p.attr, p.value, p.op as u8));
            if !leaves_done.insert(key) {
                return Ok(true);
            }
            if two_ended.len() == range_attrs.len() {
                // All range attributes support two-ended ranges: crawl every
                // tuple of the leaf subspace.
                return crawl_region(client, collector, base.predicates(), two_ended);
            }
            // Some range attributes are one-ended: discover the leaf
            // subspace's skyline with an SQ-DB-SKY subtree (sufficient,
            // because within the leaf all point attributes are pinned and
            // dominance reduces to the range attributes).
            return SqDbSky::run_tree(client, collector, range_attrs, base.clone(), k);
        };

        for v in 0..db.schema().attr(attr).domain_size {
            let q = base.and(Predicate::eq(attr, v));
            let Some(resp) = client.query(&q)? else {
                return Ok(false);
            };
            collector.ingest(&resp.tuples);
            collector.record(client.issued());
            if resp.tuples.is_empty() {
                // Empty answer: nothing below this prefix, stop partitioning.
                continue;
            }
            if resp.tuples.len() == k {
                // Still possibly truncated: keep pinning point attributes.
                if !Self::refine_point_subspace(
                    client,
                    collector,
                    &q,
                    rest,
                    range_attrs,
                    two_ended,
                    leaves_done,
                    db,
                )? {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }
}

impl Discoverer for MqDbSky {
    fn name(&self) -> &str {
        "MQ-DB-SKY"
    }

    fn discover(&self, db: &HiddenDb) -> Result<DiscoveryResult, DiscoveryError> {
        let schema = db.schema();
        let attrs: Vec<usize> = schema.ranking_attrs().to_vec();
        let range_attrs: Vec<usize> = schema.range_attrs();
        let point_attrs: Vec<usize> = schema.point_attrs();

        // Degenerate mixtures reduce to the specialised algorithms.
        if point_attrs.is_empty() {
            let all_two_ended = range_attrs
                .iter()
                .all(|&a| schema.attr(a).interface == InterfaceType::Rq);
            return if all_two_ended {
                let mut alg = RqDbSky::new();
                if let Some(b) = self.budget {
                    alg = RqDbSky::with_budget(b);
                }
                alg.discover(db)
            } else {
                let mut alg = SqDbSky::new();
                if let Some(b) = self.budget {
                    alg = SqDbSky::with_budget(b);
                }
                alg.discover(db)
            };
        }
        if range_attrs.is_empty() {
            let mut alg = PqDbSky::new();
            if let Some(b) = self.budget {
                alg = PqDbSky::with_budget(b);
            }
            return alg.discover(db);
        }

        let two_ended: Vec<(usize, Value)> = schema
            .two_ended_attrs()
            .into_iter()
            .map(|a| (a, schema.attr(a).domain_size))
            .collect();
        let all_range_two_ended = two_ended.len() == range_attrs.len();
        let k = db.k();

        let mut client = Client::new(db, self.budget);
        let mut collector = KnowledgeBase::new(attrs);

        // ----- Phase 1: range-only discovery (point attributes left as *).
        let completed = if all_range_two_ended {
            RqDbSky::run_tree(
                &mut client,
                &mut collector,
                &range_attrs,
                Query::select_all(),
                k,
            )?
        } else {
            SqDbSky::run_tree(
                &mut client,
                &mut collector,
                &range_attrs,
                Query::select_all(),
                k,
            )?
        };
        if !completed {
            return Ok(collector.finish(client.issued(), false));
        }
        let phase1_skyline = collector.skyline_tuples();
        if phase1_skyline.is_empty() {
            // Empty database.
            return Ok(collector.finish(client.issued(), true));
        }

        // ----- Phase 2: find the range-dominated skyline tuples.
        // Pruning predicate P over the two-ended range attributes.
        let p_preds: Vec<Predicate> = two_ended
            .iter()
            .filter_map(|&(r, _)| {
                let min_v = phase1_skyline
                    .iter()
                    .map(|t| t.values[r])
                    .min()
                    .expect("phase-1 skyline is non-empty");
                (min_v > 0).then_some(Predicate::ge(r, min_v))
            })
            .collect();

        let mut leaves_done: HashSet<Vec<Predicate>> = HashSet::new();
        for &bi in &point_attrs {
            let max_v = phase1_skyline
                .iter()
                .map(|t| t.values[bi])
                .max()
                .expect("phase-1 skyline is non-empty");
            let others: Vec<usize> = point_attrs.iter().copied().filter(|&a| a != bi).collect();
            for v in 0..max_v {
                let q = Query::new(p_preds.clone()).and(Predicate::eq(bi, v));
                let Some(resp) = client.query(&q)? else {
                    return Ok(collector.finish(client.issued(), false));
                };
                collector.ingest(&resp.tuples);
                collector.record(client.issued());
                if resp.tuples.len() == k
                    && !Self::refine_point_subspace(
                        &mut client,
                        &mut collector,
                        &q,
                        &others,
                        &range_attrs,
                        &two_ended,
                        &mut leaves_done,
                        db,
                    )?
                {
                    return Ok(collector.finish(client.issued(), false));
                }
            }
        }

        Ok(collector.finish(client.issued(), true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_hidden_db::{SchemaBuilder, SumRanker, Tuple};
    use skyweb_skyline::{bnl_skyline, same_ids};

    fn mixed_schema(
        rq: usize,
        sq: usize,
        pq: usize,
        range_domain: u32,
        point_domain: u32,
    ) -> skyweb_hidden_db::Schema {
        let mut b = SchemaBuilder::new();
        for i in 0..rq {
            b = b.ranking(format!("rq{i}"), range_domain, InterfaceType::Rq);
        }
        for i in 0..sq {
            b = b.ranking(format!("sq{i}"), range_domain, InterfaceType::Sq);
        }
        for i in 0..pq {
            b = b.ranking(format!("pq{i}"), point_domain, InterfaceType::Pq);
        }
        b.build()
    }

    /// Duplicate-free mixed-schema test tuples (range attributes first, then
    /// point attributes), realising the general positioning assumption.
    fn pseudo_random_tuples(
        n: u64,
        range_attrs: usize,
        point_attrs: usize,
        range_domain: u32,
        point_domain: u32,
        salt: u64,
    ) -> Vec<Tuple> {
        let mut domains = vec![range_domain; range_attrs];
        domains.extend(std::iter::repeat_n(point_domain, point_attrs));
        skyweb_datagen::synthetic::distinct_cells(&domains, n as usize, salt)
    }

    #[test]
    fn mixed_rq_and_pq_completeness() {
        let schema = mixed_schema(2, 0, 2, 40, 5);
        let tuples = pseudo_random_tuples(250, 2, 2, 40, 5, 0);
        let db = HiddenDb::new(schema, tuples, Box::new(SumRanker), 3);
        let result = MqDbSky::new().discover(&db).unwrap();
        assert!(result.complete);
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
    }

    #[test]
    fn mixed_sq_and_pq_completeness() {
        // One-ended ranges only: the weaker pruning path.
        let schema = mixed_schema(0, 2, 1, 30, 4);
        let tuples = pseudo_random_tuples(150, 2, 1, 30, 4, 5);
        let db = HiddenDb::new(schema, tuples, Box::new(SumRanker), 3);
        let result = MqDbSky::new().discover(&db).unwrap();
        assert!(result.complete);
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
    }

    #[test]
    fn mixed_rq_sq_and_pq_completeness() {
        let schema = mixed_schema(1, 1, 2, 25, 4);
        let tuples = pseudo_random_tuples(200, 2, 2, 25, 4, 11);
        let db = HiddenDb::new(schema, tuples, Box::new(SumRanker), 2);
        let result = MqDbSky::new().discover(&db).unwrap();
        assert!(result.complete);
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
    }

    #[test]
    fn range_only_reduces_to_rq_db_sky() {
        let schema = mixed_schema(3, 0, 0, 30, 4);
        let tuples = pseudo_random_tuples(120, 3, 0, 30, 4, 2);
        let db = HiddenDb::new(schema, tuples, Box::new(SumRanker), 2);
        let result = MqDbSky::new().discover(&db).unwrap();
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
    }

    #[test]
    fn point_only_reduces_to_pq_db_sky() {
        let schema = mixed_schema(0, 0, 3, 30, 6);
        let tuples = pseudo_random_tuples(120, 0, 3, 30, 6, 4);
        let db = HiddenDb::new(schema, tuples, Box::new(SumRanker), 2);
        let result = MqDbSky::new().discover(&db).unwrap();
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
    }

    #[test]
    fn ignoring_point_attributes_would_miss_tuples() {
        // Construct a database where a skyline tuple is range-dominated: it
        // loses on the range attribute but wins on the point attribute.
        let schema = mixed_schema(1, 0, 1, 10, 4);
        let tuples = vec![
            Tuple::new(0, vec![1, 3]), // best range value
            Tuple::new(1, vec![5, 0]), // range-dominated, wins on the PQ attribute
            Tuple::new(2, vec![6, 2]), // dominated by nothing? loses to 0 on range, to 1 on point
        ];
        let db = HiddenDb::new(schema, tuples, Box::new(SumRanker), 1);
        let result = MqDbSky::new().discover(&db).unwrap();
        let truth = bnl_skyline(db.oracle_tuples().as_slice(), db.schema());
        assert!(same_ids(&result.skyline, &truth));
        assert!(result.skyline.iter().any(|t| t.id == 1));
    }

    #[test]
    fn budget_exhaustion_is_graceful() {
        let schema = mixed_schema(2, 0, 2, 40, 5);
        let tuples = pseudo_random_tuples(250, 2, 2, 40, 5, 0);
        let db = HiddenDb::new(schema, tuples, Box::new(SumRanker), 3);
        let result = MqDbSky::with_budget(1).discover(&db).unwrap();
        assert!(!result.complete);
        assert!(result.query_cost <= 1);
    }

    #[test]
    fn empty_database() {
        let schema = mixed_schema(1, 0, 1, 10, 4);
        let db = HiddenDb::new(schema, vec![], Box::new(SumRanker), 1);
        let result = MqDbSky::new().discover(&db).unwrap();
        assert!(result.complete);
        assert!(result.skyline.is_empty());
    }
}
