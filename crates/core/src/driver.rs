//! The driving layer of the sans-io API: executes a [`DiscoveryMachine`]
//! against a live [`Session`], enforcing budgets and deadlines, pipelining
//! multi-query plans through the session's batch interface, and supporting
//! pause/resume through [`Checkpoint`]s.
//!
//! The driver is the only place where algorithm state meets I/O. It holds
//! the machine (pure state) and a session (the connection); pausing drops
//! the session and hands the machine back as a checkpoint that can be
//! resumed later — against the same database or a failed-over replica with
//! identical content.

use std::time::{Duration, Instant};

use skyweb_hidden_db::{
    FaultPlan, FaultStats, FaultyOracle, HiddenDb, PrefixGroup, Query, QueryError, QueryResponse,
};

use crate::codec::{self, CodecError};
use crate::machine::{AnytimeSnapshot, DiscoveryMachine, QueryPlan, RunProgress};
use crate::{DiscoveryError, DiscoveryResult};

/// Mixes a seed and a counter into 64 well-distributed bits (SplitMix64
/// finalizer) — the deterministic jitter source for retry backoff.
fn mix(seed: u64, n: u64) -> u64 {
    let mut z = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Default number of queries the driver issues per plan round-trip.
///
/// Machines with data-independent frontiers (SQ-DB-SKY, the point-space
/// crawl) yield plans of this size and amortize the per-query client
/// overhead; machines with adaptive traversals yield single-query plans
/// regardless of the limit.
pub const DEFAULT_MAX_BATCH: usize = 64;

/// How a [`DiscoveryDriver`] reacts to *transient* query failures
/// ([`QueryError::is_transient`]): unavailability, throttle bursts,
/// timeouts and mid-plan connection drops.
///
/// Any answered prefix of a faulted plan is fed to the machine immediately
/// (the budget accounts for it exactly once); only the unanswered suffix is
/// retried, after a deterministic exponential backoff with seeded jitter.
/// The backoff is *simulated* — accumulated in
/// [`DiscoveryDriver::total_backoff_ms`], never slept — so resilience tests
/// run at full speed while the accounting still reflects what a live client
/// would have waited.
///
/// When the policy gives up (attempts exhausted, retry budget spent, or the
/// wall deadline passed), the driver halts the machine and reports
/// [`StepOutcome::Degraded`]: the anytime partial skyline stays available
/// through [`DiscoveryDriver::finish`] instead of the run aborting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts per plan suffix (≥ 1). An attempt that answers at
    /// least one query resets the counter: only *consecutive* dead attempts
    /// count toward giving up.
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated milliseconds; doubles
    /// on each consecutive failed attempt.
    pub base_backoff_ms: u64,
    /// Cap on a single backoff interval (before jitter).
    pub max_backoff_ms: u64,
    /// Client-side per-query timeout handed to the fault layer: injected
    /// latency spikes above this surface as [`QueryError::Timeout`].
    /// `None` keeps the fault plan's own timeout.
    pub per_query_timeout_ms: Option<u64>,
    /// Total retries allowed across the whole run (`None` = unlimited).
    pub retry_budget: Option<u64>,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 10,
            max_backoff_ms: 1_000,
            per_query_timeout_ms: None,
            retry_budget: None,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The default policy: 4 attempts, 10 ms base backoff doubling to a
    /// 1 s cap, unlimited retry budget.
    pub fn new() -> Self {
        RetryPolicy::default()
    }

    /// Sets the per-suffix attempt cap (builder style, clamped to ≥ 1).
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Sets the backoff shape (builder style).
    pub fn with_backoff_ms(mut self, base: u64, max: u64) -> Self {
        self.base_backoff_ms = base;
        self.max_backoff_ms = max.max(base);
        self
    }

    /// Sets the per-query timeout override (builder style).
    pub fn with_per_query_timeout_ms(mut self, timeout_ms: Option<u64>) -> Self {
        self.per_query_timeout_ms = timeout_ms;
        self
    }

    /// Sets the run-wide retry budget (builder style).
    pub fn with_retry_budget(mut self, retry_budget: Option<u64>) -> Self {
        self.retry_budget = retry_budget;
        self
    }

    /// Sets the jitter seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The backoff for consecutive failed attempt number `attempt` (1-based)
    /// at run-wide retry number `n`: exponential with a deterministic
    /// seeded jitter of up to 25% of the interval.
    fn backoff_ms(&self, attempt: u32, n: u64) -> u64 {
        let interval = self
            .base_backoff_ms
            .checked_shl(attempt.saturating_sub(1).min(32))
            .unwrap_or(u64::MAX)
            .min(self.max_backoff_ms);
        interval + mix(self.seed ^ 0x00BA_C0FF, n) % (interval / 4 + 1)
    }
}

/// How a [`DiscoveryDriver`] executes a machine.
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// Client-side query budget: the run is halted (anytime result) once
    /// this many queries were answered, counted across pause/resume cycles
    /// via [`DiscoveryMachine::queries_issued`].
    pub budget: Option<u64>,
    /// Upper bound on the number of queries issued per plan round-trip
    /// (≥ 1). `1` forces fully sequential execution.
    pub max_batch: usize,
    /// Wall-clock deadline measured from driver construction: once elapsed,
    /// the run is halted at the next plan boundary (anytime result).
    pub max_wall: Option<Duration>,
    /// How to react to transient query failures. `None` (the default)
    /// propagates them as errors, preserving the historical behavior.
    pub retry: Option<RetryPolicy>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            budget: None,
            max_batch: DEFAULT_MAX_BATCH,
            max_wall: None,
            retry: None,
        }
    }
}

impl DriverConfig {
    /// Config with no budget, no deadline and default batching.
    pub fn new() -> Self {
        DriverConfig::default()
    }

    /// Sets the query budget (builder style).
    pub fn with_budget(mut self, budget: Option<u64>) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the per-round batch limit (builder style, clamped to ≥ 1).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the wall-clock deadline (builder style).
    pub fn with_max_wall(mut self, max_wall: Option<Duration>) -> Self {
        self.max_wall = max_wall;
        self
    }

    /// Sets the transient-failure retry policy (builder style).
    pub fn with_retry(mut self, retry: Option<RetryPolicy>) -> Self {
        self.retry = retry;
        self
    }
}

/// The query transport a [`DiscoveryDriver`] executes plans through.
///
/// This is the grouped-plan surface of
/// [`Session::run_plan_grouped`](skyweb_hidden_db::Session::run_plan_grouped),
/// abstracted so the same driver can run a machine against an in-process
/// database (via [`FaultyOracle`]) or a remote one reached over TCP
/// (`skyweb-net`'s `RemoteOracle`) — all eight machines are transport-blind.
pub trait PlanOracle: std::fmt::Debug {
    /// Executes `queries` (with the optional sibling-group annotation) and
    /// returns the answered prefix plus the error that cut the plan short,
    /// if any. Transient errors ([`QueryError::is_transient`]) are the
    /// driver's cue to retry the unanswered suffix.
    fn run_plan_grouped(
        &mut self,
        queries: &[Query],
        groups: Option<&[PrefixGroup]>,
    ) -> (Vec<QueryResponse>, Option<QueryError>);

    /// Fault-injection accounting, for transports that layer deterministic
    /// chaos over the database. The default is all-zeros: real transports
    /// have real faults, not injected ones.
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }
}

impl PlanOracle for FaultyOracle<'_> {
    fn run_plan_grouped(
        &mut self,
        queries: &[Query],
        groups: Option<&[PrefixGroup]>,
    ) -> (Vec<QueryResponse>, Option<QueryError>) {
        FaultyOracle::run_plan_grouped(self, queries, groups)
    }

    fn fault_stats(&self) -> FaultStats {
        self.stats()
    }
}

/// Outcome of one [`DiscoveryDriver::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// `queries` responses were fed to the machine; the run continues.
    Progressed {
        /// Number of queries answered in this round-trip.
        queries: usize,
    },
    /// The machine needs no further stepping: it finished, or it was halted
    /// by the budget, the deadline or the server's rate limit.
    Finished,
    /// The retry policy gave up on a transient failure: the machine was
    /// halted and the anytime partial result is available through
    /// [`DiscoveryDriver::finish`]; the terminal error through
    /// [`DiscoveryDriver::last_error`].
    Degraded {
        /// Queries answered in this round-trip before giving up.
        queries: usize,
    },
}

/// A paused discovery run: the machine's complete state, detached from any
/// database session.
///
/// The checkpoint owns everything the run has learned (knowledge base,
/// trace, issued-query accounting) and borrows nothing, so it can be held
/// indefinitely, sent to another thread, or resumed against a different
/// [`HiddenDb`] handle with [`DiscoveryDriver::resume`].
#[derive(Debug)]
pub struct Checkpoint<M> {
    machine: M,
}

impl<M: DiscoveryMachine> Checkpoint<M> {
    /// Read access to the paused machine.
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Queries answered before the pause (budget accounting carries over).
    pub fn queries_issued(&self) -> u64 {
        self.machine.queries_issued()
    }

    /// Anytime snapshot of the paused run.
    pub fn snapshot(&self) -> AnytimeSnapshot {
        self.machine.snapshot()
    }

    /// Consumes the checkpoint into the raw machine.
    pub fn into_machine(self) -> M {
        self.machine
    }

    /// Serializes the checkpoint into the versioned binary format of
    /// [`crate::codec`] (magic, version, length prefix and checksum
    /// included), suitable for writing to disk and restoring — possibly in
    /// another process — with [`Checkpoint::from_bytes`].
    ///
    /// Fails with [`CodecError::Unsupported`] for machines that do not
    /// implement state encoding (custom [`crate::MachineControl`]s without
    /// a codec tag).
    pub fn to_bytes(&self) -> Result<Vec<u8>, CodecError> {
        let mut payload = Vec::new();
        if !self.machine.encode_state(&mut payload) {
            return Err(CodecError::Unsupported);
        }
        Ok(codec::seal(codec::KIND_CHECKPOINT, payload))
    }
}

impl Checkpoint<Box<dyn DiscoveryMachine>> {
    /// Restores a checkpoint serialized with [`Checkpoint::to_bytes`].
    ///
    /// The envelope is validated before any payload byte is interpreted:
    /// wrong magic, an unknown format version, a truncated or padded
    /// buffer, and any corrupted payload bit are all rejected with the
    /// corresponding [`CodecError`] — a corrupt checkpoint is never
    /// mis-resumed.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let payload = codec::open(bytes, codec::KIND_CHECKPOINT)?;
        let mut r = codec::Reader::new(payload);
        let machine = codec::decode_machine(&mut r)?;
        r.finish()?;
        Ok(Checkpoint { machine })
    }
}

/// Executes a [`DiscoveryMachine`] against a database session.
///
/// ```
/// use skyweb_core::{Discoverer, DiscoveryDriver, DriverConfig, SqDbSky};
/// use skyweb_hidden_db::{HiddenDb, InterfaceType, SchemaBuilder, Tuple};
///
/// let schema = SchemaBuilder::new()
///     .ranking("a", 10, InterfaceType::Sq)
///     .ranking("b", 10, InterfaceType::Sq)
///     .build();
/// let tuples = vec![Tuple::new(0, vec![5, 1]), Tuple::new(1, vec![1, 5])];
/// let db = HiddenDb::with_sum_ranking(schema, tuples, 1);
///
/// let machine = SqDbSky::new().machine(&db).unwrap();
/// let mut driver = DiscoveryDriver::new(&db, machine, DriverConfig::new());
/// // Stream anytime snapshots while stepping…
/// while let skyweb_core::StepOutcome::Progressed { .. } = driver.step().unwrap() {
///     let snap = driver.snapshot();
///     assert!(snap.queries <= db.queries_issued());
/// }
/// let result = driver.finish().unwrap();
/// assert!(result.complete);
/// ```
#[derive(Debug)]
pub struct DiscoveryDriver<'db, M = Box<dyn DiscoveryMachine>> {
    oracle: Box<dyn PlanOracle + Send + 'db>,
    machine: M,
    config: DriverConfig,
    started: Instant,
    /// Retries performed so far (counts against the policy's retry budget).
    retries: u64,
    /// Total simulated backoff accumulated by retries, in milliseconds.
    backoff_ms: u64,
    /// The transient error the retry policy gave up on, if any.
    last_error: Option<QueryError>,
}

impl<'db, M: DiscoveryMachine> DiscoveryDriver<'db, M> {
    /// Attaches `machine` to a fresh session of `db`. The deadline clock
    /// (if any) starts now.
    pub fn new(db: &'db HiddenDb, machine: M, config: DriverConfig) -> Self {
        DiscoveryDriver::with_faults(db, machine, config, FaultPlan::none())
    }

    /// Like [`DiscoveryDriver::new`], but routes every query through a
    /// deterministic fault-injection layer driven by `faults` (the chaos
    /// harness entry point). A per-query timeout on the retry policy
    /// overrides the fault plan's.
    pub fn with_faults(
        db: &'db HiddenDb,
        machine: M,
        config: DriverConfig,
        mut faults: FaultPlan,
    ) -> Self {
        if let Some(timeout) = config.retry.and_then(|p| p.per_query_timeout_ms) {
            faults.timeout_ms = Some(timeout);
        }
        DiscoveryDriver::with_oracle(FaultyOracle::new(db, faults), machine, config)
    }

    /// Attaches `machine` to an arbitrary [`PlanOracle`] transport — the
    /// entry point for remote execution (`skyweb-net` passes its
    /// `RemoteOracle` here). The deadline clock (if any) starts now.
    pub fn with_oracle(
        oracle: impl PlanOracle + Send + 'db,
        machine: M,
        config: DriverConfig,
    ) -> Self {
        DiscoveryDriver {
            oracle: Box::new(oracle),
            machine,
            config,
            started: Instant::now(),
            retries: 0,
            backoff_ms: 0,
            last_error: None,
        }
    }

    /// Resumes a paused run from `checkpoint` against `db`. Budget
    /// accounting continues from the checkpoint's issued-query count; the
    /// deadline clock (if any) restarts.
    ///
    /// Fault-injection and retry state are deliberately *not* part of a
    /// checkpoint: resuming resets the fault stream and the retry counters.
    /// Convergence is unaffected — faulted attempts never reach the
    /// database, so the restored run replays the same answered queries.
    pub fn resume(db: &'db HiddenDb, checkpoint: Checkpoint<M>, config: DriverConfig) -> Self {
        DiscoveryDriver::new(db, checkpoint.into_machine(), config)
    }

    /// Like [`DiscoveryDriver::resume`], with a fault plan (see
    /// [`DiscoveryDriver::with_faults`]).
    pub fn resume_with_faults(
        db: &'db HiddenDb,
        checkpoint: Checkpoint<M>,
        config: DriverConfig,
        faults: FaultPlan,
    ) -> Self {
        DiscoveryDriver::with_faults(db, checkpoint.into_machine(), config, faults)
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Allocation-free progress counters (what schedulers poll per step).
    pub fn progress(&self) -> RunProgress {
        self.machine.progress()
    }

    /// An anytime snapshot of the run (cheap; usable for streaming progress
    /// between steps).
    pub fn snapshot(&self) -> AnytimeSnapshot {
        self.machine.snapshot()
    }

    /// Pauses the run at the current plan boundary: drops the session and
    /// returns the machine's complete state as a [`Checkpoint`].
    pub fn pause(self) -> Checkpoint<M> {
        Checkpoint {
            machine: self.machine,
        }
    }

    /// Detaches and returns the machine (like [`DiscoveryDriver::pause`],
    /// without the checkpoint wrapper).
    pub fn into_machine(self) -> M {
        self.machine
    }

    /// Retries performed so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Total simulated backoff accumulated by retries, in milliseconds.
    pub fn total_backoff_ms(&self) -> u64 {
        self.backoff_ms
    }

    /// The transient error the retry policy gave up on (set exactly when a
    /// step reported [`StepOutcome::Degraded`]).
    pub fn last_error(&self) -> Option<&QueryError> {
        self.last_error.as_ref()
    }

    /// Fault-injection accounting of the underlying oracle (all zeros when
    /// the driver was built without faults, or over a real transport).
    pub fn fault_stats(&self) -> FaultStats {
        self.oracle.fault_stats()
    }

    /// Queries still allowed by the budget (`None` = unlimited).
    fn budget_remaining(&self) -> Option<u64> {
        self.config
            .budget
            .map(|b| b.saturating_sub(self.machine.queries_issued()))
    }

    /// `true` once the wall-clock deadline has passed.
    fn deadline_passed(&self) -> bool {
        self.config
            .max_wall
            .is_some_and(|limit| self.started.elapsed() >= limit)
    }

    /// Executes one plan round-trip: asks the machine for its next plan
    /// (bounded by the batch limit, the budget and the deadline), pipelines
    /// the queries through the session's batch interface, and resumes the
    /// machine with the responses.
    ///
    /// Budget, deadline and rate-limit exhaustion halt the machine and
    /// report [`StepOutcome::Finished`]; the partial anytime result stays
    /// available through [`DiscoveryDriver::finish`]. Transient failures
    /// are retried per the configured [`RetryPolicy`] (giving up degrades
    /// the run instead of aborting it); without a policy, and for any
    /// non-transient rejection, the error is propagated.
    pub fn step(&mut self) -> Result<StepOutcome, DiscoveryError> {
        if self.machine.is_finished() {
            return Ok(StepOutcome::Finished);
        }
        let limit = match self.budget_remaining() {
            Some(0) => {
                self.machine.halt();
                return Ok(StepOutcome::Finished);
            }
            Some(left) => (left.min(self.config.max_batch as u64)) as usize,
            None => self.config.max_batch,
        };
        if self.deadline_passed() {
            self.machine.halt();
            return Ok(StepOutcome::Finished);
        }
        let mut plan = self.machine.next_plan(limit);
        if plan.is_empty() {
            return Ok(StepOutcome::Finished);
        }
        if plan.len() > limit {
            // A control that ignores the limit must not overdraw the
            // budget: truncate defensively (dropping the sibling
            // annotation, which no longer covers the plan) so that feeding
            // an answered prefix mid-retry can never half-account a plan.
            let mut queries = plan.into_queries();
            queries.truncate(limit);
            plan = QueryPlan::new(queries);
        }
        // The plan's sibling annotation (when the machine provides one)
        // rides along so the engine's shared-prefix executor need not
        // rediscover the frontier's parent structure.
        let (responses, first_err) = self.oracle.run_plan_grouped(plan.queries(), plan.groups());
        let mut answered_total = responses.len();
        let mut remaining: Vec<Query> = plan.queries()[responses.len()..].to_vec();
        self.machine.resume(&responses);
        let mut err = first_err;
        let mut attempt: u32 = 0;
        loop {
            match err {
                None => {
                    return Ok(StepOutcome::Progressed {
                        queries: answered_total,
                    })
                }
                Some(QueryError::RateLimitExceeded { .. }) => {
                    self.machine.halt();
                    return Ok(StepOutcome::Finished);
                }
                Some(e) if e.is_transient() && self.config.retry.is_some() => {
                    let Some(policy) = self.config.retry else {
                        // Unreachable: the guard above checked is_some().
                        self.machine.halt();
                        return Ok(StepOutcome::Finished);
                    };
                    attempt += 1;
                    let give_up = attempt >= policy.max_attempts
                        || policy.retry_budget.is_some_and(|b| self.retries >= b)
                        || self.deadline_passed();
                    if give_up {
                        self.last_error = Some(e);
                        self.machine.halt();
                        return Ok(StepOutcome::Degraded {
                            queries: answered_total,
                        });
                    }
                    self.retries += 1;
                    self.backoff_ms += policy.backoff_ms(attempt, self.retries);
                    // Retry only the unanswered suffix; its answered prefix
                    // was already fed to the machine and counted exactly
                    // once against the budget. The engine re-factors shared
                    // prefixes itself, so no sibling hint is needed.
                    let (responses, next_err) = self.oracle.run_plan_grouped(&remaining, None);
                    if !responses.is_empty() {
                        // Progress: only consecutive dead attempts count.
                        attempt = 0;
                    }
                    answered_total += responses.len();
                    remaining.drain(..responses.len());
                    self.machine.resume(&responses);
                    err = next_err;
                }
                Some(e) => return Err(DiscoveryError::Query(e)),
            }
        }
    }

    /// Steps until the run finishes (or is halted by budget/deadline/rate
    /// limit), then returns the driver for result extraction.
    fn drive_to_end(&mut self) -> Result<(), DiscoveryError> {
        while let StepOutcome::Progressed { .. } = self.step()? {}
        Ok(())
    }

    /// Runs to completion and extracts the [`DiscoveryResult`].
    pub fn run(mut self) -> Result<DiscoveryResult, DiscoveryError> {
        self.drive_to_end()?;
        Ok(self.machine.take_result())
    }

    /// Runs to completion and hands the finished machine back (for
    /// machine-specific result accessors such as
    /// [`SkybandMachine::take_band_result`](crate::SkybandMachine::take_band_result)).
    pub fn run_into_machine(mut self) -> Result<M, DiscoveryError> {
        self.drive_to_end()?;
        Ok(self.machine)
    }

    /// Extracts the result of a finished (or halted) run, consuming the
    /// driver — equivalent to `self.into_machine().take_result()`.
    pub fn finish(mut self) -> Result<DiscoveryResult, DiscoveryError> {
        Ok(self.machine.take_result())
    }

    /// Extracts the result of a finished (or halted) run in place, leaving
    /// the machine empty (used by schedulers that keep the driver slot
    /// alive, e.g. [`crate::DiscoveryService`]).
    pub fn take_result(&mut self) -> DiscoveryResult {
        self.machine.take_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Discoverer;
    use skyweb_hidden_db::{InterfaceType, Query, RateLimit, SchemaBuilder, Tuple};

    fn toy_db(k: usize) -> HiddenDb {
        let schema = SchemaBuilder::new()
            .ranking("a", 10, InterfaceType::Rq)
            .ranking("b", 10, InterfaceType::Rq)
            .build();
        let tuples = vec![
            Tuple::new(0, vec![5, 1]),
            Tuple::new(1, vec![4, 4]),
            Tuple::new(2, vec![1, 3]),
            Tuple::new(3, vec![3, 2]),
        ];
        HiddenDb::with_sum_ranking(schema, tuples, k)
    }

    #[test]
    fn driver_counts_and_respects_budget() {
        let db = toy_db(1);
        let machine = crate::SqDbSky::new().machine(&db).unwrap();
        let driver = DiscoveryDriver::new(&db, machine, DriverConfig::new().with_budget(Some(2)));
        let result = driver.run().unwrap();
        assert!(!result.complete);
        assert_eq!(result.query_cost, 2);
        assert_eq!(db.queries_issued(), 2);
    }

    #[test]
    fn driver_converts_rate_limit_into_halt() {
        let db = toy_db(1).with_rate_limit(RateLimit::new(2));
        let machine = crate::SqDbSky::new().machine(&db).unwrap();
        let result = DiscoveryDriver::new(&db, machine, DriverConfig::new())
            .run()
            .unwrap();
        assert!(!result.complete);
        assert_eq!(result.query_cost, 2);
        assert_eq!(db.queries_issued(), 2);
    }

    #[test]
    fn driver_propagates_real_errors() {
        let db = toy_db(1);
        #[derive(Debug)]
        struct BadControl {
            fired: bool,
        }
        impl crate::MachineControl for BadControl {
            fn name(&self) -> &str {
                "BAD"
            }
            fn done(&self) -> bool {
                self.fired
            }
            fn plan_into(&self, _kb: &crate::KnowledgeBase, _limit: usize, out: &mut Vec<Query>) {
                out.push(Query::new(vec![skyweb_hidden_db::Predicate::eq(9, 0)]));
            }
            fn on_response(
                &mut self,
                _kb: &mut crate::KnowledgeBase,
                _issued: u64,
                _resp: &skyweb_hidden_db::QueryResponse,
            ) {
                self.fired = true;
            }
        }
        let machine = crate::Machine::from_parts(
            crate::KnowledgeBase::new(vec![0, 1]),
            BadControl { fired: false },
        );
        let mut driver = DiscoveryDriver::new(&db, machine, DriverConfig::new());
        assert!(driver.step().is_err());
    }

    #[test]
    fn pause_and_resume_continue_the_budget() {
        let db = toy_db(1);
        let machine = crate::SqDbSky::new().machine(&db).unwrap();
        let mut driver = DiscoveryDriver::new(
            &db,
            machine,
            DriverConfig::new().with_budget(Some(3)).with_max_batch(1),
        );
        driver.step().unwrap();
        let checkpoint = driver.pause();
        assert_eq!(checkpoint.queries_issued(), 1);
        let resumed = DiscoveryDriver::resume(
            &db,
            checkpoint,
            DriverConfig::new().with_budget(Some(3)).with_max_batch(1),
        );
        let result = resumed.run().unwrap();
        assert!(!result.complete);
        assert_eq!(result.query_cost, 3);
    }

    #[test]
    fn retries_converge_to_the_fault_free_result() {
        let reference = {
            let db = toy_db(1);
            let machine = crate::SqDbSky::new().machine(&db).unwrap();
            DiscoveryDriver::new(&db, machine, DriverConfig::new())
                .run()
                .unwrap()
        };
        let db = toy_db(1);
        let machine = crate::SqDbSky::new().machine(&db).unwrap();
        let config = DriverConfig::new().with_retry(Some(RetryPolicy::new()));
        let mut driver =
            DiscoveryDriver::with_faults(&db, machine, config, FaultPlan::new(42, 0.5));
        let mut outcomes = Vec::new();
        loop {
            let outcome = driver.step().unwrap();
            outcomes.push(outcome);
            if !matches!(outcome, StepOutcome::Progressed { .. }) {
                break;
            }
        }
        assert!(driver.retries() > 0, "rate 0.5 must force retries");
        assert!(driver.total_backoff_ms() > 0);
        assert!(driver.last_error().is_none());
        let result = driver.finish().unwrap();
        assert!(result.complete);
        assert_eq!(result.query_cost, reference.query_cost);
        let ids = |r: &DiscoveryResult| r.skyline.iter().map(|t| t.id).collect::<Vec<_>>();
        assert_eq!(ids(&result), ids(&reference));
        assert_eq!(result.trace, reference.trace);
        // Faulted attempts never reached the database.
        assert_eq!(db.queries_issued(), reference.query_cost);
    }

    #[test]
    fn exhausted_retries_degrade_instead_of_aborting() {
        let db = toy_db(1);
        let machine = crate::SqDbSky::new().machine(&db).unwrap();
        let config = DriverConfig::new().with_retry(Some(RetryPolicy::new().with_max_attempts(2)));
        // Certain faults with no consecutive cap: give-up is guaranteed.
        let faults = FaultPlan::new(7, 1.0).with_max_consecutive(u32::MAX);
        let mut driver = DiscoveryDriver::with_faults(&db, machine, config, faults);
        let mut outcome = driver.step().unwrap();
        while let StepOutcome::Progressed { .. } = outcome {
            outcome = driver.step().unwrap();
        }
        assert!(matches!(outcome, StepOutcome::Degraded { .. }));
        let err = driver.last_error().expect("give-up records the error");
        assert!(err.is_transient());
        let result = driver.finish().unwrap();
        assert!(!result.complete, "degraded runs are partial");
        // The halted machine needs no further stepping.
    }

    /// A [`PlanOracle`] that never answers: every attempt fails with a
    /// transient error, so retry accounting is exact and deterministic.
    #[derive(Debug)]
    struct AlwaysDown;

    impl PlanOracle for AlwaysDown {
        fn run_plan_grouped(
            &mut self,
            _queries: &[Query],
            _groups: Option<&[skyweb_hidden_db::PrefixGroup]>,
        ) -> (Vec<skyweb_hidden_db::QueryResponse>, Option<QueryError>) {
            (Vec::new(), Some(QueryError::Unavailable))
        }
    }

    #[test]
    fn retry_budget_of_n_allows_exactly_n_retries() {
        // Pins the boundary semantics of `retry_budget`: the give-up check
        // (`self.retries >= b`) runs *before* the counter increments, so a
        // budget of N performs exactly N retries (N + 1 attempts) and a
        // budget of 0 degrades on the first failure without retrying.
        let db = toy_db(1);
        for budget in [0u64, 1, 3, 7] {
            let machine = crate::SqDbSky::new().machine(&db).unwrap();
            let config = DriverConfig::new().with_retry(Some(
                RetryPolicy::new()
                    .with_max_attempts(u32::MAX)
                    .with_retry_budget(Some(budget)),
            ));
            let mut driver = DiscoveryDriver::with_oracle(AlwaysDown, machine, config);
            let outcome = driver.step().unwrap();
            assert!(
                matches!(outcome, StepOutcome::Degraded { queries: 0 }),
                "budget {budget}: expected Degraded, got {outcome:?}"
            );
            assert_eq!(
                driver.retries(),
                budget,
                "a retry budget of {budget} must allow exactly {budget} retries"
            );
            assert!(driver.last_error().is_some_and(QueryError::is_transient));
            // A transport without fault injection reports zero fault stats.
            assert_eq!(driver.fault_stats(), FaultStats::default());
        }
    }

    #[test]
    fn transient_error_without_policy_propagates() {
        let db = toy_db(1);
        let machine = crate::SqDbSky::new().machine(&db).unwrap();
        let faults = FaultPlan::new(7, 1.0).with_max_consecutive(u32::MAX);
        let mut driver = DiscoveryDriver::with_faults(&db, machine, DriverConfig::new(), faults);
        match driver.step() {
            Err(crate::DiscoveryError::Query(e)) => assert!(e.is_transient()),
            other => panic!("expected a propagated transient error, got {other:?}"),
        }
    }

    #[test]
    fn limit_ignoring_machines_cannot_overdraw_the_budget() {
        #[derive(Debug)]
        struct OverPlanner {
            rounds: usize,
        }
        impl crate::MachineControl for OverPlanner {
            fn name(&self) -> &str {
                "OVER"
            }
            fn done(&self) -> bool {
                self.rounds >= 10
            }
            fn plan_into(&self, _kb: &crate::KnowledgeBase, limit: usize, out: &mut Vec<Query>) {
                // Deliberately ignore the limit.
                out.extend(vec![Query::select_all(); limit + 5]);
            }
            fn on_response(
                &mut self,
                _kb: &mut crate::KnowledgeBase,
                _issued: u64,
                _resp: &skyweb_hidden_db::QueryResponse,
            ) {
                self.rounds += 1;
            }
        }
        let db = toy_db(1);
        let machine = crate::Machine::from_parts(
            crate::KnowledgeBase::new(vec![0, 1]),
            OverPlanner { rounds: 0 },
        );
        let driver = DiscoveryDriver::new(
            &db,
            machine,
            DriverConfig::new().with_budget(Some(3)).with_max_batch(2),
        );
        let result = driver.run().unwrap();
        assert_eq!(result.query_cost, 3, "never a half-accounted plan");
        assert_eq!(db.queries_issued(), 3);
        assert!(!result.complete);
    }

    #[test]
    fn budget_expiring_exactly_at_a_plan_boundary_is_clean() {
        // SQ-DB-SKY on the toy db costs a fixed number of queries; set the
        // budget to exactly that cost and single-step: the run must end in
        // a clean Finished with full accounting, not a truncated plan.
        let cost = {
            let db = toy_db(1);
            let machine = crate::SqDbSky::new().machine(&db).unwrap();
            DiscoveryDriver::new(&db, machine, DriverConfig::new())
                .run()
                .unwrap()
                .query_cost
        };
        let db = toy_db(1);
        let machine = crate::SqDbSky::new().machine(&db).unwrap();
        let mut driver = DiscoveryDriver::new(
            &db,
            machine,
            DriverConfig::new()
                .with_budget(Some(cost))
                .with_max_batch(1),
        );
        let mut answered = 0u64;
        loop {
            match driver.step().unwrap() {
                StepOutcome::Progressed { queries } => answered += queries as u64,
                StepOutcome::Finished => break,
                StepOutcome::Degraded { .. } => panic!("no faults configured"),
            }
        }
        assert_eq!(answered, cost);
        let result = driver.finish().unwrap();
        assert_eq!(result.query_cost, cost);
        assert!(result.complete, "the exact budget still finishes the run");
        assert_eq!(db.queries_issued(), cost);
    }

    #[test]
    fn expired_deadline_halts_at_the_next_boundary() {
        let db = toy_db(1);
        let machine = crate::SqDbSky::new().machine(&db).unwrap();
        let mut driver = DiscoveryDriver::new(
            &db,
            machine,
            DriverConfig::new().with_max_wall(Some(Duration::ZERO)),
        );
        assert_eq!(driver.step().unwrap(), StepOutcome::Finished);
        let result = driver.finish().unwrap();
        assert!(!result.complete);
        assert_eq!(result.query_cost, 0);
    }
}
