//! The driving layer of the sans-io API: executes a [`DiscoveryMachine`]
//! against a live [`Session`], enforcing budgets and deadlines, pipelining
//! multi-query plans through the session's batch interface, and supporting
//! pause/resume through [`Checkpoint`]s.
//!
//! The driver is the only place where algorithm state meets I/O. It holds
//! the machine (pure state) and a session (the connection); pausing drops
//! the session and hands the machine back as a checkpoint that can be
//! resumed later — against the same database or a failed-over replica with
//! identical content.

use std::time::{Duration, Instant};

use skyweb_hidden_db::{HiddenDb, QueryError, Session};

use crate::machine::{AnytimeSnapshot, DiscoveryMachine, RunProgress};
use crate::{DiscoveryError, DiscoveryResult};

/// Default number of queries the driver issues per plan round-trip.
///
/// Machines with data-independent frontiers (SQ-DB-SKY, the point-space
/// crawl) yield plans of this size and amortize the per-query client
/// overhead; machines with adaptive traversals yield single-query plans
/// regardless of the limit.
pub const DEFAULT_MAX_BATCH: usize = 64;

/// How a [`DiscoveryDriver`] executes a machine.
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// Client-side query budget: the run is halted (anytime result) once
    /// this many queries were answered, counted across pause/resume cycles
    /// via [`DiscoveryMachine::queries_issued`].
    pub budget: Option<u64>,
    /// Upper bound on the number of queries issued per plan round-trip
    /// (≥ 1). `1` forces fully sequential execution.
    pub max_batch: usize,
    /// Wall-clock deadline measured from driver construction: once elapsed,
    /// the run is halted at the next plan boundary (anytime result).
    pub max_wall: Option<Duration>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            budget: None,
            max_batch: DEFAULT_MAX_BATCH,
            max_wall: None,
        }
    }
}

impl DriverConfig {
    /// Config with no budget, no deadline and default batching.
    pub fn new() -> Self {
        DriverConfig::default()
    }

    /// Sets the query budget (builder style).
    pub fn with_budget(mut self, budget: Option<u64>) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the per-round batch limit (builder style, clamped to ≥ 1).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the wall-clock deadline (builder style).
    pub fn with_max_wall(mut self, max_wall: Option<Duration>) -> Self {
        self.max_wall = max_wall;
        self
    }
}

/// Outcome of one [`DiscoveryDriver::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// `queries` responses were fed to the machine; the run continues.
    Progressed {
        /// Number of queries answered in this round-trip.
        queries: usize,
    },
    /// The machine needs no further stepping: it finished, or it was halted
    /// by the budget, the deadline or the server's rate limit.
    Finished,
}

/// A paused discovery run: the machine's complete state, detached from any
/// database session.
///
/// The checkpoint owns everything the run has learned (knowledge base,
/// trace, issued-query accounting) and borrows nothing, so it can be held
/// indefinitely, sent to another thread, or resumed against a different
/// [`HiddenDb`] handle with [`DiscoveryDriver::resume`].
#[derive(Debug)]
pub struct Checkpoint<M> {
    machine: M,
}

impl<M: DiscoveryMachine> Checkpoint<M> {
    /// Read access to the paused machine.
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Queries answered before the pause (budget accounting carries over).
    pub fn queries_issued(&self) -> u64 {
        self.machine.queries_issued()
    }

    /// Anytime snapshot of the paused run.
    pub fn snapshot(&self) -> AnytimeSnapshot {
        self.machine.snapshot()
    }

    /// Consumes the checkpoint into the raw machine.
    pub fn into_machine(self) -> M {
        self.machine
    }
}

/// Executes a [`DiscoveryMachine`] against a database session.
///
/// ```
/// use skyweb_core::{Discoverer, DiscoveryDriver, DriverConfig, SqDbSky};
/// use skyweb_hidden_db::{HiddenDb, InterfaceType, SchemaBuilder, Tuple};
///
/// let schema = SchemaBuilder::new()
///     .ranking("a", 10, InterfaceType::Sq)
///     .ranking("b", 10, InterfaceType::Sq)
///     .build();
/// let tuples = vec![Tuple::new(0, vec![5, 1]), Tuple::new(1, vec![1, 5])];
/// let db = HiddenDb::with_sum_ranking(schema, tuples, 1);
///
/// let machine = SqDbSky::new().machine(&db).unwrap();
/// let mut driver = DiscoveryDriver::new(&db, machine, DriverConfig::new());
/// // Stream anytime snapshots while stepping…
/// while let skyweb_core::StepOutcome::Progressed { .. } = driver.step().unwrap() {
///     let snap = driver.snapshot();
///     assert!(snap.queries <= db.queries_issued());
/// }
/// let result = driver.finish().unwrap();
/// assert!(result.complete);
/// ```
#[derive(Debug)]
pub struct DiscoveryDriver<'db, M = Box<dyn DiscoveryMachine>> {
    session: Session<'db>,
    machine: M,
    config: DriverConfig,
    started: Instant,
}

impl<'db, M: DiscoveryMachine> DiscoveryDriver<'db, M> {
    /// Attaches `machine` to a fresh session of `db`. The deadline clock
    /// (if any) starts now.
    pub fn new(db: &'db HiddenDb, machine: M, config: DriverConfig) -> Self {
        DiscoveryDriver {
            session: db.session(),
            machine,
            config,
            started: Instant::now(),
        }
    }

    /// Resumes a paused run from `checkpoint` against `db`. Budget
    /// accounting continues from the checkpoint's issued-query count; the
    /// deadline clock (if any) restarts.
    pub fn resume(db: &'db HiddenDb, checkpoint: Checkpoint<M>, config: DriverConfig) -> Self {
        DiscoveryDriver::new(db, checkpoint.into_machine(), config)
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Allocation-free progress counters (what schedulers poll per step).
    pub fn progress(&self) -> RunProgress {
        self.machine.progress()
    }

    /// An anytime snapshot of the run (cheap; usable for streaming progress
    /// between steps).
    pub fn snapshot(&self) -> AnytimeSnapshot {
        self.machine.snapshot()
    }

    /// Pauses the run at the current plan boundary: drops the session and
    /// returns the machine's complete state as a [`Checkpoint`].
    pub fn pause(self) -> Checkpoint<M> {
        Checkpoint {
            machine: self.machine,
        }
    }

    /// Detaches and returns the machine (like [`DiscoveryDriver::pause`],
    /// without the checkpoint wrapper).
    pub fn into_machine(self) -> M {
        self.machine
    }

    /// Queries still allowed by the budget (`None` = unlimited).
    fn budget_remaining(&self) -> Option<u64> {
        self.config
            .budget
            .map(|b| b.saturating_sub(self.machine.queries_issued()))
    }

    /// `true` once the wall-clock deadline has passed.
    fn deadline_passed(&self) -> bool {
        self.config
            .max_wall
            .is_some_and(|limit| self.started.elapsed() >= limit)
    }

    /// Executes one plan round-trip: asks the machine for its next plan
    /// (bounded by the batch limit, the budget and the deadline), pipelines
    /// the queries through the session's batch interface, and resumes the
    /// machine with the responses.
    ///
    /// Budget, deadline and rate-limit exhaustion halt the machine and
    /// report [`StepOutcome::Finished`]; the partial anytime result stays
    /// available through [`DiscoveryDriver::finish`]. Any other query
    /// rejection is a real error and is propagated.
    pub fn step(&mut self) -> Result<StepOutcome, DiscoveryError> {
        if self.machine.is_finished() {
            return Ok(StepOutcome::Finished);
        }
        let limit = match self.budget_remaining() {
            Some(0) => {
                self.machine.halt();
                return Ok(StepOutcome::Finished);
            }
            Some(left) => (left.min(self.config.max_batch as u64)) as usize,
            None => self.config.max_batch,
        };
        if self.deadline_passed() {
            self.machine.halt();
            return Ok(StepOutcome::Finished);
        }
        let plan = self.machine.next_plan(limit);
        if plan.is_empty() {
            return Ok(StepOutcome::Finished);
        }
        // The plan's sibling annotation (when the machine provides one)
        // rides along so the engine's shared-prefix executor need not
        // rediscover the frontier's parent structure.
        let (responses, err) = self.session.run_plan_grouped(plan.queries(), plan.groups());
        let answered = responses.len();
        self.machine.resume(&responses);
        match err {
            None => Ok(StepOutcome::Progressed { queries: answered }),
            Some(QueryError::RateLimitExceeded { .. }) => {
                self.machine.halt();
                Ok(StepOutcome::Finished)
            }
            Some(e) => Err(DiscoveryError::Query(e)),
        }
    }

    /// Steps until the run finishes (or is halted by budget/deadline/rate
    /// limit), then returns the driver for result extraction.
    fn drive_to_end(&mut self) -> Result<(), DiscoveryError> {
        while let StepOutcome::Progressed { .. } = self.step()? {}
        Ok(())
    }

    /// Runs to completion and extracts the [`DiscoveryResult`].
    pub fn run(mut self) -> Result<DiscoveryResult, DiscoveryError> {
        self.drive_to_end()?;
        Ok(self.machine.take_result())
    }

    /// Runs to completion and hands the finished machine back (for
    /// machine-specific result accessors such as
    /// [`SkybandMachine::take_band_result`](crate::SkybandMachine::take_band_result)).
    pub fn run_into_machine(mut self) -> Result<M, DiscoveryError> {
        self.drive_to_end()?;
        Ok(self.machine)
    }

    /// Extracts the result of a finished (or halted) run, consuming the
    /// driver — equivalent to `self.into_machine().take_result()`.
    pub fn finish(mut self) -> Result<DiscoveryResult, DiscoveryError> {
        Ok(self.machine.take_result())
    }

    /// Extracts the result of a finished (or halted) run in place, leaving
    /// the machine empty (used by schedulers that keep the driver slot
    /// alive, e.g. [`crate::DiscoveryService`]).
    pub fn take_result(&mut self) -> DiscoveryResult {
        self.machine.take_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Discoverer;
    use skyweb_hidden_db::{InterfaceType, Query, RateLimit, SchemaBuilder, Tuple};

    fn toy_db(k: usize) -> HiddenDb {
        let schema = SchemaBuilder::new()
            .ranking("a", 10, InterfaceType::Rq)
            .ranking("b", 10, InterfaceType::Rq)
            .build();
        let tuples = vec![
            Tuple::new(0, vec![5, 1]),
            Tuple::new(1, vec![4, 4]),
            Tuple::new(2, vec![1, 3]),
            Tuple::new(3, vec![3, 2]),
        ];
        HiddenDb::with_sum_ranking(schema, tuples, k)
    }

    #[test]
    fn driver_counts_and_respects_budget() {
        let db = toy_db(1);
        let machine = crate::SqDbSky::new().machine(&db).unwrap();
        let driver = DiscoveryDriver::new(&db, machine, DriverConfig::new().with_budget(Some(2)));
        let result = driver.run().unwrap();
        assert!(!result.complete);
        assert_eq!(result.query_cost, 2);
        assert_eq!(db.queries_issued(), 2);
    }

    #[test]
    fn driver_converts_rate_limit_into_halt() {
        let db = toy_db(1).with_rate_limit(RateLimit::new(2));
        let machine = crate::SqDbSky::new().machine(&db).unwrap();
        let result = DiscoveryDriver::new(&db, machine, DriverConfig::new())
            .run()
            .unwrap();
        assert!(!result.complete);
        assert_eq!(result.query_cost, 2);
        assert_eq!(db.queries_issued(), 2);
    }

    #[test]
    fn driver_propagates_real_errors() {
        let db = toy_db(1);
        #[derive(Debug)]
        struct BadControl {
            fired: bool,
        }
        impl crate::MachineControl for BadControl {
            fn name(&self) -> &str {
                "BAD"
            }
            fn done(&self) -> bool {
                self.fired
            }
            fn plan_into(&self, _kb: &crate::KnowledgeBase, _limit: usize, out: &mut Vec<Query>) {
                out.push(Query::new(vec![skyweb_hidden_db::Predicate::eq(9, 0)]));
            }
            fn on_response(
                &mut self,
                _kb: &mut crate::KnowledgeBase,
                _issued: u64,
                _resp: &skyweb_hidden_db::QueryResponse,
            ) {
                self.fired = true;
            }
        }
        let machine = crate::Machine::from_parts(
            crate::KnowledgeBase::new(vec![0, 1]),
            BadControl { fired: false },
        );
        let mut driver = DiscoveryDriver::new(&db, machine, DriverConfig::new());
        assert!(driver.step().is_err());
    }

    #[test]
    fn pause_and_resume_continue_the_budget() {
        let db = toy_db(1);
        let machine = crate::SqDbSky::new().machine(&db).unwrap();
        let mut driver = DiscoveryDriver::new(
            &db,
            machine,
            DriverConfig::new().with_budget(Some(3)).with_max_batch(1),
        );
        driver.step().unwrap();
        let checkpoint = driver.pause();
        assert_eq!(checkpoint.queries_issued(), 1);
        let resumed = DiscoveryDriver::resume(
            &db,
            checkpoint,
            DriverConfig::new().with_budget(Some(3)).with_max_batch(1),
        );
        let result = resumed.run().unwrap();
        assert!(!result.complete);
        assert_eq!(result.query_cost, 3);
    }

    #[test]
    fn expired_deadline_halts_at_the_next_boundary() {
        let db = toy_db(1);
        let machine = crate::SqDbSky::new().machine(&db).unwrap();
        let mut driver = DiscoveryDriver::new(
            &db,
            machine,
            DriverConfig::new().with_max_wall(Some(Duration::ZERO)),
        );
        assert_eq!(driver.step().unwrap(), StepOutcome::Finished);
        let result = driver.finish().unwrap();
        assert!(!result.complete);
        assert_eq!(result.query_cost, 0);
    }
}
