//! Top-h sky-band discovery (Section 7.2 of the paper).
//!
//! The *top-h sky band* contains every tuple dominated by fewer than `h`
//! other tuples; the skyline is the special case `h = 1`. Sky bands matter
//! because the top-k answer of **any** monotone ranking function with
//! `k ≤ h` is contained in the top-h sky band — so a downloaded sky band
//! lets a third-party service answer arbitrary user-defined top-k queries
//! without touching the hidden database again.
//!
//! For two-ended range interfaces the paper's extension is implemented
//! here as [`RqSkyband`]: any tuple on the top-`l` band (but not the
//! top-`(l-1)` band) is a skyline tuple of the *domination subspace* of some
//! top-`(l-1)` band tuple, so the band is discovered by re-running
//! RQ-DB-SKY once per already-discovered band tuple, rooted at the
//! conjunctive query `A_i ≥ t[A_i]`.
//!
//! The final band is extracted from everything retrieved with an exact local
//! dominance count ([`skyband_of_retrieved`]) — which is correct because at
//! least `h` dominators of any non-band tuple are themselves on the band and
//! therefore retrieved.

use std::borrow::Borrow;
use std::collections::HashSet;
use std::sync::Arc;

use skyweb_hidden_db::{HiddenDb, InterfaceType, Predicate, Query, QueryResponse, Schema, Tuple};
use skyweb_skyline::skyband_on;

use crate::codec::{self, CodecError, Reader};
use crate::driver::{DiscoveryDriver, DriverConfig};
use crate::machine::{Machine, MachineControl};
use crate::rq::RqTreeWalk;
use crate::{DiscoveryError, KnowledgeBase};

/// The sans-io machine form of [`RqSkyband`]: RQ-DB-SKY re-rooted in the
/// domination subspace of every already-discovered band tuple, level by
/// level. The generic [`DiscoveryMachine`](crate::DiscoveryMachine)
/// interface reports the plain skyline; use
/// [`SkybandMachine::take_band_result`] for the full top-h band.
pub type SkybandMachine = Machine<SkybandControl>;

/// Extracts the top-h sky band of the *retrieved* tuple set by exact local
/// dominance counting over the ranking attributes of `db`.
///
/// This post-processing is exact whenever the retrieved set is a superset of
/// the true top-h band (which the discovery procedures guarantee). The
/// discovery procedure itself no longer needs it — the knowledge base's
/// incremental index maintains every band level as tuples arrive — but it
/// remains the independent reference the tests pin that index against.
pub fn skyband_of_retrieved<B: Borrow<Tuple>>(
    retrieved: &[B],
    db: &HiddenDb,
    h: usize,
) -> Vec<Tuple> {
    skyband_on(retrieved, db.schema().ranking_attrs(), h)
}

/// Result of a sky-band discovery run. Tuples are `Arc`-shared with the
/// database store, like [`crate::DiscoveryResult`]'s.
#[derive(Debug, Clone)]
pub struct SkybandResult {
    /// The discovered top-h sky band (exact when `complete` is `true`).
    pub band: Vec<Arc<Tuple>>,
    /// Every tuple retrieved along the way.
    pub retrieved: Vec<Arc<Tuple>>,
    /// Total number of queries issued.
    pub query_cost: u64,
    /// Number of RQ-DB-SKY executions performed (the paper's cost driver is
    /// the size of the top-(h-1) band; we spend `m` runs per band tuple to
    /// cover its domination subspace with conjunctive boxes).
    pub runs: usize,
    /// Whether the procedure ran to completion.
    pub complete: bool,
}

/// Top-h sky-band discovery for two-ended range interfaces.
#[derive(Debug, Clone)]
pub struct RqSkyband {
    h: usize,
    budget: Option<u64>,
}

impl RqSkyband {
    /// Creates a discoverer for the top-`h` sky band.
    ///
    /// # Panics
    /// Panics if `h == 0`.
    pub fn new(h: usize) -> Self {
        assert!(h >= 1, "the sky band requires h >= 1");
        RqSkyband { h, budget: None }
    }

    /// Limits the total number of queries (anytime mode).
    pub fn with_budget(h: usize, budget: u64) -> Self {
        assert!(h >= 1, "the sky band requires h >= 1");
        RqSkyband {
            h,
            budget: Some(budget),
        }
    }

    fn check_interface(db: &HiddenDb) -> Result<(), DiscoveryError> {
        for &a in db.schema().ranking_attrs() {
            if db.schema().attr(a).interface != InterfaceType::Rq {
                return Err(DiscoveryError::UnsupportedInterface {
                    reason: format!(
                        "sky-band discovery needs two-ended ranges on every ranking attribute, \
                         but '{}' is {}",
                        db.schema().attr(a).name,
                        db.schema().attr(a).interface.label()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Builds the sans-io machine for this band configuration.
    pub fn build_machine(&self, db: &HiddenDb) -> Result<SkybandMachine, DiscoveryError> {
        Self::check_interface(db)?;
        let attrs: Vec<usize> = db.schema().ranking_attrs().to_vec();
        let k = db.k();
        // Band-h knowledge base: the incremental index keeps every level of
        // the band current, so neither the per-level expansion nor the final
        // extraction recounts dominance over the retrieved set.
        let kb = KnowledgeBase::with_band(attrs.clone(), self.h);
        // Level 1: the plain skyline.
        let control = SkybandControl {
            state: SkyState::FirstTree(RqTreeWalk::new(Query::select_all(), attrs.clone(), k)),
            attrs,
            k,
            h: self.h,
            schema: db.schema().clone(),
            runs: 1,
            used_roots: HashSet::new(),
        };
        Ok(Machine::from_parts(kb, control))
    }

    /// Runs the discovery and returns the top-h sky band.
    pub fn discover_band(&self, db: &HiddenDb) -> Result<SkybandResult, DiscoveryError> {
        let machine = self.build_machine(db)?;
        let mut machine =
            DiscoveryDriver::new(db, machine, DriverConfig::new().with_budget(self.budget))
                .run_into_machine()?;
        Ok(machine.take_band_result())
    }
}

#[derive(Debug, Clone)]
enum SkyState {
    /// The level-1 RQ-DB-SKY run over the whole space.
    FirstTree(RqTreeWalk),
    /// A domination-subspace run of levels 2..h, with the cursors needed to
    /// continue the level/tuple/box enumeration once it finishes.
    BandTree {
        tree: RqTreeWalk,
        level: usize,
        band_prev: Vec<Arc<Tuple>>,
        t_idx: usize,
        a_idx: usize,
    },
    /// Finished.
    Done,
}

/// Control state of [`SkybandMachine`]: the per-level domination-subspace
/// exploration of top-h sky-band discovery.
///
/// Levels 2..h explore the domination subspace of every tuple already known
/// to be on the band. The subspace "tuples dominated by t" (which must
/// exclude t itself) is covered by m boxes, the i-th requiring
/// `A_i > t[A_i]` and `A_j ≥ t[A_j]` elsewhere; RQ-DB-SKY is re-run rooted
/// at each box.
#[derive(Debug, Clone)]
pub struct SkybandControl {
    state: SkyState,
    attrs: Vec<usize>,
    k: usize,
    h: usize,
    schema: Schema,
    runs: usize,
    used_roots: HashSet<u64>,
}

impl SkybandControl {
    /// The i-th domination-subspace box of tuple `t`.
    fn box_root(&self, t: &Tuple, strict: usize) -> Query {
        Query::new(
            self.attrs
                .iter()
                .map(|&a| {
                    if a == strict {
                        Predicate::gt(a, t.values[a])
                    } else {
                        Predicate::ge(a, t.values[a])
                    }
                })
                .collect(),
        )
    }

    /// Advances the level/tuple/box cursors to the next satisfiable,
    /// not-yet-used domination-subspace box and starts its RQ-DB-SKY run;
    /// `Done` when every level is explored.
    fn seek_next_run(
        &mut self,
        kb: &KnowledgeBase,
        mut level: usize,
        mut band_prev: Vec<Arc<Tuple>>,
        mut t_idx: usize,
        mut a_idx: usize,
    ) {
        loop {
            while t_idx < band_prev.len() {
                let t = Arc::clone(&band_prev[t_idx]);
                if a_idx == 0 && !self.used_roots.insert(t.id) {
                    t_idx += 1;
                    continue;
                }
                while a_idx < self.attrs.len() {
                    let strict = self.attrs[a_idx];
                    let root = self.box_root(&t, strict);
                    a_idx += 1;
                    if root.is_unsatisfiable(&self.schema) {
                        // t already holds the worst possible value on
                        // the strict attribute; the box is empty.
                        continue;
                    }
                    self.runs += 1;
                    self.state = SkyState::BandTree {
                        tree: RqTreeWalk::new(root, self.attrs.clone(), self.k),
                        level,
                        band_prev,
                        t_idx,
                        a_idx,
                    };
                    return;
                }
                a_idx = 0;
                t_idx += 1;
            }
            level += 1;
            if level >= self.h {
                self.state = SkyState::Done;
                return;
            }
            band_prev = kb.band_tuples(level);
            t_idx = 0;
            a_idx = 0;
        }
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let attrs = codec::read_usize_vec(r)?;
        let k = r.usize()?;
        let h = r.usize()?;
        let schema = codec::read_schema(r)?;
        let runs = r.usize()?;
        let n = r.usize()?;
        let mut used_roots = HashSet::new();
        for _ in 0..n {
            used_roots.insert(r.u64()?);
        }
        let state = match r.u8()? {
            0 => SkyState::FirstTree(RqTreeWalk::decode(r)?),
            1 => {
                let tree = RqTreeWalk::decode(r)?;
                let level = r.usize()?;
                let n = r.usize()?;
                let mut band_prev = Vec::new();
                for _ in 0..n {
                    band_prev.push(codec::read_tuple(r)?);
                }
                let t_idx = r.usize()?;
                let a_idx = r.usize()?;
                SkyState::BandTree {
                    tree,
                    level,
                    band_prev,
                    t_idx,
                    a_idx,
                }
            }
            2 => SkyState::Done,
            tag => return Err(CodecError::BadTag { tag }),
        };
        Ok(SkybandControl {
            state,
            attrs,
            k,
            h,
            schema,
            runs,
            used_roots,
        })
    }
}

impl MachineControl for SkybandControl {
    fn name(&self) -> &str {
        "RQ-SKYBAND"
    }

    fn done(&self) -> bool {
        matches!(self.state, SkyState::Done)
    }

    fn plan_into(&self, kb: &KnowledgeBase, _limit: usize, out: &mut Vec<Query>) {
        match &self.state {
            SkyState::FirstTree(tree) | SkyState::BandTree { tree, .. } => tree.plan_into(kb, out),
            SkyState::Done => {}
        }
    }

    fn on_response(&mut self, kb: &mut KnowledgeBase, issued: u64, resp: &QueryResponse) {
        match std::mem::replace(&mut self.state, SkyState::Done) {
            SkyState::FirstTree(mut tree) => {
                tree.on_response(kb, issued, resp);
                if !tree.done() {
                    self.state = SkyState::FirstTree(tree);
                } else if self.h == 1 {
                    self.state = SkyState::Done;
                } else {
                    // The level-1 run just finished: start the level loop.
                    let band_prev = kb.band_tuples(1);
                    self.seek_next_run(kb, 1, band_prev, 0, 0);
                }
            }
            SkyState::BandTree {
                mut tree,
                level,
                band_prev,
                t_idx,
                a_idx,
            } => {
                tree.on_response(kb, issued, resp);
                if tree.done() {
                    self.seek_next_run(kb, level, band_prev, t_idx, a_idx);
                } else {
                    self.state = SkyState::BandTree {
                        tree,
                        level,
                        band_prev,
                        t_idx,
                        a_idx,
                    };
                }
            }
            SkyState::Done => unreachable!("no response expected after the band was explored"),
        }
    }

    fn codec_tag(&self) -> Option<u8> {
        Some(codec::TAG_SKYBAND)
    }

    fn encode_control(&self, out: &mut Vec<u8>) {
        codec::put_usize_slice(out, &self.attrs);
        codec::put_usize(out, self.k);
        codec::put_usize(out, self.h);
        codec::put_schema(out, &self.schema);
        codec::put_usize(out, self.runs);
        // A hash set has no stable iteration order; write the root ids
        // sorted so re-encoding a decoded checkpoint reproduces the
        // original bytes.
        let mut roots: Vec<u64> = self.used_roots.iter().copied().collect();
        roots.sort_unstable();
        codec::put_usize(out, roots.len());
        for id in roots {
            codec::put_u64(out, id);
        }
        match &self.state {
            SkyState::FirstTree(tree) => {
                codec::put_u8(out, 0);
                tree.encode(out);
            }
            SkyState::BandTree {
                tree,
                level,
                band_prev,
                t_idx,
                a_idx,
            } => {
                codec::put_u8(out, 1);
                tree.encode(out);
                codec::put_usize(out, *level);
                codec::put_usize(out, band_prev.len());
                for t in band_prev {
                    codec::put_tuple(out, t);
                }
                codec::put_usize(out, *t_idx);
                codec::put_usize(out, *a_idx);
            }
            SkyState::Done => codec::put_u8(out, 2),
        }
    }
}

impl SkybandMachine {
    /// Consumes the machine into the full [`SkybandResult`] (band, runs,
    /// cost) — the machine-specific counterpart of
    /// [`DiscoveryMachine::take_result`](crate::DiscoveryMachine::take_result),
    /// which reports only the plain skyline.
    pub fn take_band_result(&mut self) -> SkybandResult {
        let complete = self.control().done() && !self.halted();
        let runs = self.control().runs;
        let h = self.control().h;
        let (kb, issued, complete) = self.finish_parts(complete);
        let mut band = kb.band_tuples(h);
        band.sort_by_key(|t| t.id);
        let mut retrieved: Vec<Arc<Tuple>> = kb.retrieved_snapshot().to_vec();
        retrieved.sort_by_key(|t| t.id);
        SkybandResult {
            band,
            retrieved,
            query_cost: issued,
            runs,
            complete,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_hidden_db::{SchemaBuilder, SumRanker};
    use skyweb_skyline::{same_ids, skyband};

    fn rq_schema(m: usize, domain: u32) -> skyweb_hidden_db::Schema {
        let mut b = SchemaBuilder::new();
        for i in 0..m {
            b = b.ranking(format!("a{i}"), domain, InterfaceType::Rq);
        }
        b.build()
    }

    /// Duplicate-free test database (general positioning assumption).
    fn pseudo_random_db(m: usize, domain: u32, n: u64, k: usize) -> HiddenDb {
        let domains = vec![domain; m];
        let tuples = skyweb_datagen::synthetic::distinct_cells(&domains, n as usize, 48271);
        HiddenDb::new(rq_schema(m, domain), tuples, Box::new(SumRanker), k)
    }

    #[test]
    fn h_equal_one_is_the_skyline() {
        let db = pseudo_random_db(2, 30, 100, 2);
        let result = RqSkyband::new(1).discover_band(&db).unwrap();
        assert!(result.complete);
        assert_eq!(result.runs, 1);
        let truth = skyband(db.oracle_tuples().as_slice(), db.schema(), 1);
        assert!(same_ids(&result.band, &truth));
    }

    #[test]
    fn top_two_band_matches_ground_truth() {
        let db = pseudo_random_db(2, 25, 120, 2);
        let result = RqSkyband::new(2).discover_band(&db).unwrap();
        assert!(result.complete);
        let truth = skyband(db.oracle_tuples().as_slice(), db.schema(), 2);
        assert!(same_ids(&result.band, &truth));
        assert!(result.runs >= 2);
    }

    #[test]
    fn top_three_band_matches_ground_truth_in_3d() {
        let db = pseudo_random_db(3, 12, 150, 3);
        let result = RqSkyband::new(3).discover_band(&db).unwrap();
        assert!(result.complete);
        let truth = skyband(db.oracle_tuples().as_slice(), db.schema(), 3);
        assert!(same_ids(&result.band, &truth));
    }

    #[test]
    fn band_contains_the_skyline() {
        let db = pseudo_random_db(3, 20, 150, 2);
        let sky = RqSkyband::new(1).discover_band(&db).unwrap().band;
        let db2 = pseudo_random_db(3, 20, 150, 2);
        let band = RqSkyband::new(2).discover_band(&db2).unwrap().band;
        let band_ids: Vec<u64> = band.iter().map(|t| t.id).collect();
        assert!(sky.iter().all(|t| band_ids.contains(&t.id)));
        assert!(band.len() >= sky.len());
    }

    #[test]
    fn rejects_non_rq_interfaces() {
        let schema = SchemaBuilder::new()
            .ranking("a", 10, InterfaceType::Pq)
            .ranking("b", 10, InterfaceType::Rq)
            .build();
        let db = HiddenDb::new(schema, vec![], Box::new(SumRanker), 1);
        assert!(RqSkyband::new(2).discover_band(&db).is_err());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let db = pseudo_random_db(3, 20, 300, 1);
        let result = RqSkyband::with_budget(2, 5).discover_band(&db).unwrap();
        assert!(!result.complete);
        assert!(result.query_cost <= 5);
    }

    #[test]
    fn post_processing_helper_matches_local_skyband() {
        let db = pseudo_random_db(2, 15, 80, 2);
        let all: Vec<Tuple> = db.oracle_tuples().to_vec();
        let a = skyband_of_retrieved(&all, &db, 3);
        let b = skyband(db.oracle_tuples().as_slice(), db.schema(), 3);
        assert!(same_ids(&a, &b));
    }

    #[test]
    #[should_panic(expected = "h >= 1")]
    fn zero_h_panics() {
        let _ = RqSkyband::new(0);
    }
}
