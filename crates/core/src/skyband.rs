//! Top-h sky-band discovery (Section 7.2 of the paper).
//!
//! The *top-h sky band* contains every tuple dominated by fewer than `h`
//! other tuples; the skyline is the special case `h = 1`. Sky bands matter
//! because the top-k answer of **any** monotone ranking function with
//! `k ≤ h` is contained in the top-h sky band — so a downloaded sky band
//! lets a third-party service answer arbitrary user-defined top-k queries
//! without touching the hidden database again.
//!
//! For two-ended range interfaces the paper's extension is implemented
//! here as [`RqSkyband`]: any tuple on the top-`l` band (but not the
//! top-`(l-1)` band) is a skyline tuple of the *domination subspace* of some
//! top-`(l-1)` band tuple, so the band is discovered by re-running
//! RQ-DB-SKY once per already-discovered band tuple, rooted at the
//! conjunctive query `A_i ≥ t[A_i]`.
//!
//! The final band is extracted from everything retrieved with an exact local
//! dominance count ([`skyband_of_retrieved`]) — which is correct because at
//! least `h` dominators of any non-band tuple are themselves on the band and
//! therefore retrieved.

use std::borrow::Borrow;
use std::collections::HashSet;
use std::sync::Arc;

use skyweb_hidden_db::{HiddenDb, InterfaceType, Predicate, Query, Tuple};
use skyweb_skyline::skyband_on;

use crate::{Client, DiscoveryError, KnowledgeBase, RqDbSky};

/// Extracts the top-h sky band of the *retrieved* tuple set by exact local
/// dominance counting over the ranking attributes of `db`.
///
/// This post-processing is exact whenever the retrieved set is a superset of
/// the true top-h band (which the discovery procedures guarantee). The
/// discovery procedure itself no longer needs it — the knowledge base's
/// incremental index maintains every band level as tuples arrive — but it
/// remains the independent reference the tests pin that index against.
pub fn skyband_of_retrieved<B: Borrow<Tuple>>(
    retrieved: &[B],
    db: &HiddenDb,
    h: usize,
) -> Vec<Tuple> {
    skyband_on(retrieved, db.schema().ranking_attrs(), h)
}

/// Result of a sky-band discovery run. Tuples are `Arc`-shared with the
/// database store, like [`crate::DiscoveryResult`]'s.
#[derive(Debug, Clone)]
pub struct SkybandResult {
    /// The discovered top-h sky band (exact when `complete` is `true`).
    pub band: Vec<Arc<Tuple>>,
    /// Every tuple retrieved along the way.
    pub retrieved: Vec<Arc<Tuple>>,
    /// Total number of queries issued.
    pub query_cost: u64,
    /// Number of RQ-DB-SKY executions performed (the paper's cost driver is
    /// the size of the top-(h-1) band; we spend `m` runs per band tuple to
    /// cover its domination subspace with conjunctive boxes).
    pub runs: usize,
    /// Whether the procedure ran to completion.
    pub complete: bool,
}

/// Top-h sky-band discovery for two-ended range interfaces.
#[derive(Debug, Clone)]
pub struct RqSkyband {
    h: usize,
    budget: Option<u64>,
}

impl RqSkyband {
    /// Creates a discoverer for the top-`h` sky band.
    ///
    /// # Panics
    /// Panics if `h == 0`.
    pub fn new(h: usize) -> Self {
        assert!(h >= 1, "the sky band requires h >= 1");
        RqSkyband { h, budget: None }
    }

    /// Limits the total number of queries (anytime mode).
    pub fn with_budget(h: usize, budget: u64) -> Self {
        assert!(h >= 1, "the sky band requires h >= 1");
        RqSkyband {
            h,
            budget: Some(budget),
        }
    }

    fn check_interface(db: &HiddenDb) -> Result<(), DiscoveryError> {
        for &a in db.schema().ranking_attrs() {
            if db.schema().attr(a).interface != InterfaceType::Rq {
                return Err(DiscoveryError::UnsupportedInterface {
                    reason: format!(
                        "sky-band discovery needs two-ended ranges on every ranking attribute, \
                         but '{}' is {}",
                        db.schema().attr(a).name,
                        db.schema().attr(a).interface.label()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Runs the discovery and returns the top-h sky band.
    pub fn discover_band(&self, db: &HiddenDb) -> Result<SkybandResult, DiscoveryError> {
        Self::check_interface(db)?;
        let attrs: Vec<usize> = db.schema().ranking_attrs().to_vec();
        let k = db.k();
        let mut client = Client::new(db, self.budget);
        // Band-h knowledge base: the incremental index keeps every level of
        // the band current, so neither the per-level expansion nor the final
        // extraction recounts dominance over the retrieved set.
        let mut collector = KnowledgeBase::with_band(attrs.clone(), self.h);
        let mut runs = 0usize;

        // Level 1: the plain skyline.
        let mut completed =
            RqDbSky::run_tree(&mut client, &mut collector, &attrs, Query::select_all(), k)?;
        runs += 1;

        // Levels 2..h: explore the domination subspace of every tuple already
        // known to be on the band. The subspace "tuples dominated by t"
        // (which must exclude t itself) is covered by m boxes, the i-th
        // requiring `A_i > t[A_i]` and `A_j ≥ t[A_j]` elsewhere; RQ-DB-SKY is
        // re-run rooted at each box.
        let mut used_roots: HashSet<u64> = HashSet::new();
        if completed {
            'levels: for level in 1..self.h {
                let band_prev = collector.band_tuples(level);
                for t in band_prev {
                    if !used_roots.insert(t.id) {
                        continue;
                    }
                    for &strict in &attrs {
                        let root = Query::new(
                            attrs
                                .iter()
                                .map(|&a| {
                                    if a == strict {
                                        Predicate::gt(a, t.values[a])
                                    } else {
                                        Predicate::ge(a, t.values[a])
                                    }
                                })
                                .collect(),
                        );
                        if root.is_unsatisfiable(db.schema()) {
                            // t already holds the worst possible value on
                            // the strict attribute; the box is empty.
                            continue;
                        }
                        completed =
                            RqDbSky::run_tree(&mut client, &mut collector, &attrs, root, k)?;
                        runs += 1;
                        if !completed {
                            break 'levels;
                        }
                    }
                }
            }
        }

        let mut band = collector.band_tuples(self.h);
        band.sort_by_key(|t| t.id);
        let mut retrieved: Vec<Arc<Tuple>> = collector.retrieved_snapshot().to_vec();
        retrieved.sort_by_key(|t| t.id);
        Ok(SkybandResult {
            band,
            retrieved,
            query_cost: client.issued(),
            runs,
            complete: completed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_hidden_db::{SchemaBuilder, SumRanker};
    use skyweb_skyline::{same_ids, skyband};

    fn rq_schema(m: usize, domain: u32) -> skyweb_hidden_db::Schema {
        let mut b = SchemaBuilder::new();
        for i in 0..m {
            b = b.ranking(format!("a{i}"), domain, InterfaceType::Rq);
        }
        b.build()
    }

    /// Duplicate-free test database (general positioning assumption).
    fn pseudo_random_db(m: usize, domain: u32, n: u64, k: usize) -> HiddenDb {
        let domains = vec![domain; m];
        let tuples = skyweb_datagen::synthetic::distinct_cells(&domains, n as usize, 48271);
        HiddenDb::new(rq_schema(m, domain), tuples, Box::new(SumRanker), k)
    }

    #[test]
    fn h_equal_one_is_the_skyline() {
        let db = pseudo_random_db(2, 30, 100, 2);
        let result = RqSkyband::new(1).discover_band(&db).unwrap();
        assert!(result.complete);
        assert_eq!(result.runs, 1);
        let truth = skyband(db.oracle_tuples().as_slice(), db.schema(), 1);
        assert!(same_ids(&result.band, &truth));
    }

    #[test]
    fn top_two_band_matches_ground_truth() {
        let db = pseudo_random_db(2, 25, 120, 2);
        let result = RqSkyband::new(2).discover_band(&db).unwrap();
        assert!(result.complete);
        let truth = skyband(db.oracle_tuples().as_slice(), db.schema(), 2);
        assert!(same_ids(&result.band, &truth));
        assert!(result.runs >= 2);
    }

    #[test]
    fn top_three_band_matches_ground_truth_in_3d() {
        let db = pseudo_random_db(3, 12, 150, 3);
        let result = RqSkyband::new(3).discover_band(&db).unwrap();
        assert!(result.complete);
        let truth = skyband(db.oracle_tuples().as_slice(), db.schema(), 3);
        assert!(same_ids(&result.band, &truth));
    }

    #[test]
    fn band_contains_the_skyline() {
        let db = pseudo_random_db(3, 20, 150, 2);
        let sky = RqSkyband::new(1).discover_band(&db).unwrap().band;
        let db2 = pseudo_random_db(3, 20, 150, 2);
        let band = RqSkyband::new(2).discover_band(&db2).unwrap().band;
        let band_ids: Vec<u64> = band.iter().map(|t| t.id).collect();
        assert!(sky.iter().all(|t| band_ids.contains(&t.id)));
        assert!(band.len() >= sky.len());
    }

    #[test]
    fn rejects_non_rq_interfaces() {
        let schema = SchemaBuilder::new()
            .ranking("a", 10, InterfaceType::Pq)
            .ranking("b", 10, InterfaceType::Rq)
            .build();
        let db = HiddenDb::new(schema, vec![], Box::new(SumRanker), 1);
        assert!(RqSkyband::new(2).discover_band(&db).is_err());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let db = pseudo_random_db(3, 20, 300, 1);
        let result = RqSkyband::with_budget(2, 5).discover_band(&db).unwrap();
        assert!(!result.complete);
        assert!(result.query_cost <= 5);
    }

    #[test]
    fn post_processing_helper_matches_local_skyband() {
        let db = pseudo_random_db(2, 15, 80, 2);
        let all: Vec<Tuple> = db.oracle_tuples().to_vec();
        let a = skyband_of_retrieved(&all, &db, 3);
        let b = skyband(db.oracle_tuples().as_slice(), db.schema(), 3);
        assert!(same_ids(&a, &b));
    }

    #[test]
    #[should_panic(expected = "h >= 1")]
    fn zero_h_panics() {
        let _ = RqSkyband::new(0);
    }
}
