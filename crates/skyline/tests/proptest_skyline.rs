//! Property-based tests of the local skyline / sky-band algorithms.

use proptest::prelude::*;

use skyweb_hidden_db::{dominates_on, Tuple};
use skyweb_skyline::{
    bnl_skyline_on, dnc_skyline_on, dominance_counts, is_skyline_member, same_ids, sfs_skyline_on,
    skyband_on,
};

fn tuples_strategy() -> impl Strategy<Value = Vec<Tuple>> {
    (1usize..=4, 0usize..=60).prop_flat_map(|(m, n)| {
        prop::collection::vec(prop::collection::vec(0u32..20, m), n).prop_map(|rows| {
            rows.into_iter()
                .enumerate()
                .map(|(i, v)| Tuple::new(i as u64, v))
                .collect()
        })
    })
}

fn attrs(tuples: &[Tuple]) -> Vec<usize> {
    (0..tuples.first().map_or(0, Tuple::arity)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// BNL, SFS and divide-and-conquer always agree.
    #[test]
    fn all_skyline_algorithms_agree(tuples in tuples_strategy()) {
        let a = attrs(&tuples);
        let bnl = bnl_skyline_on(&tuples, &a);
        let sfs = sfs_skyline_on(&tuples, &a);
        let dnc = dnc_skyline_on(&tuples, &a);
        prop_assert!(same_ids(&bnl, &sfs));
        prop_assert!(same_ids(&bnl, &dnc));
    }

    /// The skyline contains exactly the non-dominated tuples.
    #[test]
    fn skyline_members_are_exactly_the_non_dominated(tuples in tuples_strategy()) {
        let a = attrs(&tuples);
        let sky = bnl_skyline_on(&tuples, &a);
        let sky_ids: Vec<u64> = sky.iter().map(|t| t.id).collect();
        for t in &tuples {
            let dominated = tuples
                .iter()
                .any(|u| u.id != t.id && dominates_on(u, t, &a));
            prop_assert_eq!(!dominated, sky_ids.contains(&t.id));
            prop_assert_eq!(!dominated, is_skyline_member(t, &tuples, &a));
        }
    }

    /// No skyline member dominates another skyline member.
    #[test]
    fn skyline_is_an_antichain(tuples in tuples_strategy()) {
        let a = attrs(&tuples);
        let sky = bnl_skyline_on(&tuples, &a);
        for s in &sky {
            for t in &sky {
                prop_assert!(!(s.id != t.id && dominates_on(s, t, &a)));
            }
        }
    }

    /// The K-sky-band grows with K, starts at the skyline, and eventually
    /// covers the whole database.
    #[test]
    fn skyband_is_monotone_in_k(tuples in tuples_strategy()) {
        let a = attrs(&tuples);
        let sky = bnl_skyline_on(&tuples, &a);
        let mut prev_len = 0usize;
        for k in 1..=4usize {
            let band = skyband_on(&tuples, &a, k);
            prop_assert!(band.len() >= prev_len);
            if k == 1 {
                prop_assert!(same_ids(&band, &sky));
            }
            prev_len = band.len();
        }
        let everything = skyband_on(&tuples, &a, tuples.len() + 1);
        prop_assert_eq!(everything.len(), tuples.len());
    }

    /// A tuple is in the K-band iff its dominance count is below K.
    #[test]
    fn skyband_matches_dominance_counts(tuples in tuples_strategy(), k in 1usize..4) {
        let a = attrs(&tuples);
        let counts = dominance_counts(&tuples, &a);
        let band = skyband_on(&tuples, &a, k);
        let band_ids: Vec<u64> = band.iter().map(|t| t.id).collect();
        for (t, c) in tuples.iter().zip(counts) {
            prop_assert_eq!(c < k, band_ids.contains(&t.id));
        }
    }
}
