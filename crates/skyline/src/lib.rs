//! # skyweb-skyline
//!
//! Local (full-access) skyline and K-sky-band computation.
//!
//! These are the classical algorithms one uses when the database is *not*
//! hidden — they require access to every tuple. Within the `skyweb` project
//! they serve two purposes:
//!
//! 1. **Ground truth** for tests: discovery algorithms in `skyweb-core` must
//!    return exactly the skyline these algorithms compute.
//! 2. **Post-processing of the BASELINE**: the crawling baseline of the
//!    paper first downloads every tuple through the web interface and then
//!    extracts the skyline locally with one of these algorithms.
//!
//! Three skyline algorithms are provided — block-nested-loop ([`bnl_skyline`]),
//! sort-filter-skyline ([`sfs_skyline`]), and divide-and-conquer
//! ([`dnc_skyline`]) — along with a K-sky-band operator ([`skyband`]). All of
//! them operate on the ranking attributes of a [`skyweb_hidden_db::Schema`],
//! or on an explicit attribute subset (`*_on` variants).
//!
//! ```
//! use skyweb_hidden_db::{InterfaceType, SchemaBuilder, Tuple};
//! use skyweb_skyline::{bnl_skyline, sfs_skyline};
//!
//! let schema = SchemaBuilder::new()
//!     .ranking("x", 10, InterfaceType::Rq)
//!     .ranking("y", 10, InterfaceType::Rq)
//!     .build();
//! let tuples = vec![
//!     Tuple::new(0, vec![5, 1]),
//!     Tuple::new(1, vec![4, 4]),
//!     Tuple::new(2, vec![1, 3]),
//!     Tuple::new(3, vec![3, 2]),
//! ];
//! let sky = bnl_skyline(&tuples, &schema);
//! assert_eq!(sky.len(), 3); // tuple 1 is dominated by tuple 3
//! assert_eq!(sfs_skyline(&tuples, &schema).len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bnl;
mod dnc;
pub mod incremental;
mod sfs;
mod skyband;

pub use bnl::{bnl_skyline, bnl_skyline_on};
pub use dnc::{dnc_skyline, dnc_skyline_on};
pub use sfs::{sfs_skyline, sfs_skyline_on};
pub use skyband::{dominance_counts, skyband, skyband_on};

use std::borrow::Borrow;

use skyweb_hidden_db::{AttrId, Tuple};

/// Sorts a skyline (or any tuple list) by tuple id, producing a canonical
/// order that makes result sets comparable across algorithms.
pub fn canonicalize(mut tuples: Vec<Tuple>) -> Vec<Tuple> {
    tuples.sort_by_key(|t| t.id);
    tuples.dedup_by_key(|t| t.id);
    tuples
}

/// Returns `true` if the two tuple sets contain exactly the same tuple ids.
///
/// Generic over the tuple handles on both sides (`&[Tuple]`,
/// `&[Arc<Tuple>]`, ...), so discovery results — which share their tuples
/// with the database store — compare directly against owned ground truth.
pub fn same_ids<A: Borrow<Tuple>, B: Borrow<Tuple>>(a: &[A], b: &[B]) -> bool {
    let mut ia: Vec<u64> = a.iter().map(|t| t.borrow().id).collect();
    let mut ib: Vec<u64> = b.iter().map(|t| t.borrow().id).collect();
    ia.sort_unstable();
    ia.dedup();
    ib.sort_unstable();
    ib.dedup();
    ia == ib
}

/// Checks whether `candidate` is a skyline tuple of `tuples` on `attrs`,
/// i.e. no tuple (other than itself) dominates it.
pub fn is_skyline_member<B: Borrow<Tuple>>(
    candidate: &Tuple,
    tuples: &[B],
    attrs: &[AttrId],
) -> bool {
    !tuples
        .iter()
        .map(Borrow::borrow)
        .any(|t| t.id != candidate.id && skyweb_hidden_db::dominates_on(t, candidate, attrs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_hidden_db::{InterfaceType, SchemaBuilder};

    #[test]
    fn canonicalize_sorts_and_dedups() {
        let tuples = vec![
            Tuple::new(3, vec![1]),
            Tuple::new(1, vec![2]),
            Tuple::new(3, vec![1]),
        ];
        let canon = canonicalize(tuples);
        assert_eq!(canon.iter().map(|t| t.id).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn same_ids_ignores_order_and_duplicates() {
        let a = vec![Tuple::new(1, vec![0]), Tuple::new(2, vec![0])];
        let b = vec![
            Tuple::new(2, vec![0]),
            Tuple::new(1, vec![0]),
            Tuple::new(2, vec![0]),
        ];
        assert!(same_ids(&a, &b));
        let c = vec![Tuple::new(3, vec![0])];
        assert!(!same_ids(&a, &c));
    }

    #[test]
    fn skyline_membership_check() {
        let schema = SchemaBuilder::new()
            .ranking("x", 10, InterfaceType::Rq)
            .ranking("y", 10, InterfaceType::Rq)
            .build();
        let tuples = vec![Tuple::new(0, vec![1, 1]), Tuple::new(1, vec![2, 2])];
        assert!(is_skyline_member(
            &tuples[0],
            &tuples,
            schema.ranking_attrs()
        ));
        assert!(!is_skyline_member(
            &tuples[1],
            &tuples,
            schema.ranking_attrs()
        ));
    }
}
