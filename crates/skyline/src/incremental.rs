//! Incremental skyline / sky-band maintenance — the client-facing face of
//! the shared dominance-index subsystem.
//!
//! The batch algorithms of this crate ([`crate::bnl_skyline`],
//! [`crate::sfs_skyline`], [`crate::skyband`]) recompute their answer from
//! a complete tuple set. Discovery clients and the hidden database's
//! skyline-aware rankers instead need *incremental* maintenance: tuples
//! arrive one response at a time, and the skyline (or top-h sky band) of
//! everything seen so far must stay current after every insertion.
//!
//! The implementation lives in `skyweb-hidden-db` (`IncrementalSkyline`,
//! `DominanceIndex`) because the dependency arrow between the crates points
//! that way — this crate depends on `skyweb-hidden-db` for [`Tuple`], and
//! the database's rankers consume the same structure server-side. This
//! module re-exports it as the canonical client-side entry point and adds
//! the batch conveniences that belong at this crate's altitude.
//!
//! ```
//! use skyweb_hidden_db::Tuple;
//! use skyweb_skyline::incremental::incremental_skyline_on;
//!
//! let tuples = vec![
//!     Tuple::new(0, vec![5, 1]),
//!     Tuple::new(1, vec![4, 4]),
//!     Tuple::new(2, vec![1, 3]),
//!     Tuple::new(3, vec![3, 2]),
//! ];
//! assert_eq!(incremental_skyline_on(&tuples, &[0, 1]).len(), 3);
//! ```

use std::borrow::Borrow;
use std::sync::Arc;

use skyweb_hidden_db::{AttrId, Tuple};

pub use skyweb_hidden_db::{DominanceIndex, IncrementalSkyline};

/// Computes the skyline of `tuples` on `attrs` by feeding them through an
/// [`IncrementalSkyline`] — a third batch strategy alongside BNL and SFS,
/// and the one the differential tests pin against both.
pub fn incremental_skyline_on<B: Borrow<Tuple>>(tuples: &[B], attrs: &[AttrId]) -> Vec<Tuple> {
    let mut sky = IncrementalSkyline::new(attrs.to_vec());
    for t in tuples {
        sky.insert(Arc::new(t.borrow().clone()));
    }
    sky.skyline().map(|t| t.as_ref().clone()).collect()
}

/// Computes the top-`h` sky band of `tuples` on `attrs` incrementally —
/// the streaming counterpart of [`crate::skyband_on`].
pub fn incremental_skyband_on<B: Borrow<Tuple>>(
    tuples: &[B],
    attrs: &[AttrId],
    h: usize,
) -> Vec<Tuple> {
    let mut sky = IncrementalSkyline::with_band(attrs.to_vec(), h);
    for t in tuples {
        sky.insert(Arc::new(t.borrow().clone()));
    }
    sky.iter().map(|t| t.as_ref().clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bnl_skyline_on, same_ids, skyband_on};

    fn pseudo_random(n: u64, m: usize, domain: u32) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                let values = (0..m)
                    .map(|j| ((i * 2654435761 + j as u64 * 40503 + 11) % u64::from(domain)) as u32)
                    .collect();
                Tuple::new(i, values)
            })
            .collect()
    }

    #[test]
    fn incremental_skyline_agrees_with_bnl() {
        for (n, m, domain) in [(50, 2, 8), (200, 3, 16), (120, 4, 6)] {
            let tuples = pseudo_random(n, m, domain);
            let attrs: Vec<AttrId> = (0..m).collect();
            let inc = incremental_skyline_on(&tuples, &attrs);
            let bnl = bnl_skyline_on(&tuples, &attrs);
            assert!(same_ids(&inc, &bnl), "n={n}, m={m}, domain={domain}");
        }
    }

    #[test]
    fn incremental_skyband_agrees_with_batch_skyband() {
        let tuples = pseudo_random(150, 3, 10);
        let attrs = [0usize, 1, 2];
        for h in 1..=4 {
            let inc = incremental_skyband_on(&tuples, &attrs, h);
            let batch = skyband_on(&tuples, &attrs, h);
            assert!(same_ids(&inc, &batch), "h={h}");
        }
    }
}
