//! Block-nested-loop (BNL) skyline computation (Börzsönyi et al., ICDE 2001).
//!
//! The classic in-memory skyline algorithm: maintain a window of candidate
//! skyline tuples; every incoming tuple is compared against the window and
//! either discarded (dominated), inserted (incomparable to everything), or
//! inserted while evicting the window tuples it dominates.

use std::borrow::Borrow;

use skyweb_hidden_db::{compare_on, AttrId, Dominance, Schema, Tuple};

/// Computes the skyline of `tuples` over the ranking attributes of `schema`.
///
/// Generic over the tuple handle so it accepts plain `&[Tuple]` slices as
/// well as the `&[Arc<Tuple>]` view of a shared
/// [`skyweb_hidden_db::TupleStore`] (via
/// [`TupleStore::as_slice`](skyweb_hidden_db::TupleStore::as_slice)).
pub fn bnl_skyline<B: Borrow<Tuple>>(tuples: &[B], schema: &Schema) -> Vec<Tuple> {
    bnl_skyline_on(tuples, schema.ranking_attrs())
}

/// Computes the skyline of `tuples` over an explicit attribute subset.
///
/// Tuples whose values on `attrs` are identical are *all* kept (the skyline
/// is defined through strict dominance), matching the paper's general
/// positioning discussion: ties on every ranking attribute do not dominate
/// each other.
pub fn bnl_skyline_on<B: Borrow<Tuple>>(tuples: &[B], attrs: &[AttrId]) -> Vec<Tuple> {
    let mut window: Vec<&Tuple> = Vec::new();
    'next: for t in tuples.iter().map(Borrow::borrow) {
        let mut i = 0;
        while i < window.len() {
            match compare_on(window[i], t, attrs) {
                Dominance::Dominates => continue 'next,
                Dominance::DominatedBy => {
                    window.swap_remove(i);
                }
                Dominance::Equal | Dominance::Incomparable => i += 1,
            }
        }
        window.push(t);
    }
    window.into_iter().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_hidden_db::{InterfaceType, SchemaBuilder};

    fn schema(m: usize) -> Schema {
        let mut b = SchemaBuilder::new();
        for i in 0..m {
            b = b.ranking(format!("a{i}"), 1000, InterfaceType::Rq);
        }
        b.build()
    }

    #[test]
    fn paper_figure2_example() {
        // The running example of Figure 2 in the paper.
        let s = schema(3);
        let tuples = vec![
            Tuple::new(1, vec![5, 1, 9]),
            Tuple::new(2, vec![4, 4, 8]),
            Tuple::new(3, vec![1, 3, 7]),
            Tuple::new(4, vec![3, 2, 3]),
        ];
        let sky = bnl_skyline(&tuples, &s);
        // t2 = (4,4,8) is dominated by t4 = (3,2,3); the other three tuples
        // are the skyline (as in Figure 3 of the paper).
        let ids: Vec<u64> = sky.iter().map(|t| t.id).collect();
        assert_eq!(sky.len(), 3);
        assert!(ids.contains(&1) && ids.contains(&3) && ids.contains(&4));
    }

    #[test]
    fn dominated_tuples_are_removed() {
        let s = schema(2);
        let tuples = vec![
            Tuple::new(0, vec![3, 3]),
            Tuple::new(1, vec![1, 1]),
            Tuple::new(2, vec![2, 5]),
            Tuple::new(3, vec![0, 9]),
        ];
        let sky = bnl_skyline(&tuples, &s);
        let ids: Vec<u64> = sky.iter().map(|t| t.id).collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&1) && ids.contains(&3));
    }

    #[test]
    fn duplicates_on_ranking_attributes_are_all_kept() {
        let s = schema(2);
        let tuples = vec![Tuple::new(0, vec![1, 2]), Tuple::new(1, vec![1, 2])];
        assert_eq!(bnl_skyline(&tuples, &s).len(), 2);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let s = schema(2);
        assert!(bnl_skyline::<Tuple>(&[], &s).is_empty());
        let one = vec![Tuple::new(7, vec![9, 9])];
        assert_eq!(bnl_skyline(&one, &s).len(), 1);
    }

    #[test]
    fn single_attribute_skyline_is_the_minimum() {
        let tuples: Vec<Tuple> = (0..10)
            .map(|i| Tuple::new(i, vec![(i as u32) + 1]))
            .collect();
        let sky = bnl_skyline_on(&tuples, &[0]);
        assert_eq!(sky.len(), 1);
        assert_eq!(sky[0].id, 0);
    }

    #[test]
    fn anti_correlated_diagonal_is_all_skyline() {
        // Anti-correlated data where every tuple is on the skyline.
        let tuples: Vec<Tuple> = (0..20)
            .map(|i| Tuple::new(i, vec![i as u32, 19 - i as u32]))
            .collect();
        assert_eq!(bnl_skyline_on(&tuples, &[0, 1]).len(), 20);
    }
}
