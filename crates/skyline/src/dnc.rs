//! Divide-and-conquer skyline computation.
//!
//! The input is split in half on the first attribute's median, skylines of
//! the two halves are computed recursively, and the halves are merged by
//! removing from the "worse" half every tuple dominated by a tuple of the
//! "better" half. This is the textbook D&C scheme of Börzsönyi et al.,
//! simplified to a two-way partition (sufficient for the data sizes used in
//! this project, and easy to audit).

use std::borrow::Borrow;

use skyweb_hidden_db::{dominates_on, AttrId, Schema, Tuple};

/// Computes the skyline of `tuples` over the ranking attributes of `schema`
/// using divide and conquer.
///
/// Generic over the tuple handle (`&[Tuple]`, `&[Arc<Tuple>]`, ...) like
/// [`crate::bnl_skyline`].
pub fn dnc_skyline<B: Borrow<Tuple>>(tuples: &[B], schema: &Schema) -> Vec<Tuple> {
    dnc_skyline_on(tuples, schema.ranking_attrs())
}

/// Computes the skyline of `tuples` over an explicit attribute subset using
/// divide and conquer.
pub fn dnc_skyline_on<B: Borrow<Tuple>>(tuples: &[B], attrs: &[AttrId]) -> Vec<Tuple> {
    if attrs.is_empty() {
        return tuples.iter().map(|t| t.borrow().clone()).collect();
    }
    let mut refs: Vec<&Tuple> = tuples.iter().map(Borrow::borrow).collect();
    let result = dnc_recurse(&mut refs, attrs);
    result.into_iter().cloned().collect()
}

fn dnc_recurse<'a>(tuples: &mut [&'a Tuple], attrs: &[AttrId]) -> Vec<&'a Tuple> {
    const BASE_CASE: usize = 16;
    if tuples.len() <= BASE_CASE {
        return window_skyline(tuples, attrs);
    }
    let split_attr = attrs[0];
    tuples.sort_by_key(|t| (t.values[split_attr], t.id));
    let mid = tuples.len() / 2;
    let (lo, hi) = tuples.split_at_mut(mid);
    let sky_lo = dnc_recurse(lo, attrs);
    let sky_hi = dnc_recurse(hi, attrs);

    // Tuples in the "better" half (smaller values on the split attribute)
    // can never be dominated by tuples of the "worse" half on that
    // attribute alone, but full dominance must still be checked both ways
    // because the split attribute admits ties.
    let mut merged = sky_lo.clone();
    'next: for t in sky_hi {
        for s in &sky_lo {
            if dominates_on(s, t, attrs) {
                continue 'next;
            }
        }
        merged.push(t);
    }
    // A final cleanup pass guards against sky_lo members dominated by
    // sky_hi members when there are ties on the split attribute.
    window_skyline(&merged, attrs)
}

fn window_skyline<'a>(tuples: &[&'a Tuple], attrs: &[AttrId]) -> Vec<&'a Tuple> {
    let mut window: Vec<&'a Tuple> = Vec::new();
    'next: for &t in tuples {
        let mut i = 0;
        while i < window.len() {
            if dominates_on(window[i], t, attrs) {
                continue 'next;
            }
            if dominates_on(t, window[i], attrs) {
                window.swap_remove(i);
            } else {
                i += 1;
            }
        }
        window.push(t);
    }
    window
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bnl_skyline_on, same_ids};
    use skyweb_hidden_db::{InterfaceType, SchemaBuilder};

    fn schema(m: usize) -> Schema {
        let mut b = SchemaBuilder::new();
        for i in 0..m {
            b = b.ranking(format!("a{i}"), 1000, InterfaceType::Rq);
        }
        b.build()
    }

    fn pseudo_random_tuples(n: u64, m: usize, modulo: u32) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                let values = (0..m)
                    .map(|j| ((i * 2654435761 + j as u64 * 40503) % u64::from(modulo)) as u32)
                    .collect();
                Tuple::new(i, values)
            })
            .collect()
    }

    #[test]
    fn agrees_with_bnl_2d() {
        let tuples = pseudo_random_tuples(300, 2, 97);
        let a = dnc_skyline(&tuples, &schema(2));
        let b = bnl_skyline_on(&tuples, &[0, 1]);
        assert!(same_ids(&a, &b));
    }

    #[test]
    fn agrees_with_bnl_4d() {
        let tuples = pseudo_random_tuples(500, 4, 31);
        let a = dnc_skyline(&tuples, &schema(4));
        let b = bnl_skyline_on(&tuples, &[0, 1, 2, 3]);
        assert!(same_ids(&a, &b));
    }

    #[test]
    fn small_inputs_use_base_case() {
        let tuples = pseudo_random_tuples(10, 3, 11);
        let a = dnc_skyline(&tuples, &schema(3));
        let b = bnl_skyline_on(&tuples, &[0, 1, 2]);
        assert!(same_ids(&a, &b));
    }

    #[test]
    fn no_attributes_returns_everything() {
        let tuples = pseudo_random_tuples(5, 2, 11);
        assert_eq!(dnc_skyline_on(&tuples, &[]).len(), 5);
    }

    #[test]
    fn handles_heavy_ties_on_split_attribute() {
        // Every tuple shares the same value on attribute 0, so the split is
        // degenerate and the cleanup pass must do the work.
        let tuples: Vec<Tuple> = (0..100)
            .map(|i| Tuple::new(i, vec![5, (i % 17) as u32, (i % 13) as u32]))
            .collect();
        let a = dnc_skyline(&tuples, &schema(3));
        let b = bnl_skyline_on(&tuples, &[0, 1, 2]);
        assert!(same_ids(&a, &b));
    }
}
