//! K-sky-band computation.
//!
//! The *K-sky-band* of a database is the set of tuples dominated by **fewer
//! than K** other tuples (Section 7.2 of the paper uses "top-h sky band" for
//! the same notion with `h = K`). The skyline is exactly the 1-sky-band, and
//! the top-k answer of any monotone ranking function with `k <= K` is always
//! contained in the K-sky-band — which is what makes sky bands useful as a
//! downloaded index for third-party ranking services.

use std::borrow::Borrow;

use skyweb_hidden_db::{dominates_on, AttrId, Schema, Tuple};

/// For each tuple, counts how many other tuples dominate it (on `attrs`).
///
/// Complexity is O(n²·m); this is ground-truth machinery, not an
/// interface-facing algorithm.
pub fn dominance_counts<B: Borrow<Tuple>>(tuples: &[B], attrs: &[AttrId]) -> Vec<usize> {
    let mut counts = vec![0usize; tuples.len()];
    for (i, t) in tuples.iter().map(Borrow::borrow).enumerate() {
        for u in tuples.iter().map(Borrow::borrow) {
            if u.id != t.id && dominates_on(u, t, attrs) {
                counts[i] += 1;
            }
        }
    }
    counts
}

/// Computes the K-sky-band of `tuples` over the ranking attributes of
/// `schema`: all tuples dominated by fewer than `k` other tuples.
///
/// Generic over the tuple handle (`&[Tuple]`, `&[Arc<Tuple>]`, ...) like
/// [`crate::bnl_skyline`].
///
/// # Panics
/// Panics if `k == 0` (the 0-sky-band is the empty set by definition and is
/// never what callers want).
pub fn skyband<B: Borrow<Tuple>>(tuples: &[B], schema: &Schema, k: usize) -> Vec<Tuple> {
    skyband_on(tuples, schema.ranking_attrs(), k)
}

/// Computes the K-sky-band over an explicit attribute subset.
pub fn skyband_on<B: Borrow<Tuple>>(tuples: &[B], attrs: &[AttrId], k: usize) -> Vec<Tuple> {
    assert!(k >= 1, "the K-sky-band requires K >= 1");
    let counts = dominance_counts(tuples, attrs);
    tuples
        .iter()
        .zip(counts)
        .filter(|(_, c)| *c < k)
        .map(|(t, _)| t.borrow().clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bnl_skyline, same_ids};
    use skyweb_hidden_db::{InterfaceType, SchemaBuilder};

    fn schema(m: usize) -> Schema {
        let mut b = SchemaBuilder::new();
        for i in 0..m {
            b = b.ranking(format!("a{i}"), 1000, InterfaceType::Rq);
        }
        b.build()
    }

    fn chain(n: u64) -> Vec<Tuple> {
        // t_i = (i, i): a total order, t_i dominated by exactly i tuples.
        (0..n)
            .map(|i| Tuple::new(i, vec![i as u32, i as u32]))
            .collect()
    }

    #[test]
    fn one_skyband_is_the_skyline() {
        let tuples = vec![
            Tuple::new(0, vec![3, 3]),
            Tuple::new(1, vec![1, 1]),
            Tuple::new(2, vec![2, 5]),
            Tuple::new(3, vec![0, 9]),
        ];
        let s = schema(2);
        assert!(same_ids(
            &skyband(&tuples, &s, 1),
            &bnl_skyline(&tuples, &s)
        ));
    }

    #[test]
    fn skyband_grows_with_k() {
        let tuples = chain(10);
        let s = schema(2);
        for k in 1..=10 {
            assert_eq!(skyband(&tuples, &s, k).len(), k);
        }
        assert_eq!(skyband(&tuples, &s, 50).len(), 10);
    }

    #[test]
    fn skyband_is_monotone_in_k() {
        let tuples: Vec<Tuple> = (0..60)
            .map(|i| Tuple::new(i, vec![(i * 17 % 23) as u32, (i * 5 % 19) as u32]))
            .collect();
        let s = schema(2);
        let mut prev = 0;
        for k in 1..6 {
            let band = skyband(&tuples, &s, k);
            assert!(band.len() >= prev, "sky band must not shrink as K grows");
            prev = band.len();
        }
    }

    #[test]
    fn dominance_counts_on_chain() {
        let tuples = chain(5);
        let counts = dominance_counts(&tuples, &[0, 1]);
        assert_eq!(counts, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "K >= 1")]
    fn zero_k_panics() {
        let _ = skyband(&chain(3), &schema(2), 0);
    }
}
