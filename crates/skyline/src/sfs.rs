//! Sort-Filter-Skyline (SFS) computation (Chomicki et al., ICDE 2003).
//!
//! Tuples are first sorted by a monotone preference function (here: the sum
//! of rank values, ties broken by id). After sorting, a tuple can only be
//! dominated by tuples that appear *before* it, so a single forward pass
//! that compares each tuple against the already-accepted skyline suffices —
//! accepted tuples are never evicted, unlike BNL.

use std::borrow::Borrow;

use skyweb_hidden_db::{dominates_on, AttrId, Schema, Tuple};

/// Computes the skyline of `tuples` over the ranking attributes of `schema`
/// using the sort-filter-skyline strategy.
///
/// Generic over the tuple handle (`&[Tuple]`, `&[Arc<Tuple>]`, ...) like
/// [`crate::bnl_skyline`].
pub fn sfs_skyline<B: Borrow<Tuple>>(tuples: &[B], schema: &Schema) -> Vec<Tuple> {
    sfs_skyline_on(tuples, schema.ranking_attrs())
}

/// Computes the skyline of `tuples` over an explicit attribute subset using
/// the sort-filter-skyline strategy.
pub fn sfs_skyline_on<B: Borrow<Tuple>>(tuples: &[B], attrs: &[AttrId]) -> Vec<Tuple> {
    let mut sorted: Vec<&Tuple> = tuples.iter().map(Borrow::borrow).collect();
    sorted.sort_by_key(|t| {
        let sum: u64 = attrs.iter().map(|&a| u64::from(t.values[a])).sum();
        (sum, t.id)
    });

    let mut skyline: Vec<&Tuple> = Vec::new();
    'next: for t in sorted {
        for s in &skyline {
            if dominates_on(s, t, attrs) {
                continue 'next;
            }
        }
        skyline.push(t);
    }
    skyline.into_iter().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bnl_skyline_on, same_ids};
    use skyweb_hidden_db::{InterfaceType, SchemaBuilder};

    fn schema(m: usize) -> Schema {
        let mut b = SchemaBuilder::new();
        for i in 0..m {
            b = b.ranking(format!("a{i}"), 1000, InterfaceType::Rq);
        }
        b.build()
    }

    #[test]
    fn agrees_with_bnl_on_small_example() {
        let tuples = vec![
            Tuple::new(0, vec![3, 3, 1]),
            Tuple::new(1, vec![1, 1, 9]),
            Tuple::new(2, vec![2, 5, 2]),
            Tuple::new(3, vec![0, 9, 5]),
            Tuple::new(4, vec![4, 4, 4]),
        ];
        let a = sfs_skyline_on(&tuples, &[0, 1, 2]);
        let b = bnl_skyline_on(&tuples, &[0, 1, 2]);
        assert!(same_ids(&a, &b));
    }

    #[test]
    fn accepted_tuples_are_never_dominated_later() {
        // The presort guarantees the monotone property; verify the result is
        // a valid skyline (no member dominates another).
        let tuples: Vec<Tuple> = (0..50)
            .map(|i| Tuple::new(i, vec![(i * 7 % 23) as u32, (i * 13 % 19) as u32]))
            .collect();
        let sky = sfs_skyline(&tuples, &schema(2));
        for a in &sky {
            for b in &sky {
                assert!(!dominates_on(a, b, &[0, 1]) || a.id == b.id);
            }
        }
    }

    #[test]
    fn empty_input() {
        assert!(sfs_skyline::<Tuple>(&[], &schema(3)).is_empty());
    }

    #[test]
    fn all_identical_tuples_survive() {
        let tuples: Vec<Tuple> = (0..5).map(|i| Tuple::new(i, vec![2, 2])).collect();
        assert_eq!(sfs_skyline(&tuples, &schema(2)).len(), 5);
    }
}
