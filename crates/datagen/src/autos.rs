//! A synthetic stand-in for the Yahoo! Autos used-car scenario of the
//! paper's online experiment: 125,149 cars listed within 30 miles of New
//! York City, with three ranking attributes — Price (lower preferred),
//! Mileage (lower preferred) and Year (newer preferred) — all exposed as
//! two-ended ranges, ranked by price low-to-high, k = 50.
//!
//! Newer, low-mileage cars cost more, so the three attributes trade off
//! against each other and the skyline is long (the paper finds 1,601
//! skyline cars).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skyweb_hidden_db::{InterfaceType, SchemaBuilder, Tuple, Value};

use crate::Dataset;

/// Domain sizes of the generated attributes.
pub mod domains {
    /// Price buckets of ~$50 (rank 0 = cheapest).
    pub const PRICE: u32 = 4000;
    /// Mileage buckets of ~100 miles (rank 0 = lowest mileage).
    pub const MILEAGE: u32 = 3000;
    /// Model year; rank 0 = the newest model year (2015 in the paper's
    /// timeframe), rank 29 = a 30-year-old car.
    pub const YEAR: u32 = 30;
    /// Make (filtering attribute).
    pub const MAKE: u32 = 40;
}

/// Configuration for the Yahoo! Autos-like generator.
#[derive(Debug, Clone, Copy)]
pub struct AutosConfig {
    /// Number of listings. The paper's snapshot had 125,149.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AutosConfig {
    fn default() -> Self {
        AutosConfig {
            n: 125_149,
            seed: 30,
        }
    }
}

fn clamp(v: f64, domain: Value) -> Value {
    v.round().clamp(0.0, f64::from(domain - 1)) as Value
}

/// Generates the used-car listing table.
pub fn generate(config: &AutosConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);

    let schema = SchemaBuilder::new()
        .ranking("price", domains::PRICE, InterfaceType::Rq)
        .ranking("mileage", domains::MILEAGE, InterfaceType::Rq)
        .ranking("year", domains::YEAR, InterfaceType::Rq)
        .filtering("make", domains::MAKE)
        .build();

    let tuples: Vec<Tuple> = (0..config.n as u64)
        .map(|id| {
            // Age in years, skewed towards newer cars on a dealer-heavy site.
            let age: f64 = {
                let u: f64 = rng.gen_range(0.0f64..1.0);
                (u * u * 28.0).min(29.0)
            };
            // Mileage grows with age (~11k miles/year) plus usage noise.
            let miles = (age * 11_000.0 + rng.gen_range(0.0..30_000.0)).min(299_000.0);
            // Price: depreciates with age and mileage from a model-specific
            // new price.
            let new_price = rng.gen_range(16_000.0..90_000.0);
            let price_usd = (new_price * (0.85f64).powf(age) - miles * 0.04
                + rng.gen_range(-1500.0..1500.0))
            .max(500.0);

            let price = clamp(price_usd / 50.0, domains::PRICE);
            let mileage = clamp(miles / 100.0, domains::MILEAGE);
            let year = clamp(age, domains::YEAR);
            let make = rng.gen_range(0..domains::MAKE);

            Tuple::new(id, vec![price, mileage, year, make])
        })
        .collect();

    Dataset::new("yahoo-autos", schema, tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_skyline::bnl_skyline_on;

    fn small() -> Dataset {
        generate(&AutosConfig { n: 8000, seed: 5 })
    }

    #[test]
    fn schema_matches_yahoo_autos() {
        let ds = small();
        assert_eq!(ds.schema.num_ranking(), 3);
        assert!(ds
            .schema
            .ranking_attrs()
            .iter()
            .all(|&a| ds.schema.attr(a).interface == InterfaceType::Rq));
    }

    #[test]
    fn values_stay_inside_domains() {
        let _db = small().into_db_sum(50);
    }

    #[test]
    fn newer_cars_cost_more_on_average() {
        let ds = small();
        let price = ds.schema.attr_by_name("price").unwrap();
        let year = ds.schema.attr_by_name("year").unwrap();
        let (mut new_sum, mut new_cnt, mut old_sum, mut old_cnt) = (0.0, 0usize, 0.0, 0usize);
        for t in &ds.tuples {
            if t.values[year] <= 2 {
                new_sum += f64::from(t.values[price]);
                new_cnt += 1;
            } else if t.values[year] >= 10 {
                old_sum += f64::from(t.values[price]);
                old_cnt += 1;
            }
        }
        assert!(new_cnt > 0 && old_cnt > 0);
        // Lower price rank = cheaper, so newer cars should have a HIGHER
        // average price rank? No: price rank is the bucketed price itself
        // (rank 0 = cheapest), so newer cars should have a higher average.
        assert!(new_sum / new_cnt as f64 > old_sum / old_cnt as f64);
    }

    #[test]
    fn skyline_is_a_long_frontier() {
        let ds = small();
        let sky = bnl_skyline_on(&ds.tuples, ds.schema.ranking_attrs());
        assert!(
            sky.len() > 30,
            "expected a long trade-off frontier, got {}",
            sky.len()
        );
        assert!(sky.len() < ds.len() / 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&AutosConfig { n: 500, seed: 77 });
        let b = generate(&AutosConfig { n: 500, seed: 77 });
        assert_eq!(a.tuples, b.tuples);
    }
}
