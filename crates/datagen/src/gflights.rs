//! A synthetic stand-in for the Google Flights (QPX API) scenario of the
//! paper's online experiment: a traveller looks for a one-way flight on a
//! given route and date, preferring fewer stops, lower price, shorter
//! connection time and a later departure.
//!
//! The QPX interface of the paper supports single-ended ranges (SQ) on
//! Stops, Price and ConnectionDuration, a two-ended range (RQ) on
//! DepartureTime, ranks answers by price (low to high), and — crucially —
//! the experiments were run with `k = 1` and a quota of 50 free queries per
//! day. Each *instance* is one route/date: a small itinerary list whose
//! skyline has a handful of flights (the paper reports 4–11).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skyweb_hidden_db::{InterfaceType, SchemaBuilder, Tuple, Value};

use crate::Dataset;

/// Domain sizes of the itinerary attributes.
pub mod domains {
    /// Number of stops: 0, 1, 2+ (PQ on most sites, SQ on QPX).
    pub const STOPS: u32 = 3;
    /// Price buckets of ~$25 (rank 0 = cheapest).
    pub const PRICE: u32 = 120;
    /// Total connection duration in 30-minute buckets.
    pub const CONNECTION: u32 = 64;
    /// Departure time in 90-minute slots; rank 0 = latest departure
    /// (the traveller prefers to leave after a full day of work).
    pub const DEPARTURE: u32 = 16;
}

/// Configuration for one route/date instance.
#[derive(Debug, Clone, Copy)]
pub struct GFlightsConfig {
    /// Number of itineraries offered on the route/date (typically a few
    /// hundred).
    pub itineraries: usize,
    /// RNG seed (vary it to get different route/date instances).
    pub seed: u64,
}

impl Default for GFlightsConfig {
    fn default() -> Self {
        GFlightsConfig {
            itineraries: 120,
            seed: 0,
        }
    }
}

fn clamp(v: f64, domain: Value) -> Value {
    v.round().clamp(0.0, f64::from(domain - 1)) as Value
}

/// Generates one route/date itinerary list.
pub fn generate_instance(config: &GFlightsConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);

    let schema = SchemaBuilder::new()
        .ranking("stops", domains::STOPS, InterfaceType::Sq)
        .ranking("price", domains::PRICE, InterfaceType::Sq)
        .ranking("connection", domains::CONNECTION, InterfaceType::Sq)
        .ranking("departure", domains::DEPARTURE, InterfaceType::Rq)
        .build();

    // Route-specific base fare so that different instances differ.
    let base_fare = rng.gen_range(80.0..450.0);

    let tuples: Vec<Tuple> = (0..config.itineraries as u64)
        .map(|id| {
            let stops = *[0u32, 1, 1, 2, 2, 2].get(rng.gen_range(0..6)).unwrap_or(&2);
            // Departure spread through the day; rank 0 = latest.
            let slot = rng.gen_range(0..domains::DEPARTURE);
            let departure = domains::DEPARTURE - 1 - slot;
            // Nonstop flights carry a modest premium; late-evening flights
            // are the discounted red-eyes (so the traveller's preferred
            // departures also tend to be the cheaper ones, which is what
            // keeps the real skyline down to a handful of flights).
            let price_usd = base_fare * (1.20 - 0.08 * f64::from(stops))
                + 4.0 * f64::from(departure)
                + rng.gen_range(0.0..90.0);
            let connection_min = if stops == 0 {
                0.0
            } else {
                rng.gen_range(35.0..(stops as f64) * 500.0)
            };

            Tuple::new(
                id,
                vec![
                    stops,
                    clamp(price_usd / 25.0, domains::PRICE),
                    clamp(connection_min / 30.0, domains::CONNECTION),
                    departure,
                ],
            )
        })
        .collect();

    Dataset::new(format!("gflights-{}", config.seed), schema, tuples)
}

/// Generates a batch of independent route/date instances (the paper uses
/// 50 random airport pairs/dates and reports the average).
pub fn generate_instances(count: usize, itineraries: usize, seed: u64) -> Vec<Dataset> {
    (0..count)
        .map(|i| {
            generate_instance(&GFlightsConfig {
                itineraries,
                seed: seed.wrapping_add(i as u64 * 7919),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_skyline::bnl_skyline_on;

    #[test]
    fn schema_matches_qpx() {
        let ds = generate_instance(&GFlightsConfig::default());
        assert_eq!(ds.schema.num_ranking(), 4);
        assert_eq!(
            ds.schema
                .attr(ds.schema.attr_by_name("stops").unwrap())
                .interface,
            InterfaceType::Sq
        );
        assert_eq!(
            ds.schema
                .attr(ds.schema.attr_by_name("departure").unwrap())
                .interface,
            InterfaceType::Rq
        );
    }

    #[test]
    fn values_stay_inside_domains() {
        let _db = generate_instance(&GFlightsConfig::default()).into_db_sum(1);
    }

    #[test]
    fn nonstop_flights_have_zero_connection_time() {
        let ds = generate_instance(&GFlightsConfig {
            itineraries: 300,
            seed: 3,
        });
        let stops = ds.schema.attr_by_name("stops").unwrap();
        let conn = ds.schema.attr_by_name("connection").unwrap();
        for t in &ds.tuples {
            if t.values[stops] == 0 {
                assert_eq!(t.values[conn], 0);
            }
        }
    }

    #[test]
    fn skyline_has_a_handful_of_flights() {
        // The paper reports 4-11 skyline flights per instance; our instances
        // should land in the same ballpark (a few to a few dozen).
        for seed in 0..5 {
            let ds = generate_instance(&GFlightsConfig {
                itineraries: 120,
                seed,
            });
            let sky = bnl_skyline_on(&ds.tuples, ds.schema.ranking_attrs());
            assert!(
                (2..30).contains(&sky.len()),
                "instance {seed} has {} skyline flights",
                sky.len()
            );
        }
    }

    #[test]
    fn instances_differ_by_seed() {
        let batch = generate_instances(3, 100, 1);
        assert_eq!(batch.len(), 3);
        assert_ne!(batch[0].tuples, batch[1].tuples);
    }
}
