//! A generated dataset: schema + tuples, with transformation helpers used by
//! the experiment harness (sampling, projecting, changing interface types).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use skyweb_hidden_db::{
    AttributeRole, AttributeSpec, HiddenDb, InterfaceType, Ranker, Schema, SumRanker, Tuple,
};

/// A fully materialized synthetic dataset, ready to be placed behind a
/// hidden-database interface.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable dataset name (used in experiment reports).
    pub name: String,
    /// The schema (attribute names, domain sizes, interface types).
    pub schema: Schema,
    /// The tuples, with values already in rank space.
    pub tuples: Vec<Tuple>,
}

impl Dataset {
    /// Creates a dataset from parts.
    pub fn new(name: impl Into<String>, schema: Schema, tuples: Vec<Tuple>) -> Self {
        Dataset {
            name: name.into(),
            schema,
            tuples,
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` if the dataset has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Draws a uniform random sample of `n` tuples (without replacement).
    /// If `n >= len()`, the whole dataset is returned (shuffled).
    ///
    /// This mirrors the paper's procedure for the "impact of n" experiments,
    /// which draw uniform random samples of the DOT dataset.
    pub fn sample(&self, n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tuples = self.tuples.clone();
        tuples.shuffle(&mut rng);
        tuples.truncate(n);
        Dataset {
            name: format!("{}-sample{}", self.name, n),
            schema: self.schema.clone(),
            tuples,
        }
    }

    /// Projects the dataset onto a subset of attributes given by name,
    /// re-mapping every tuple accordingly. Attribute order follows the
    /// order of `names`.
    ///
    /// # Panics
    /// Panics if any name does not exist in the schema.
    pub fn project(&self, names: &[&str]) -> Dataset {
        let ids: Vec<usize> = names
            .iter()
            .map(|n| {
                self.schema
                    .attr_by_name(n)
                    .unwrap_or_else(|| panic!("unknown attribute {n}"))
            })
            .collect();
        let specs: Vec<AttributeSpec> = ids.iter().map(|&i| self.schema.attr(i).clone()).collect();
        let schema = Schema::new(specs);
        let tuples = self
            .tuples
            .iter()
            .map(|t| Tuple::new(t.id, ids.iter().map(|&i| t.values[i]).collect()))
            .collect();
        Dataset {
            name: format!("{}-proj{}", self.name, names.len()),
            schema,
            tuples,
        }
    }

    /// Returns a copy of the dataset in which the named attribute uses a
    /// different search-interface type.
    ///
    /// # Panics
    /// Panics if the attribute does not exist or is a filtering attribute.
    pub fn with_interface(&self, name: &str, interface: InterfaceType) -> Dataset {
        let id = self
            .schema
            .attr_by_name(name)
            .unwrap_or_else(|| panic!("unknown attribute {name}"));
        let mut specs: Vec<AttributeSpec> = self.schema.attrs().to_vec();
        assert_eq!(
            specs[id].role,
            AttributeRole::Ranking,
            "cannot change the interface of a filtering attribute"
        );
        specs[id].interface = interface;
        Dataset {
            name: self.name.clone(),
            schema: Schema::new(specs),
            tuples: self.tuples.clone(),
        }
    }

    /// Keeps only tuples satisfying `keep`.
    pub fn retain(&self, keep: impl Fn(&Tuple) -> bool) -> Dataset {
        Dataset {
            name: self.name.clone(),
            schema: self.schema.clone(),
            tuples: self.tuples.iter().filter(|t| keep(t)).cloned().collect(),
        }
    }

    /// Re-discretizes the named attribute into `domain_size` equally sized
    /// rank buckets (`new = old * domain_size / old_domain`), keeping every
    /// tuple. Used by the "impact of domain size" experiment (Figure 17)
    /// where the paper shrinks attribute domains to a target size.
    ///
    /// # Panics
    /// Panics if the attribute does not exist or `domain_size == 0`.
    pub fn rebucket_domain(&self, name: &str, domain_size: u32) -> Dataset {
        assert!(domain_size >= 1, "need at least one bucket");
        let id = self
            .schema
            .attr_by_name(name)
            .unwrap_or_else(|| panic!("unknown attribute {name}"));
        let old_domain = self.schema.attr(id).domain_size.max(1);
        if domain_size >= old_domain {
            return self.clone();
        }
        let mut specs: Vec<AttributeSpec> = self.schema.attrs().to_vec();
        specs[id].domain_size = domain_size;
        let tuples = self
            .tuples
            .iter()
            .map(|t| {
                let mut values = t.values.clone();
                values[id] = ((u64::from(values[id]) * u64::from(domain_size))
                    / u64::from(old_domain)) as u32;
                Tuple::new(t.id, values)
            })
            .collect();
        Dataset {
            name: self.name.clone(),
            schema: Schema::new(specs),
            tuples,
        }
    }

    /// Truncates the domain of the named attribute to its first
    /// `domain_size` rank values, dropping tuples with larger values. This
    /// is the procedure of the paper's "impact of domain size" experiment
    /// (Figure 17).
    pub fn truncate_domain(&self, name: &str, domain_size: u32) -> Dataset {
        let id = self
            .schema
            .attr_by_name(name)
            .unwrap_or_else(|| panic!("unknown attribute {name}"));
        let mut specs: Vec<AttributeSpec> = self.schema.attrs().to_vec();
        specs[id].domain_size = specs[id].domain_size.min(domain_size);
        Dataset {
            name: self.name.clone(),
            schema: Schema::new(specs),
            tuples: self
                .tuples
                .iter()
                .filter(|t| t.values[id] < domain_size)
                .cloned()
                .collect(),
        }
    }

    /// Wraps the dataset in a hidden-database interface with the given
    /// ranking function and top-k constraint.
    pub fn into_db(self, ranker: Box<dyn Ranker>, k: usize) -> HiddenDb {
        HiddenDb::new(self.schema, self.tuples, ranker, k)
    }

    /// Wraps the dataset in a hidden-database interface with the paper's
    /// default SUM ranking function.
    pub fn into_db_sum(self, k: usize) -> HiddenDb {
        self.into_db(Box::new(SumRanker), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_hidden_db::SchemaBuilder;

    fn toy() -> Dataset {
        let schema = SchemaBuilder::new()
            .ranking("a", 10, InterfaceType::Rq)
            .ranking("b", 10, InterfaceType::Sq)
            .filtering("f", 3)
            .build();
        let tuples = (0..20)
            .map(|i| {
                Tuple::new(
                    i,
                    vec![(i % 10) as u32, ((i * 3) % 10) as u32, (i % 3) as u32],
                )
            })
            .collect();
        Dataset::new("toy", schema, tuples)
    }

    #[test]
    fn sample_is_deterministic_and_bounded() {
        let ds = toy();
        let s1 = ds.sample(5, 42);
        let s2 = ds.sample(5, 42);
        assert_eq!(s1.len(), 5);
        assert_eq!(
            s1.tuples.iter().map(|t| t.id).collect::<Vec<_>>(),
            s2.tuples.iter().map(|t| t.id).collect::<Vec<_>>()
        );
        assert_eq!(ds.sample(100, 1).len(), 20);
    }

    #[test]
    fn project_remaps_values() {
        let ds = toy().project(&["b", "a"]);
        assert_eq!(ds.schema.len(), 2);
        assert_eq!(ds.schema.attr(0).name, "b");
        assert_eq!(ds.tuples[7].values, vec![1, 7]);
    }

    #[test]
    fn with_interface_changes_only_that_attribute() {
        let ds = toy().with_interface("a", InterfaceType::Pq);
        assert_eq!(ds.schema.attr(0).interface, InterfaceType::Pq);
        assert_eq!(ds.schema.attr(1).interface, InterfaceType::Sq);
    }

    #[test]
    fn rebucket_domain_keeps_every_tuple() {
        let ds = toy().rebucket_domain("a", 5);
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.schema.attr(0).domain_size, 5);
        assert!(ds.tuples.iter().all(|t| t.values[0] < 5));
        // Re-bucketing to a larger domain is a no-op.
        let same = toy().rebucket_domain("a", 50);
        assert_eq!(same.schema.attr(0).domain_size, 10);
    }

    #[test]
    fn truncate_domain_drops_tuples() {
        let ds = toy().truncate_domain("a", 5);
        assert_eq!(ds.schema.attr(0).domain_size, 5);
        assert!(ds.tuples.iter().all(|t| t.values[0] < 5));
        assert_eq!(ds.len(), 10);
    }

    #[test]
    fn retain_filters() {
        let ds = toy().retain(|t| t.values[2] == 0);
        assert!(ds.tuples.iter().all(|t| t.values[2] == 0));
    }

    #[test]
    fn into_db_preserves_counts() {
        let ds = toy();
        let n = ds.len();
        let db = ds.into_db_sum(5);
        assert_eq!(db.n(), n);
        assert_eq!(db.k(), 5);
    }

    #[test]
    #[should_panic(expected = "unknown attribute")]
    fn project_unknown_attribute_panics() {
        let _ = toy().project(&["nope"]);
    }
}
