//! Builds persistent columnar segment files for the storage benchmarks.
//!
//! ```text
//! segment_build [--out DIR] [--quick] [--n N] [--k K] [--format-version V]
//! ```
//!
//! Writes deterministic segments (same seeds as the figure harnesses, so
//! repeated builds are byte-identical):
//!
//! * `synthetic_<n>.seg` — independent 4-attribute synthetic table
//!   (n = 1,000,000 by default; `--quick` shrinks to 100,000; `--n` picks
//!   any size, e.g. 10,000,000 for the scale-out run),
//! * `flights_<n>.seg` — the DOT-like flight table over the nine primary
//!   ranking attributes (full DOT cardinality 457,013; `--quick` 25,000).
//!
//! One `name path bytes n` line per segment goes to stdout (machine
//! readable, consumed by the CI storage job); progress goes to stderr.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use skyweb_datagen::synthetic::{Correlation, SyntheticConfig};
use skyweb_datagen::{flights_dot, synthetic};
use skyweb_hidden_db::{HiddenDb, InterfaceType, SegmentWriter, SEGMENT_VERSION};

fn usage() {
    eprintln!("usage: segment_build [--out DIR] [--quick] [--n N] [--k K] [--format-version V]");
}

/// The deterministic synthetic database the storage benchmarks measure:
/// 4 independent uniform attributes, domain 1,000, seed 42.
fn synthetic_db(n: usize, k: usize) -> HiddenDb {
    synthetic::generate(&SyntheticConfig {
        n,
        m: 4,
        domain_size: 1_000,
        correlation: Correlation::Independent,
        seed: 42,
    })
    .into_db_sum(k)
}

/// The DOT-like flight database over the nine primary ranking attributes,
/// all as two-ended ranges (the fig14 configuration, seed 2015).
fn flights_db(n: usize, k: usize) -> HiddenDb {
    let base = flights_dot::generate(&flights_dot::FlightsDotConfig { n, seed: 2015 });
    let names: Vec<&str> = flights_dot::PRIMARY_RANKING.to_vec();
    let mut ds = base.project(&names);
    for name in &names {
        ds = ds.with_interface(name, InterfaceType::Rq);
    }
    ds.into_db_sum(k)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = PathBuf::from("segments");
    let mut quick = false;
    let mut n_override: Option<usize> = None;
    let mut k = 10usize;
    let mut format_version = SEGMENT_VERSION;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                let Some(dir) = args.get(i + 1) else {
                    usage();
                    return ExitCode::FAILURE;
                };
                out = PathBuf::from(dir);
                i += 1;
            }
            "--quick" => quick = true,
            "--n" => {
                let Some(n) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--n needs a positive integer value");
                    usage();
                    return ExitCode::FAILURE;
                };
                n_override = Some(n);
                i += 1;
            }
            "--k" => {
                let parsed = args.get(i + 1).and_then(|v| v.parse::<usize>().ok());
                let Some(v) = parsed.filter(|&v| v >= 1) else {
                    eprintln!("--k needs a positive integer value");
                    usage();
                    return ExitCode::FAILURE;
                };
                k = v;
                i += 1;
            }
            "--format-version" => {
                let parsed = args.get(i + 1).and_then(|v| v.parse::<u16>().ok());
                let Some(v) = parsed.filter(|v| (1..=SEGMENT_VERSION).contains(v)) else {
                    eprintln!("--format-version needs a version in 1..={SEGMENT_VERSION}");
                    usage();
                    return ExitCode::FAILURE;
                };
                format_version = v;
                i += 1;
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage();
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("cannot create {}: {e}", out.display());
        return ExitCode::FAILURE;
    }

    let synth_n = n_override.unwrap_or(if quick { 100_000 } else { 1_000_000 });
    let flights_n = if quick { 25_000 } else { 457_013 };
    let jobs: Vec<(String, Box<dyn Fn() -> HiddenDb>)> = vec![
        (
            format!("synthetic_{synth_n}"),
            Box::new(move || synthetic_db(synth_n, k)),
        ),
        (
            format!("flights_{flights_n}"),
            Box::new(move || flights_db(flights_n, k)),
        ),
    ];

    for (name, build) in jobs {
        let t = Instant::now();
        let db = build();
        eprintln!(
            "# {name}: built n = {} in {:.1}s",
            db.n(),
            t.elapsed().as_secs_f64()
        );
        let path = out.join(format!("{name}.seg"));
        let t = Instant::now();
        let bytes = match SegmentWriter::new()
            .with_format_version(format_version)
            .write_to_path(&db, &path)
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "# {name}: wrote {bytes} bytes in {:.1}s",
            t.elapsed().as_secs_f64()
        );
        println!("{name} {} {bytes} {}", path.display(), db.n());
    }
    ExitCode::SUCCESS
}
