//! A synthetic stand-in for the US DOT on-time-performance dataset used in
//! the paper's offline experiments (January 2015; 457,013 flights, 28
//! attributes of which 9 ordinal attributes are used for ranking, plus four
//! derived "group" attributes used as extra PQ attributes).
//!
//! The real CSV is not shipped; this generator reproduces the properties
//! that the discovery algorithms can observe through the search interface:
//!
//! * the same ranking attributes with the paper's reported domain-size
//!   range (11 … 4,983),
//! * realistic correlation structure (arrival delay tracks departure delay,
//!   elapsed time tracks air time and taxi times, air time tracks distance),
//! * the two attributes that DOT ships pre-discretized (`delay_group`,
//!   `distance_group`) as point-query (PQ) attributes, and four additional
//!   derived group attributes available for the experiments that need more
//!   PQ attributes,
//! * a filtering attribute (carrier) that plays no role in the skyline.
//!
//! Preference orders: shorter delays/durations rank higher. For `distance`
//! and `distance_group` we adopt the paper's *alternative* configuration
//! (shorter distances preferred), which the authors report behaves the same
//! on the real data; on synthetic data it keeps all nine attributes
//! positively correlated and therefore reproduces the tiny skylines the
//! paper measures. The derived `distance_group_long` attribute provides the
//! original longer-is-better orientation for the point-query experiments
//! that need conflicting PQ attributes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skyweb_hidden_db::{InterfaceType, SchemaBuilder, Tuple, Value};

use crate::Dataset;

/// Domain sizes of the generated attributes, in schema order.
pub mod domains {
    /// Departure delay, minutes (rank 0 = no delay).
    pub const DEP_DELAY: u32 = 1500;
    /// Taxi-out time, minutes.
    pub const TAXI_OUT: u32 = 180;
    /// Taxi-in time, minutes.
    pub const TAXI_IN: u32 = 150;
    /// Actual elapsed (gate-to-gate) time, minutes.
    pub const ACTUAL_ELAPSED: u32 = 1100;
    /// Air time, minutes.
    pub const AIR_TIME: u32 = 720;
    /// Flight distance in miles; rank 0 = the shortest flight.
    pub const DISTANCE: u32 = 4983;
    /// DOT-discretized delay group (PQ).
    pub const DELAY_GROUP: u32 = 15;
    /// DOT-discretized distance group (PQ); rank 0 = shortest group.
    pub const DISTANCE_GROUP: u32 = 11;
    /// Arrival delay, minutes.
    pub const ARRIVAL_DELAY: u32 = 1900;
    /// Derived taxi-out group (PQ).
    pub const TAXI_OUT_GROUP: u32 = 12;
    /// Derived taxi-in group (PQ).
    pub const TAXI_IN_GROUP: u32 = 12;
    /// Derived arrival-delay group (PQ).
    pub const ARRIVAL_DELAY_GROUP: u32 = 15;
    /// Derived air-time group (PQ).
    pub const AIR_TIME_GROUP: u32 = 14;
    /// Distance group with the paper's default preference order (longer
    /// flights preferred; rank 0 = the longest-distance group). PQ.
    pub const DISTANCE_GROUP_LONG: u32 = 11;
    /// Carrier code (filtering attribute; 14 US carriers).
    pub const CARRIER: u32 = 14;
}

/// Names of the nine primary ranking attributes (the paper's offline
/// configuration), in the order used by the experiments.
pub const PRIMARY_RANKING: [&str; 9] = [
    "dep_delay",
    "taxi_out",
    "taxi_in",
    "actual_elapsed",
    "air_time",
    "distance",
    "delay_group",
    "distance_group",
    "arrival_delay",
];

/// Names of the derived group attributes that can serve as additional PQ
/// attributes.
pub const DERIVED_PQ: [&str; 5] = [
    "taxi_out_group",
    "taxi_in_group",
    "arrival_delay_group",
    "air_time_group",
    "distance_group_long",
];

/// Configuration for the DOT-like generator.
#[derive(Debug, Clone, Copy)]
pub struct FlightsDotConfig {
    /// Number of flights to generate. The real dataset has 457,013.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FlightsDotConfig {
    fn default() -> Self {
        FlightsDotConfig {
            n: 457_013,
            seed: 2015,
        }
    }
}

fn clamp(v: f64, domain: Value) -> Value {
    v.round().clamp(0.0, f64::from(domain - 1)) as Value
}

/// Draws an exponential-ish heavy-tailed delay in minutes.
fn heavy_tail_delay(rng: &mut StdRng, scale: f64, max: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-9);
    (-u.ln() * scale).min(max)
}

/// Generates the DOT-like flight table.
pub fn generate(config: &FlightsDotConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);

    let schema = SchemaBuilder::new()
        .ranking("dep_delay", domains::DEP_DELAY, InterfaceType::Rq)
        .ranking("taxi_out", domains::TAXI_OUT, InterfaceType::Rq)
        .ranking("taxi_in", domains::TAXI_IN, InterfaceType::Rq)
        .ranking("actual_elapsed", domains::ACTUAL_ELAPSED, InterfaceType::Rq)
        .ranking("air_time", domains::AIR_TIME, InterfaceType::Rq)
        .ranking("distance", domains::DISTANCE, InterfaceType::Rq)
        .ranking("delay_group", domains::DELAY_GROUP, InterfaceType::Pq)
        .ranking("distance_group", domains::DISTANCE_GROUP, InterfaceType::Pq)
        .ranking("arrival_delay", domains::ARRIVAL_DELAY, InterfaceType::Rq)
        .ranking("taxi_out_group", domains::TAXI_OUT_GROUP, InterfaceType::Pq)
        .ranking("taxi_in_group", domains::TAXI_IN_GROUP, InterfaceType::Pq)
        .ranking(
            "arrival_delay_group",
            domains::ARRIVAL_DELAY_GROUP,
            InterfaceType::Pq,
        )
        .ranking("air_time_group", domains::AIR_TIME_GROUP, InterfaceType::Pq)
        .ranking(
            "distance_group_long",
            domains::DISTANCE_GROUP_LONG,
            InterfaceType::Pq,
        )
        .filtering("carrier", domains::CARRIER)
        .build();

    let tuples: Vec<Tuple> = (0..config.n as u64)
        .map(|id| {
            // Flight distance in miles, mixture of short-haul and long-haul.
            let miles: f64 = if rng.gen_bool(0.75) {
                rng.gen_range(80.0..1500.0)
            } else {
                rng.gen_range(1500.0..4950.0)
            };
            // Cruise speed varies in a narrow band, so air time tracks
            // distance almost deterministically — this (together with the
            // congestion factor below) is what keeps the 9-dimensional
            // skyline of the real DOT data tiny.
            let speed_mph = rng.gen_range(430.0..510.0);
            let air_time = (miles / speed_mph * 60.0 + 12.0).max(15.0);

            // A single airport-congestion factor drives taxi times and most
            // of the departure delay, making the delay attributes highly
            // correlated with each other.
            let congestion: f64 = {
                let u: f64 = rng.gen_range(0.0f64..1.0);
                u * u
            };
            let taxi_out = 8.0 + congestion * 95.0 + rng.gen_range(0.0..6.0);
            let taxi_in = 3.0 + congestion * 45.0 + rng.gen_range(0.0..4.0);
            let dep_delay = if rng.gen_bool((0.75 - 0.5 * congestion).clamp(0.05, 0.95)) {
                rng.gen_range(0.0..5.0)
            } else {
                congestion * heavy_tail_delay(&mut rng, 110.0, 1400.0) + rng.gen_range(0.0..8.0)
            };
            let elapsed = air_time + taxi_out + taxi_in + rng.gen_range(0.0..8.0);
            // Arrival delay tracks departure delay with en-route slack.
            let arrival_delay = (dep_delay + rng.gen_range(-14.0..10.0)).max(0.0);

            let dep_delay_v = clamp(dep_delay, domains::DEP_DELAY);
            let taxi_out_v = clamp(taxi_out, domains::TAXI_OUT);
            let taxi_in_v = clamp(taxi_in, domains::TAXI_IN);
            let elapsed_v = clamp(elapsed, domains::ACTUAL_ELAPSED);
            let air_time_v = clamp(air_time, domains::AIR_TIME);
            // Shorter distance preferred (rank = miles). The paper's default
            // prefers longer distances but reports that reversing the order
            // made little difference on the real data; on synthetic data the
            // shorter-is-better order keeps all nine attributes positively
            // correlated, which reproduces the tiny skyline sizes (|S| < 20)
            // the paper measures on the real DOT table.
            let distance_v = clamp(miles, domains::DISTANCE);
            let arrival_delay_v = clamp(arrival_delay, domains::ARRIVAL_DELAY);

            let delay_group = (arrival_delay_v / 130).min(domains::DELAY_GROUP - 1);
            let distance_group = (distance_v / 500).min(domains::DISTANCE_GROUP - 1);
            let taxi_out_group = (taxi_out_v / 16).min(domains::TAXI_OUT_GROUP - 1);
            let taxi_in_group = (taxi_in_v / 14).min(domains::TAXI_IN_GROUP - 1);
            let arrival_delay_group = (arrival_delay_v / 130).min(domains::ARRIVAL_DELAY_GROUP - 1);
            let air_time_group = (air_time_v / 50).min(domains::AIR_TIME_GROUP - 1);
            // The paper's default distance preference (longer is better):
            // rank 0 = the longest-distance group.
            let distance_group_long = domains::DISTANCE_GROUP_LONG - 1 - distance_group;
            let carrier = rng.gen_range(0..domains::CARRIER);

            Tuple::new(
                id,
                vec![
                    dep_delay_v,
                    taxi_out_v,
                    taxi_in_v,
                    elapsed_v,
                    air_time_v,
                    distance_v,
                    delay_group,
                    distance_group,
                    arrival_delay_v,
                    taxi_out_group,
                    taxi_in_group,
                    arrival_delay_group,
                    air_time_group,
                    distance_group_long,
                    carrier,
                ],
            )
        })
        .collect();

    Dataset::new("flights-dot", schema, tuples)
}

/// Generates the paper's default offline configuration: the nine primary
/// ranking attributes only (projecting away the derived groups), with
/// `delay_group`/`distance_group` as PQ and everything else as RQ.
pub fn generate_primary(config: &FlightsDotConfig) -> Dataset {
    generate(config).project(
        &PRIMARY_RANKING
            .iter()
            .copied()
            .chain(std::iter::once("carrier"))
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_skyline::bnl_skyline_on;

    fn small() -> Dataset {
        generate(&FlightsDotConfig { n: 3000, seed: 7 })
    }

    #[test]
    fn schema_matches_the_paper() {
        let ds = small();
        assert_eq!(ds.schema.num_ranking(), 14);
        assert_eq!(ds.schema.point_attrs().len(), 7);
        let primary = generate_primary(&FlightsDotConfig { n: 100, seed: 7 });
        assert_eq!(primary.schema.num_ranking(), 9);
        assert_eq!(primary.schema.point_attrs().len(), 2);
        // Domain sizes span the range reported in the paper (11 .. 4983).
        let sizes: Vec<u32> = primary
            .schema
            .ranking_attrs()
            .iter()
            .map(|&a| primary.schema.attr(a).domain_size)
            .collect();
        assert_eq!(*sizes.iter().min().unwrap(), 11);
        assert_eq!(*sizes.iter().max().unwrap(), 4983);
    }

    #[test]
    fn values_stay_inside_domains() {
        let ds = small();
        // `HiddenDb::new` asserts every value is inside its domain.
        let _db = ds.into_db_sum(10);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&FlightsDotConfig { n: 200, seed: 3 });
        let b = generate(&FlightsDotConfig { n: 200, seed: 3 });
        assert_eq!(a.tuples, b.tuples);
    }

    #[test]
    fn delays_are_correlated() {
        let ds = small();
        let dep = ds.schema.attr_by_name("dep_delay").unwrap();
        let arr = ds.schema.attr_by_name("arrival_delay").unwrap();
        // Crude correlation check: flights with small departure delay tend
        // to have small arrival delay.
        let mut on_time_arrivals = 0usize;
        let mut on_time = 0usize;
        for t in &ds.tuples {
            if t.values[dep] < 10 {
                on_time += 1;
                if t.values[arr] < 40 {
                    on_time_arrivals += 1;
                }
            }
        }
        assert!(on_time > 0);
        assert!(on_time_arrivals as f64 / on_time as f64 > 0.9);
    }

    #[test]
    fn skyline_is_small_relative_to_n() {
        let ds = small();
        let attrs: Vec<usize> = PRIMARY_RANKING
            .iter()
            .map(|n| ds.schema.attr_by_name(n).unwrap())
            .collect();
        let sky = bnl_skyline_on(&ds.tuples, &attrs);
        assert!(!sky.is_empty());
        assert!(
            sky.len() < ds.len() / 10,
            "skyline ({}) should be much smaller than n ({})",
            sky.len(),
            ds.len()
        );
    }

    #[test]
    fn group_attributes_are_consistent_with_their_source() {
        let ds = small();
        let arr = ds.schema.attr_by_name("arrival_delay").unwrap();
        let grp = ds.schema.attr_by_name("delay_group").unwrap();
        for t in &ds.tuples {
            assert_eq!(
                t.values[grp],
                (t.values[arr] / 130).min(domains::DELAY_GROUP - 1)
            );
        }
    }
}
