//! Controlled synthetic tables: independent, correlated and anti-correlated
//! attribute distributions (the classic skyline-benchmark generators of
//! Börzsönyi et al.), used for the parameter sweeps where the paper needs to
//! control the number of skyline tuples (Figure 6).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skyweb_hidden_db::{InterfaceType, Schema, SchemaBuilder, Tuple, Value};

use crate::Dataset;

/// Correlation structure between the ranking attributes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Correlation {
    /// Attribute values are i.i.d. uniform over the domain.
    Independent,
    /// Attributes are positively correlated with the given strength in
    /// `[0, 1]`: `0.0` behaves like [`Correlation::Independent`], `1.0`
    /// makes all attributes equal. Positive correlation shrinks the skyline.
    Correlated(f64),
    /// Attributes are anti-correlated with the given strength in `[0, 1]`:
    /// tuples are concentrated around the anti-diagonal plane
    /// `sum(values) ≈ const`, which inflates the skyline.
    AntiCorrelated(f64),
}

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Number of tuples.
    pub n: usize,
    /// Number of ranking attributes.
    pub m: usize,
    /// Domain size of every attribute.
    pub domain_size: Value,
    /// Correlation structure.
    pub correlation: Correlation,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            n: 1000,
            m: 3,
            domain_size: 100,
            correlation: Correlation::Independent,
            seed: 0,
        }
    }
}

fn schema(m: usize, domain_size: Value, interface: InterfaceType) -> Schema {
    let mut b = SchemaBuilder::new();
    for i in 0..m {
        b = b.ranking(format!("a{i}"), domain_size, interface);
    }
    b.build()
}

fn clamp_to_domain(v: f64, domain_size: Value) -> Value {
    let max = f64::from(domain_size - 1);
    v.round().clamp(0.0, max) as Value
}

/// Generates a synthetic dataset according to `config`. All attributes are
/// created as two-ended range ([`InterfaceType::Rq`]) attributes; use
/// [`Dataset::with_interface`] to re-declare them as SQ or PQ.
pub fn generate(config: &SyntheticConfig) -> Dataset {
    generate_with_interface(config, InterfaceType::Rq)
}

/// Same as [`generate`] but with an explicit interface type for every
/// attribute.
pub fn generate_with_interface(config: &SyntheticConfig, interface: InterfaceType) -> Dataset {
    assert!(config.m >= 1, "need at least one attribute");
    assert!(
        config.domain_size >= 2,
        "need a domain of at least 2 values"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let d = f64::from(config.domain_size - 1);

    let tuples: Vec<Tuple> = (0..config.n as u64)
        .map(|id| {
            let values: Vec<Value> = match config.correlation {
                Correlation::Independent => (0..config.m)
                    .map(|_| rng.gen_range(0..config.domain_size))
                    .collect(),
                Correlation::Correlated(strength) => {
                    let strength = strength.clamp(0.0, 1.0);
                    let base = rng.gen_range(0.0..=d);
                    (0..config.m)
                        .map(|_| {
                            let independent = rng.gen_range(0.0..=d);
                            clamp_to_domain(
                                strength * base + (1.0 - strength) * independent,
                                config.domain_size,
                            )
                        })
                        .collect()
                }
                Correlation::AntiCorrelated(strength) => {
                    let strength = strength.clamp(0.0, 1.0);
                    // Draw a point on the anti-diagonal plane sum = m*d/2 by
                    // distributing a fixed budget, then blend with an
                    // independent draw.
                    let mut weights: Vec<f64> =
                        (0..config.m).map(|_| rng.gen_range(0.01..1.0)).collect();
                    let total: f64 = weights.iter().sum();
                    let budget = d * config.m as f64 / 2.0;
                    for w in &mut weights {
                        *w = (*w / total) * budget;
                    }
                    (0..config.m)
                        .map(|i| {
                            let independent = rng.gen_range(0.0..=d);
                            clamp_to_domain(
                                strength * weights[i] + (1.0 - strength) * independent,
                                config.domain_size,
                            )
                        })
                        .collect()
                }
            };
            Tuple::new(id, values)
        })
        .collect();

    Dataset::new(
        format!("synthetic-{:?}", config.correlation),
        schema(config.m, config.domain_size, interface),
        tuples,
    )
}

/// Generates `n` tuples occupying **distinct cells** of the value grid
/// spanned by `domains` (so no two tuples share the same value combination
/// on the ranking attributes). This realises the paper's *general
/// positioning assumption* — skyline tuples have unique value combinations —
/// which is required for exact completeness checks against a ground-truth
/// skyline when `k` is small.
///
/// # Panics
/// Panics if `n` exceeds the number of grid cells.
pub fn distinct_cells(domains: &[Value], n: usize, seed: u64) -> Vec<Tuple> {
    assert!(!domains.is_empty(), "need at least one attribute");
    let total: u64 = domains.iter().map(|&d| u64::from(d)).product();
    assert!(
        (n as u64) <= total,
        "cannot place {n} distinct tuples in a grid of {total} cells"
    );
    // Pick a step that is coprime with the number of cells so that
    // i -> (offset + i*step) mod total enumerates distinct cells.
    const CANDIDATE_STEPS: [u64; 8] = [
        2_654_435_761,
        1_000_000_007,
        998_244_353,
        104_729,
        7_919,
        6_700_417,
        179_424_673,
        15_485_863,
    ];
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let step = CANDIDATE_STEPS
        .iter()
        .copied()
        .find(|&s| gcd(s % total.max(1), total) == 1)
        .unwrap_or(1);
    let offset = seed % total;

    (0..n as u64)
        .map(|i| {
            let mut cell = (offset + i.wrapping_mul(step)) % total;
            let mut values = Vec::with_capacity(domains.len());
            for &d in domains {
                values.push((cell % u64::from(d)) as Value);
                cell /= u64::from(d);
            }
            Tuple::new(i, values)
        })
        .collect()
}

/// [`distinct_cells`] wrapped in a [`Dataset`] with RQ attributes.
pub fn distinct_grid(domains: &[Value], n: usize, seed: u64) -> Dataset {
    distinct_grid_with_interface(domains, n, seed, InterfaceType::Rq)
}

/// [`distinct_cells`] wrapped in a [`Dataset`] with the given interface type
/// on every attribute.
pub fn distinct_grid_with_interface(
    domains: &[Value],
    n: usize,
    seed: u64,
    interface: InterfaceType,
) -> Dataset {
    let mut b = SchemaBuilder::new();
    for (i, &d) in domains.iter().enumerate() {
        b = b.ranking(format!("a{i}"), d, interface);
    }
    Dataset::new("distinct-grid", b.build(), distinct_cells(domains, n, seed))
}

/// Generates a family of datasets whose skyline sizes sweep from small to
/// large by varying the correlation from strongly positive to strongly
/// negative, mirroring the paper's Figure 6 methodology ("we control the
/// percentage of skyline tuples by adjusting the correlation between the
/// attributes").
///
/// Returns `(correlation_parameter, dataset)` pairs ordered from the most
/// positively correlated (fewest skyline tuples) to the most
/// anti-correlated (most skyline tuples).
pub fn correlation_sweep(
    n: usize,
    m: usize,
    domain_size: Value,
    steps: usize,
    seed: u64,
) -> Vec<(f64, Dataset)> {
    assert!(steps >= 2);
    (0..steps)
        .map(|i| {
            // rho goes from +0.95 (highly correlated) down to -0.95.
            let rho = 0.95 - 1.9 * (i as f64) / (steps as f64 - 1.0);
            let correlation = if rho >= 0.0 {
                Correlation::Correlated(rho)
            } else {
                Correlation::AntiCorrelated(-rho)
            };
            let ds = generate(&SyntheticConfig {
                n,
                m,
                domain_size,
                correlation,
                seed: seed.wrapping_add(i as u64),
            });
            (rho, ds)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_skyline::bnl_skyline;

    #[test]
    fn generates_requested_shape() {
        let ds = generate(&SyntheticConfig {
            n: 250,
            m: 4,
            domain_size: 64,
            correlation: Correlation::Independent,
            seed: 1,
        });
        assert_eq!(ds.len(), 250);
        assert_eq!(ds.schema.num_ranking(), 4);
        for t in &ds.tuples {
            assert_eq!(t.arity(), 4);
            assert!(t.values.iter().all(|&v| v < 64));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SyntheticConfig {
            n: 100,
            m: 3,
            domain_size: 32,
            correlation: Correlation::AntiCorrelated(0.8),
            seed: 99,
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.tuples, b.tuples);
    }

    #[test]
    fn correlation_controls_skyline_size() {
        let base = SyntheticConfig {
            n: 800,
            m: 3,
            domain_size: 100,
            seed: 5,
            correlation: Correlation::Independent,
        };
        let corr = generate(&SyntheticConfig {
            correlation: Correlation::Correlated(0.9),
            ..base
        });
        let indep = generate(&base);
        let anti = generate(&SyntheticConfig {
            correlation: Correlation::AntiCorrelated(0.9),
            ..base
        });
        let s_corr = bnl_skyline(&corr.tuples, &corr.schema).len();
        let s_indep = bnl_skyline(&indep.tuples, &indep.schema).len();
        let s_anti = bnl_skyline(&anti.tuples, &anti.schema).len();
        assert!(
            s_corr < s_indep && s_indep < s_anti,
            "skyline sizes should grow from correlated ({s_corr}) through independent \
             ({s_indep}) to anti-correlated ({s_anti})"
        );
    }

    #[test]
    fn correlation_sweep_spans_small_to_large_skylines() {
        let sweep = correlation_sweep(500, 2, 50, 5, 11);
        assert_eq!(sweep.len(), 5);
        let first = bnl_skyline(&sweep[0].1.tuples, &sweep[0].1.schema).len();
        let last = bnl_skyline(&sweep[4].1.tuples, &sweep[4].1.schema).len();
        assert!(first < last);
        assert!(sweep[0].0 > sweep[4].0);
    }

    #[test]
    fn distinct_cells_have_unique_value_combinations() {
        let domains = [7u32, 5, 3];
        let tuples = distinct_cells(&domains, 100, 42);
        assert_eq!(tuples.len(), 100);
        let mut combos: Vec<Vec<u32>> = tuples.iter().map(|t| t.values.clone()).collect();
        combos.sort();
        combos.dedup();
        assert_eq!(combos.len(), 100, "value combinations must be distinct");
        for t in &tuples {
            for (j, &d) in domains.iter().enumerate() {
                assert!(t.values[j] < d);
            }
        }
    }

    #[test]
    fn distinct_cells_can_fill_the_whole_grid() {
        let tuples = distinct_cells(&[4, 4], 16, 9);
        let mut combos: Vec<Vec<u32>> = tuples.iter().map(|t| t.values.clone()).collect();
        combos.sort();
        combos.dedup();
        assert_eq!(combos.len(), 16);
    }

    #[test]
    #[should_panic(expected = "distinct tuples")]
    fn distinct_cells_rejects_oversized_requests() {
        let _ = distinct_cells(&[3, 3], 10, 0);
    }

    #[test]
    fn distinct_grid_builds_a_dataset() {
        let ds = distinct_grid(&[6, 6], 20, 3);
        assert_eq!(ds.schema.num_ranking(), 2);
        let _db = ds.into_db_sum(2);
    }

    #[test]
    fn interface_override_applies_to_all_attributes() {
        let ds = generate_with_interface(&SyntheticConfig::default(), InterfaceType::Pq);
        assert!(ds
            .schema
            .attrs()
            .iter()
            .all(|a| a.interface == InterfaceType::Pq));
    }
}
