//! # skyweb-datagen
//!
//! Synthetic dataset generators for the skyline-discovery experiments.
//!
//! The paper evaluates on four data sources that we cannot ship or query
//! live (a US DOT flight-performance CSV and three commercial websites), so
//! this crate re-creates them *statistically*: same schema, same attribute
//! domain sizes, same interface types (SQ/RQ/PQ per attribute), comparable
//! cardinalities, and correlation structure chosen so that skyline sizes
//! land in the same ballpark as the paper reports. Since the discovery
//! algorithms only interact with the data through the top-k search
//! interface, these are the only properties that influence query cost.
//!
//! Generators:
//!
//! * [`synthetic`] — independent / correlated / anti-correlated tables
//!   (Börzsönyi-style) used for controlled parameter sweeps (Figure 6).
//! * [`flights_dot`] — the DOT on-time-performance table used for the
//!   offline experiments (Figures 13–21).
//! * [`diamonds`] — a Blue Nile-like diamond catalogue (Figure 22).
//! * [`gflights`] — Google Flights-like per-route itinerary lists
//!   (Figure 23).
//! * [`autos`] — a Yahoo! Autos-like used-car listing table (Figure 24).
//!
//! All generators are deterministic given a seed.
//!
//! ```
//! use skyweb_datagen::synthetic::{self, Correlation};
//!
//! let ds = synthetic::generate(&synthetic::SyntheticConfig {
//!     n: 100,
//!     m: 3,
//!     domain_size: 50,
//!     correlation: Correlation::Independent,
//!     seed: 7,
//! });
//! assert_eq!(ds.tuples.len(), 100);
//! assert_eq!(ds.schema.num_ranking(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autos;
mod dataset;
pub mod diamonds;
pub mod flights_dot;
pub mod gflights;
pub mod synthetic;

pub use dataset::Dataset;
