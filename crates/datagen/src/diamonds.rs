//! A synthetic stand-in for the Blue Nile diamond catalogue used in the
//! paper's online experiment (209,666 diamonds at the time of the study).
//!
//! Ranking attributes (all exposed as two-ended ranges by the real site):
//! Price (lower preferred), Carat (higher preferred), Cut, Color and
//! Clarity (more precise / clearer preferred). Shape is a filtering
//! attribute. The default ranking function of the site is price, low to
//! high.
//!
//! Price is generated as a strongly increasing function of carat and of the
//! quality grades plus noise, which is what makes the real skyline large
//! (the paper discovers 2,149 skyline diamonds): cheap large high-quality
//! stones do not exist, so the price/quality trade-off frontier is long.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skyweb_hidden_db::{InterfaceType, SchemaBuilder, Tuple, Value};

use crate::Dataset;

/// Domain sizes of the generated attributes.
pub mod domains {
    /// Price buckets (rank 0 = cheapest).
    pub const PRICE: u32 = 8000;
    /// Carat in 1/100 carat steps; rank 0 = the largest stone.
    pub const CARAT: u32 = 480;
    /// Cut grades: Astor Ideal, Ideal, Very Good, Good, Fair (rank 0 best).
    pub const CUT: u32 = 5;
    /// Color grades D..K (rank 0 = D, colorless).
    pub const COLOR: u32 = 8;
    /// Clarity grades FL..SI2 (rank 0 = FL, flawless).
    pub const CLARITY: u32 = 8;
    /// Shapes (round, princess, cushion, ...; filtering only).
    pub const SHAPE: u32 = 10;
}

/// Configuration for the Blue Nile-like generator.
#[derive(Debug, Clone, Copy)]
pub struct DiamondsConfig {
    /// Number of diamonds. The paper's snapshot had 209,666.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DiamondsConfig {
    fn default() -> Self {
        DiamondsConfig {
            n: 209_666,
            seed: 4,
        }
    }
}

fn clamp(v: f64, domain: Value) -> Value {
    v.round().clamp(0.0, f64::from(domain - 1)) as Value
}

/// Generates the diamond catalogue.
pub fn generate(config: &DiamondsConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);

    let schema = SchemaBuilder::new()
        .ranking("price", domains::PRICE, InterfaceType::Rq)
        .ranking("carat", domains::CARAT, InterfaceType::Rq)
        .ranking("cut", domains::CUT, InterfaceType::Rq)
        .ranking("color", domains::COLOR, InterfaceType::Rq)
        .ranking("clarity", domains::CLARITY, InterfaceType::Rq)
        .filtering("shape", domains::SHAPE)
        .build();

    let tuples: Vec<Tuple> = (0..config.n as u64)
        .map(|id| {
            // Carat: clusters at the "magic sizes" buyers search for
            // (0.50, 0.70, 0.90, 1.00, ...), with a continuous tail of odd
            // sizes and a few very large stones.
            const MAGIC_SIZES: [f64; 10] =
                [0.30, 0.40, 0.50, 0.70, 0.90, 1.00, 1.20, 1.50, 2.00, 3.00];
            let carat_ct: f64 = if rng.gen_bool(0.6) {
                MAGIC_SIZES[rng.gen_range(0..MAGIC_SIZES.len())]
            } else {
                let u: f64 = rng.gen_range(0.0f64..1.0);
                0.23 + 4.5 * u * u * u
            };
            // Quality grades: driven by a shared latent "stone quality"
            // factor, so cut/color/clarity are positively correlated (as on
            // the real site, where finer rough is cut more carefully).
            let quality: f64 = rng.gen_range(0.0..1.0);
            let grade = |rng: &mut StdRng, domain: Value| -> Value {
                let base = (1.0 - quality) * f64::from(domain - 1);
                clamp(base + rng.gen_range(-1.5..1.5), domain)
            };
            let cut = grade(&mut rng, domains::CUT);
            let color = grade(&mut rng, domains::COLOR);
            let clarity = grade(&mut rng, domains::CLARITY);
            let shape = rng.gen_range(0..domains::SHAPE);

            // Price in dollars: super-linear in carat, discounted by worse
            // grades, multiplied by a wide listing-to-listing noise
            // (certification, fluorescence, vendor margin, ...). The noise
            // is what lets well-priced stones dominate overpriced ones.
            let quality_factor =
                1.0 - 0.06 * f64::from(cut) - 0.05 * f64::from(color) - 0.055 * f64::from(clarity);
            let noise = rng.gen_range(0.60..1.60);
            let price_usd = 2600.0 * carat_ct.powf(1.9) * quality_factor.max(0.25) * noise + 300.0;

            // Rank space: price bucket of ~$25, carat rank 0 = 5.02 ct.
            let price = clamp(price_usd / 25.0, domains::PRICE);
            let carat = clamp(
                f64::from(domains::CARAT - 1) - (carat_ct - 0.23) * 100.0,
                domains::CARAT,
            );

            Tuple::new(id, vec![price, carat, cut, color, clarity, shape])
        })
        .collect();

    Dataset::new("blue-nile-diamonds", schema, tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_skyline::bnl_skyline_on;

    fn small() -> Dataset {
        generate(&DiamondsConfig { n: 5000, seed: 9 })
    }

    #[test]
    fn schema_matches_blue_nile() {
        let ds = small();
        assert_eq!(ds.schema.num_ranking(), 5);
        assert!(ds
            .schema
            .ranking_attrs()
            .iter()
            .all(|&a| ds.schema.attr(a).interface == InterfaceType::Rq));
        assert_eq!(
            ds.schema
                .attr_by_name("shape")
                .map(|a| ds.schema.attr(a).role),
            Some(skyweb_hidden_db::AttributeRole::Filtering)
        );
    }

    #[test]
    fn values_stay_inside_domains() {
        let _db = small().into_db_sum(50);
    }

    #[test]
    fn price_and_carat_are_anti_correlated_in_rank_space() {
        // Bigger stones (small carat rank) should be more expensive (large
        // price rank): count agreement of a crude sign test.
        let ds = small();
        let price = ds.schema.attr_by_name("price").unwrap();
        let carat = ds.schema.attr_by_name("carat").unwrap();
        let mean_price: f64 = ds
            .tuples
            .iter()
            .map(|t| f64::from(t.values[price]))
            .sum::<f64>()
            / ds.len() as f64;
        let mean_carat: f64 = ds
            .tuples
            .iter()
            .map(|t| f64::from(t.values[carat]))
            .sum::<f64>()
            / ds.len() as f64;
        let mut cov = 0.0;
        for t in &ds.tuples {
            cov += (f64::from(t.values[price]) - mean_price)
                * (f64::from(t.values[carat]) - mean_carat);
        }
        assert!(cov < 0.0, "price rank and carat rank should anti-correlate");
    }

    #[test]
    fn skyline_is_sizable_but_far_from_n() {
        let ds = small();
        let attrs: Vec<usize> = ds.schema.ranking_attrs().to_vec();
        let sky = bnl_skyline_on(&ds.tuples, &attrs);
        assert!(
            sky.len() > 20,
            "diamond frontier should be long, got {}",
            sky.len()
        );
        assert!(
            sky.len() < ds.len() / 4,
            "diamond skyline should stay well below n: {} of {}",
            sky.len(),
            ds.len()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&DiamondsConfig { n: 300, seed: 1 });
        let b = generate(&DiamondsConfig { n: 300, seed: 1 });
        assert_eq!(a.tuples, b.tuples);
    }
}
