//! # skyweb-net
//!
//! The TCP wire protocol of the skyline-discovery stack: the sealed codec
//! envelopes of [`skyweb_core::codec`] framed over a socket, so the hidden
//! database finally sits where the paper puts it — behind a *remote,
//! restricted query interface* — and every discovery machine runs
//! unmodified against it.
//!
//! * [`Server`] — a thread-per-connection front end over a shared
//!   [`HiddenDb`](skyweb_hidden_db::HiddenDb): an acceptor plus a worker
//!   pool, one database session per connection, per-connection accounting.
//! * [`RemoteOracle`] — a client implementing
//!   [`PlanOracle`](skyweb_core::PlanOracle), pluggable into
//!   [`DiscoveryDriver::with_oracle`](skyweb_core::DiscoveryDriver::with_oracle).
//! * [`wire`] — the length-validated frame transport underneath both.
//!
//! Remote execution is byte-identical to in-process execution: the server
//! answers plans through the same `Session::run_plan_grouped` the driver
//! would call directly, so results, query costs and anytime traces match
//! exactly. See `docs/wire-protocol.md` for the handshake, frame kinds,
//! versioning policy and error mapping.
//!
//! ```no_run
//! use skyweb_core::{DiscoveryDriver, Discoverer, DriverConfig, SqDbSky};
//! use skyweb_net::RemoteOracle;
//!
//! let oracle = RemoteOracle::connect("198.51.100.7:7070")?;
//! let machine = SqDbSky::new().machine(&oracle.replica()).unwrap();
//! let result = DiscoveryDriver::with_oracle(oracle, machine, DriverConfig::new())
//!     .run()
//!     .unwrap();
//! println!("skyline: {} tuples", result.skyline.len());
//! # Ok::<(), skyweb_net::NetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod server;
pub mod wire;

pub use client::{RemoteInfo, RemoteOracle};
pub use server::{serve, ConnectionReport, ServeReport, Server, ServerConfig, ServerHandle};
pub use wire::{NetError, MAX_FRAME_LEN, MAX_HANDSHAKE_FRAME_LEN};
