//! The discovery client: a [`RemoteOracle`] that speaks the wire protocol
//! and plugs into [`DiscoveryDriver::with_oracle`](skyweb_core::DiscoveryDriver::with_oracle),
//! so every discovery machine runs unmodified against a remote database.
//!
//! Transport failures (disconnect, timeout, corrupt frame) surface as
//! [`QueryError::ConnectionDropped`] — transient in the
//! [`QueryError::is_transient`] taxonomy, so a driver with a
//! [`RetryPolicy`](skyweb_core::RetryPolicy) degrades gracefully instead of
//! aborting, exactly as it does under injected faults in-process.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use skyweb_core::{
    decode_error_reply, decode_responses, decode_welcome, encode_hello, encode_plan, Hello,
    PlanOracle, QueryPlan, KIND_ERROR, KIND_RESPONSES, KIND_WELCOME, WIRE_PROTOCOL,
};
use skyweb_hidden_db::{HiddenDb, PrefixGroup, Query, QueryError, QueryResponse, Schema};

use crate::wire::{self, NetError, MAX_FRAME_LEN, MAX_HANDSHAKE_FRAME_LEN};

/// What the server announced about itself in its welcome frame.
#[derive(Debug, Clone)]
pub struct RemoteInfo {
    /// The wire-protocol version the server speaks.
    pub protocol: u32,
    /// Name of the server's ranking function.
    pub ranker: String,
    /// The interface's top-`k` result cap.
    pub k: u64,
    /// Number of tuples behind the interface (public metadata).
    pub tuple_count: u64,
    /// The public query schema.
    pub schema: Schema,
}

/// A connection to a remote discovery server, usable wherever the driver
/// accepts a [`PlanOracle`].
///
/// Dropping the oracle closes the connection; the server sees a clean
/// hang-up at the next frame boundary.
#[derive(Debug)]
pub struct RemoteOracle {
    stream: TcpStream,
    info: RemoteInfo,
    max_frame_len: usize,
    /// Latched on the first transport failure: later plans short-circuit
    /// to [`QueryError::ConnectionDropped`] instead of poking a dead
    /// socket (a retrying driver still sees a transient error each time).
    broken: bool,
}

impl RemoteOracle {
    /// Connects, handshakes, and validates the wire-protocol version, with
    /// a default client label and no read timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RemoteOracle, NetError> {
        RemoteOracle::connect_with(addr, "driver", None)
    }

    /// Like [`RemoteOracle::connect`], announcing `label` for the server's
    /// per-connection accounting and bounding every reply wait by
    /// `read_timeout`.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        label: impl Into<String>,
        read_timeout: Option<Duration>,
    ) -> Result<RemoteOracle, NetError> {
        let mut stream = TcpStream::connect(addr)?;
        // Plan frames are small and latency-bound; never batch them behind
        // Nagle. Best effort: a transport that refuses is still correct.
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(read_timeout)?;
        let hello = Hello {
            protocol: WIRE_PROTOCOL,
            label: label.into(),
        };
        wire::write_frame(&mut stream, &encode_hello(&hello))?;
        let Some((kind, frame)) = wire::read_frame(&mut stream, MAX_HANDSHAKE_FRAME_LEN)? else {
            return Err(NetError::Disconnected);
        };
        if kind != KIND_WELCOME {
            return Err(NetError::UnexpectedKind { found: kind });
        }
        let welcome = decode_welcome(&frame)?;
        if welcome.protocol != WIRE_PROTOCOL {
            return Err(NetError::ProtocolMismatch {
                ours: WIRE_PROTOCOL,
                theirs: welcome.protocol,
            });
        }
        Ok(RemoteOracle {
            stream,
            info: RemoteInfo {
                protocol: welcome.protocol,
                ranker: welcome.ranker,
                k: welcome.k,
                tuple_count: welcome.tuple_count,
                schema: welcome.schema,
            },
            max_frame_len: MAX_FRAME_LEN,
            broken: false,
        })
    }

    /// What the server announced in its welcome frame.
    pub fn info(&self) -> &RemoteInfo {
        &self.info
    }

    /// An empty local stand-in for the remote database: same schema, same
    /// `k`, zero tuples. Discovery machines read only schema metadata at
    /// construction, so `alg.machine(&oracle.replica())` builds a machine
    /// that then runs entirely against the remote side. (The replica's
    /// ranking function is irrelevant — machines never evaluate it.)
    pub fn replica(&self) -> HiddenDb {
        let k = usize::try_from(self.info.k).unwrap_or(usize::MAX).max(1);
        HiddenDb::with_sum_ranking(self.info.schema.clone(), Vec::new(), k)
    }

    /// One plan round-trip over the socket.
    fn exchange(
        &mut self,
        queries: &[Query],
        groups: Option<&[PrefixGroup]>,
    ) -> Result<(Vec<QueryResponse>, Option<QueryError>), NetError> {
        if self.broken {
            return Err(NetError::Disconnected);
        }
        let plan = match groups {
            Some(g) => QueryPlan::with_groups(queries.to_vec(), g.to_vec()),
            None => QueryPlan::new(queries.to_vec()),
        };
        wire::write_frame(&mut self.stream, &encode_plan(&plan))?;
        let Some((kind, frame)) = wire::read_frame(&mut self.stream, self.max_frame_len)? else {
            return Err(NetError::Disconnected);
        };
        match kind {
            KIND_RESPONSES => Ok((decode_responses(&frame)?, None)),
            KIND_ERROR => {
                let (answered, err) = decode_error_reply(&frame)?;
                Ok((answered, Some(err)))
            }
            found => Err(NetError::UnexpectedKind { found }),
        }
    }
}

impl PlanOracle for RemoteOracle {
    fn run_plan_grouped(
        &mut self,
        queries: &[Query],
        groups: Option<&[PrefixGroup]>,
    ) -> (Vec<QueryResponse>, Option<QueryError>) {
        if queries.is_empty() {
            return (Vec::new(), None);
        }
        match self.exchange(queries, groups) {
            Ok(reply) => reply,
            Err(_) => {
                self.broken = true;
                (Vec::new(), Some(QueryError::ConnectionDropped))
            }
        }
    }
}
