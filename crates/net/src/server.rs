//! The discovery server: a thread-per-connection TCP front end over a
//! shared [`HiddenDb`].
//!
//! An acceptor (the caller's thread) hands sockets to a fixed pool of
//! worker threads; each worker serves one connection at a time with its own
//! database [`Session`](skyweb_hidden_db::Session), so per-connection query
//! accounting is exact while the store, rate limit and access log are
//! shared — the same tenancy model [`DiscoveryService`](skyweb_core::DiscoveryService)
//! uses in-process, with the tenant now on the far side of a socket.
//!
//! The connection protocol (see `docs/wire-protocol.md`): the client opens
//! with a hello frame, the server always answers with a welcome carrying
//! its wire-protocol version and database metadata, then plan frames are
//! answered with response frames (or error-reply frames when a
//! [`QueryError`](skyweb_hidden_db::QueryError) cut the plan short). Any
//! malformed, oversized or out-of-state frame closes the connection — a
//! corrupt peer gets no diagnosis to probe, and the codec guarantees the
//! rejection happens without unbounded allocation. The socket read timeout
//! bounds how long a worker can be held by a stalled (slowloris) peer.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use skyweb_core::{
    decode_hello, decode_plan, encode_error_reply, encode_responses, encode_welcome, Welcome,
    KIND_HELLO, KIND_PLAN, WIRE_PROTOCOL,
};
use skyweb_hidden_db::HiddenDb;

use crate::wire::{self, NetError, MAX_FRAME_LEN, MAX_HANDSHAKE_FRAME_LEN};

/// Locks a mutex, recovering the guard from a poisoned lock (a worker that
/// panicked mid-push cannot take the whole server down with it).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Saturating `usize` → `u64` for accounting counters.
fn u64_of(v: usize) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// The worker-pool size when none is configured: `SKYWEB_JOBS` if set (the
/// same knob the bench pool honors), else the machine's parallelism.
fn worker_budget() -> usize {
    if let Ok(v) = std::env::var("SKYWEB_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// How a [`Server`] runs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads (each serves one connection at a time, ≥ 1).
    pub workers: usize,
    /// Socket read timeout: the longest a worker blocks on a stalled peer
    /// before dropping the connection (the slowloris bound), and therefore
    /// also the longest an idle connection survives. `None` blocks forever.
    pub read_timeout: Option<Duration>,
    /// Payload-length cap enforced on incoming frames before allocation.
    pub max_frame_len: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: worker_budget(),
            read_timeout: Some(Duration::from_secs(30)),
            max_frame_len: MAX_FRAME_LEN,
        }
    }
}

impl ServerConfig {
    /// The default config: `SKYWEB_JOBS` workers, a 30 s read timeout and
    /// the standard frame cap.
    pub fn new() -> Self {
        ServerConfig::default()
    }

    /// Sets the worker-pool size (builder style, clamped to ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the socket read timeout (builder style).
    pub fn with_read_timeout(mut self, read_timeout: Option<Duration>) -> Self {
        self.read_timeout = read_timeout;
        self
    }

    /// Sets the incoming frame cap (builder style).
    pub fn with_max_frame_len(mut self, max_frame_len: usize) -> Self {
        self.max_frame_len = max_frame_len;
        self
    }
}

/// Per-connection accounting of one cleanly finished connection.
#[derive(Debug, Clone)]
pub struct ConnectionReport {
    /// The label the client announced in its hello frame.
    pub label: String,
    /// Plan frames answered.
    pub plans: u64,
    /// Queries answered across all plans.
    pub queries: u64,
    /// Plans that ended in an error reply (answered prefix + error).
    pub error_replies: u64,
}

/// What a [`Server::serve`] loop did before it was shut down.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Connections accepted and handed to a worker.
    pub connections: u64,
    /// Connections dropped on a protocol violation, corrupt frame,
    /// timeout, or mid-frame disconnect.
    pub rejected: u64,
    /// Accounting of every cleanly finished connection, in completion
    /// order.
    pub finished: Vec<ConnectionReport>,
}

/// A bound listener, ready to [`serve`](Server::serve) a database.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

/// A handle that can stop a running [`Server::serve`] loop from another
/// thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Asks the serve loop to stop: no further connections are accepted;
    /// workers finish their current connection and exit. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept with a throwaway
        // connection; if that fails the next real connection (or accept
        // error) delivers the flag instead.
        let _ = TcpStream::connect(self.addr);
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Server {
    /// Binds a listener. Use an `:0` port to let the OS pick one (the bound
    /// address is available through [`Server::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs) -> Result<Server, NetError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address this server is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A shutdown handle, clonable and sendable to other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.stop),
            addr: self.addr,
        }
    }

    /// Serves `db` until the [`ServerHandle`] asks for shutdown: the
    /// calling thread accepts connections, `config.workers` scoped threads
    /// answer them. Every connection gets its own [`HiddenDb`] session;
    /// global accounting (queries issued, rate limit, access log) is shared
    /// through the database exactly as for in-process tenants.
    pub fn serve(self, db: &HiddenDb, config: &ServerConfig) -> ServeReport {
        let queue: Mutex<VecDeque<TcpStream>> = Mutex::new(VecDeque::new());
        let ready = Condvar::new();
        let accepting = AtomicBool::new(true);
        let connections = AtomicU64::new(0);
        let rejected = AtomicU64::new(0);
        let finished: Mutex<Vec<ConnectionReport>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for _ in 0..config.workers.max(1) {
                scope.spawn(|| loop {
                    let stream = {
                        let mut q = lock(&queue);
                        loop {
                            if let Some(s) = q.pop_front() {
                                break Some(s);
                            }
                            if !accepting.load(Ordering::SeqCst) {
                                break None;
                            }
                            q = match ready.wait(q) {
                                Ok(guard) => guard,
                                Err(poisoned) => poisoned.into_inner(),
                            };
                        }
                    };
                    let Some(stream) = stream else {
                        break;
                    };
                    connections.fetch_add(1, Ordering::Relaxed);
                    match handle_connection(stream, db, config) {
                        Ok(report) => lock(&finished).push(report),
                        Err(_) => {
                            // A corrupt, stalled or out-of-state peer: the
                            // connection is already closed; serve the next.
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
            // The caller's thread is the acceptor.
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if self.stop.load(Ordering::SeqCst) {
                            // The shutdown wake-up (or a too-late client).
                            drop(stream);
                            break;
                        }
                        lock(&queue).push_back(stream);
                        ready.notify_one();
                    }
                    Err(_) => {
                        if self.stop.load(Ordering::SeqCst) {
                            break;
                        }
                        // Transient accept failure (EMFILE, aborted
                        // connection): keep accepting.
                    }
                }
            }
            accepting.store(false, Ordering::SeqCst);
            ready.notify_all();
        });

        ServeReport {
            connections: connections.load(Ordering::Relaxed),
            rejected: rejected.load(Ordering::Relaxed),
            finished: match finished.into_inner() {
                Ok(v) => v,
                Err(poisoned) => poisoned.into_inner(),
            },
        }
    }
}

/// Serves one connection to completion: handshake, then plan frames until
/// the client hangs up cleanly (Ok) or violates the protocol (Err — the
/// connection is simply dropped, with no error frame a hostile peer could
/// probe).
fn handle_connection(
    mut stream: TcpStream,
    db: &HiddenDb,
    config: &ServerConfig,
) -> Result<ConnectionReport, NetError> {
    stream.set_read_timeout(config.read_timeout)?;
    let hello = {
        let cap = MAX_HANDSHAKE_FRAME_LEN.min(config.max_frame_len);
        let Some((kind, frame)) = wire::read_frame(&mut stream, cap)? else {
            // Connected, said nothing, hung up: nothing was served.
            return Err(NetError::Disconnected);
        };
        if kind != KIND_HELLO {
            return Err(NetError::UnexpectedKind { found: kind });
        }
        decode_hello(&frame)?
    };
    // The welcome always goes out — also on a version mismatch, so an older
    // or newer client learns *why* the connection is about to close.
    let welcome = Welcome {
        protocol: WIRE_PROTOCOL,
        ranker: db.ranker_name().to_string(),
        k: u64_of(db.k()),
        tuple_count: u64_of(db.n()),
        schema: db.schema().clone(),
    };
    wire::write_frame(&mut stream, &encode_welcome(&welcome))?;
    if hello.protocol != WIRE_PROTOCOL {
        return Err(NetError::ProtocolMismatch {
            ours: WIRE_PROTOCOL,
            theirs: hello.protocol,
        });
    }
    let mut session = db.session();
    let mut report = ConnectionReport {
        label: hello.label,
        plans: 0,
        queries: 0,
        error_replies: 0,
    };
    loop {
        let Some((kind, frame)) = wire::read_frame(&mut stream, config.max_frame_len)? else {
            // Clean hang-up at a frame boundary: the connection is done.
            return Ok(report);
        };
        if kind != KIND_PLAN {
            return Err(NetError::UnexpectedKind { found: kind });
        }
        let plan = decode_plan(&frame)?;
        report.plans += 1;
        let (responses, err) = session.run_plan_grouped(plan.queries(), plan.groups());
        report.queries += u64_of(responses.len());
        let reply = match err {
            None => encode_responses(&responses),
            Some(e) => {
                report.error_replies += 1;
                encode_error_reply(&responses, &e)
            }
        };
        wire::write_frame(&mut stream, &reply)?;
    }
}

/// Binds `addr` and serves `db` with the default [`ServerConfig`] until the
/// process is killed — the one-liner deployment shape. For a controllable
/// server (tests, benches), use [`Server::bind`] + [`Server::serve`] and
/// keep a [`ServerHandle`].
pub fn serve(db: &HiddenDb, addr: impl ToSocketAddrs) -> Result<ServeReport, NetError> {
    Ok(Server::bind(addr)?.serve(db, &ServerConfig::default()))
}
