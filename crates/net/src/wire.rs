//! Frame transport: length-validated reading and writing of sealed codec
//! envelopes over a byte stream.
//!
//! A frame on the wire *is* a sealed envelope from `skyweb_core::codec` —
//! header (magic, format version, kind, payload length), payload, FNV-1a64
//! checksum — with no extra framing. The transport's one job is to read
//! exactly one envelope from a stream **without trusting the peer**:
//!
//! 1. read the fixed-size header and parse it ([`skyweb_core::parse_header`]
//!    validates magic and version before the length is even looked at);
//! 2. check the claimed payload length against the caller's cap *before
//!    allocating a single byte* — a 16-byte frame claiming a 2⁴⁰ payload
//!    costs one 15-byte read and an error, not a terabyte allocation;
//! 3. read the payload and checksum, then hand the complete envelope to the
//!    codec's `decode_*` functions, which re-validate everything including
//!    the checksum.
//!
//! Truncation shows up as [`NetError::Disconnected`] (the peer closed
//! mid-frame) or [`NetError::TimedOut`] (the peer stalled mid-frame and the
//! socket's read timeout fired — the slowloris defense: a worker blocks for
//! at most the configured timeout, never forever).

use std::io::{Read, Write};

use skyweb_core::{parse_header, CodecError, CHECKSUM_LEN, HEADER_LEN};

/// Hard cap on the payload length of a post-handshake frame (32 MiB) —
/// far above any real plan or response batch, far below a memory-exhaustion
/// allocation.
pub const MAX_FRAME_LEN: usize = 32 * 1024 * 1024;

/// Cap on handshake frames (64 KiB): a hello is a version and a label, a
/// welcome is ranker metadata plus a schema. Anything bigger is an attack.
pub const MAX_HANDSHAKE_FRAME_LEN: usize = 64 * 1024;

/// Why a wire operation failed. Transport failures are mapped onto the
/// transient [`QueryError`](skyweb_hidden_db::QueryError) taxonomy at the
/// oracle boundary (see `docs/wire-protocol.md`); this type is the precise
/// diagnosis underneath.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A socket operation failed.
    Io {
        /// The I/O error kind.
        kind: std::io::ErrorKind,
        /// Human-readable detail from the OS error.
        detail: String,
    },
    /// The peer closed the connection in the middle of a frame (or before
    /// a reply it owed).
    Disconnected,
    /// A frame header claims a payload larger than the transport cap; the
    /// claim was rejected before any payload byte was read or allocated.
    FrameTooLarge {
        /// The length the header claimed.
        claimed: u64,
        /// The cap it exceeded.
        max: usize,
    },
    /// The bytes failed envelope validation (bad magic, foreign version,
    /// checksum mismatch, malformed payload, ...).
    Codec(CodecError),
    /// The peer speaks a different wire-protocol version.
    ProtocolMismatch {
        /// The version this side speaks.
        ours: u32,
        /// The version the peer announced.
        theirs: u32,
    },
    /// The peer sent a frame kind that is invalid in the current protocol
    /// state (e.g. a plan before the handshake, a checkpoint mid-stream).
    UnexpectedKind {
        /// The envelope kind found.
        found: u8,
    },
    /// A read did not complete within the socket's read timeout — the
    /// slowloris defense tripped, or an idle connection expired.
    TimedOut,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io { kind, detail } => write!(f, "socket error ({kind:?}): {detail}"),
            NetError::Disconnected => write!(f, "peer disconnected mid-frame"),
            NetError::FrameTooLarge { claimed, max } => {
                write!(f, "frame claims a {claimed}-byte payload (cap: {max})")
            }
            NetError::Codec(e) => write!(f, "invalid frame: {e}"),
            NetError::ProtocolMismatch { ours, theirs } => {
                write!(
                    f,
                    "peer speaks wire protocol {theirs}, this side speaks {ours}"
                )
            }
            NetError::UnexpectedKind { found } => {
                write!(f, "frame kind {found} is invalid in this protocol state")
            }
            NetError::TimedOut => write!(f, "read timed out mid-frame"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            // Both kinds occur for an expired read timeout, depending on
            // platform: unix reports WouldBlock, windows TimedOut.
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => NetError::TimedOut,
            std::io::ErrorKind::UnexpectedEof => NetError::Disconnected,
            kind => NetError::Io {
                kind,
                detail: e.to_string(),
            },
        }
    }
}

/// Writes one sealed envelope to the stream and flushes it.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> Result<(), NetError> {
    w.write_all(frame)?;
    w.flush()?;
    Ok(())
}

/// Fills `buf` completely, distinguishing a clean end-of-stream *before the
/// first byte* (`Ok(false)`: the peer hung up at a frame boundary, which is
/// how connections normally end) from one in the middle
/// ([`NetError::Disconnected`]: the peer died mid-frame).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, NetError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(NetError::Disconnected)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::from(e)),
        }
    }
    Ok(true)
}

/// Reads one complete envelope from the stream, validating the header's
/// length claim against `max_payload` *before* allocating the payload
/// buffer.
///
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary, and
/// `Ok(Some((kind, frame)))` with the complete envelope bytes (header,
/// payload and checksum) otherwise — ready for the codec's `decode_*`
/// functions, which still re-validate kind, exact length and checksum.
pub fn read_frame(
    r: &mut impl Read,
    max_payload: usize,
) -> Result<Option<(u8, Vec<u8>)>, NetError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_exact_or_eof(r, &mut header)? {
        return Ok(None);
    }
    let (kind, claimed) = parse_header(&header)?;
    let payload_len = match usize::try_from(claimed) {
        Ok(len) if len <= max_payload => len,
        _ => {
            return Err(NetError::FrameTooLarge {
                claimed,
                max: max_payload,
            })
        }
    };
    let mut frame = vec![0u8; HEADER_LEN + payload_len + CHECKSUM_LEN];
    frame[..HEADER_LEN].copy_from_slice(&header);
    if !read_exact_or_eof(r, &mut frame[HEADER_LEN..])? {
        return Err(NetError::Disconnected);
    }
    Ok(Some((kind, frame)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyweb_core::codec::{FORMAT_VERSION, MAGIC};
    use skyweb_core::{encode_hello, Hello, KIND_PLAN, WIRE_PROTOCOL};

    #[test]
    fn round_trips_a_frame_over_a_buffer() {
        let sealed = encode_hello(&Hello {
            protocol: WIRE_PROTOCOL,
            label: "t".to_string(),
        });
        let mut stream = Vec::new();
        write_frame(&mut stream, &sealed).unwrap();
        let mut reader = stream.as_slice();
        let (kind, frame) = read_frame(&mut reader, MAX_FRAME_LEN).unwrap().unwrap();
        assert_eq!(kind, skyweb_core::KIND_HELLO);
        assert_eq!(frame, sealed);
        // A second read sees the clean end of stream.
        assert_eq!(read_frame(&mut reader, MAX_FRAME_LEN).unwrap(), None);
    }

    #[test]
    fn oversized_length_claim_is_rejected_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        frame.push(KIND_PLAN);
        frame.extend_from_slice(&(1u64 << 40).to_le_bytes());
        frame.push(0);
        assert_eq!(frame.len(), 16);
        let mut reader = frame.as_slice();
        match read_frame(&mut reader, MAX_FRAME_LEN) {
            Err(NetError::FrameTooLarge { claimed, max }) => {
                assert_eq!(claimed, 1 << 40);
                assert_eq!(max, MAX_FRAME_LEN);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn mid_frame_eof_is_not_a_clean_end() {
        let sealed = encode_hello(&Hello {
            protocol: WIRE_PROTOCOL,
            label: "t".to_string(),
        });
        for cut in 1..sealed.len() {
            let mut reader = &sealed[..cut];
            let got = read_frame(&mut reader, MAX_FRAME_LEN);
            assert!(
                matches!(got, Err(NetError::Disconnected) | Err(NetError::Codec(_))),
                "cut at {cut}: got {got:?}"
            );
        }
    }
}
