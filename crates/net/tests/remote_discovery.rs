//! The acceptance test of the wire protocol: every discovery machine,
//! built from a [`RemoteOracle`]'s schema replica and driven over a real
//! loopback TCP connection, produces results **byte-identical** to the
//! in-process run — same skyline, same retrieved set, same query cost,
//! same anytime trace, and the same access log on the database side.
//!
//! The server side answers through `Session::run_plan_grouped` exactly as
//! the in-process driver would, so any divergence here is a codec or
//! transport bug, never an acceptable "network variance".

use std::net::SocketAddr;
use std::time::Duration;

use skyweb_core::{
    BaselineCrawl, Discoverer, DiscoveryDriver, DiscoveryResult, DriverConfig, MqDbSky,
    PointSpaceCrawl, Pq2dSky, PqDbSky, RqDbSky, RqSkyband, SqDbSky, WIRE_PROTOCOL,
};
use skyweb_hidden_db::{HiddenDb, InterfaceType, SchemaBuilder, Tuple};
use skyweb_net::{RemoteOracle, ServeReport, Server, ServerConfig};

/// A small deterministic database: `m = interfaces.len()` ranking
/// attributes with mixed domain sizes, 60 tuples of hash-scrambled values.
fn build_db(interfaces: &[InterfaceType], k: usize) -> HiddenDb {
    let domains = [5u32, 4, 3, 4];
    let mut builder = SchemaBuilder::new();
    for (i, itf) in interfaces.iter().enumerate() {
        builder = builder.ranking(format!("a{i}"), domains[i], *itf);
    }
    let tuples: Vec<Tuple> = (0..60u64)
        .map(|id| {
            let values = (0..interfaces.len())
                .map(|j| {
                    let x = id
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add((j as u64) << 17)
                        .rotate_left(13)
                        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    (x % u64::from(domains[j])) as u32
                })
                .collect();
            Tuple::new(id, values)
        })
        .collect();
    HiddenDb::with_sum_ranking(builder.build(), tuples, k)
}

/// Serves `db` on an OS-picked loopback port while `f` runs, then shuts the
/// server down and returns `f`'s value plus the serve report.
fn with_server<T>(
    db: &HiddenDb,
    config: ServerConfig,
    f: impl FnOnce(SocketAddr) -> T,
) -> (T, ServeReport) {
    let server = Server::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.handle();
    std::thread::scope(|scope| {
        let serving = scope.spawn(move || server.serve(db, &config));
        // Shut the server down even when `f` panics: a failed assertion
        // must fail the test, not deadlock the scope on the acceptor.
        let value = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(addr)));
        handle.shutdown();
        let report = serving.join().expect("serve loop does not panic");
        match value {
            Ok(v) => (v, report),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

/// Field-wise byte-identity of two discovery results.
fn assert_identical(local: &DiscoveryResult, remote: &DiscoveryResult) {
    let ids = |r: &DiscoveryResult| -> Vec<(u64, Vec<u32>)> {
        r.skyline.iter().map(|t| (t.id, t.values.clone())).collect()
    };
    let retrieved =
        |r: &DiscoveryResult| -> Vec<u64> { r.retrieved.iter().map(|t| t.id).collect() };
    assert_eq!(ids(local), ids(remote), "skylines diverged over the wire");
    assert_eq!(
        retrieved(local),
        retrieved(remote),
        "retrieved sets diverged over the wire"
    );
    assert_eq!(
        local.query_cost, remote.query_cost,
        "query costs diverged over the wire"
    );
    assert_eq!(local.trace, remote.trace, "anytime traces diverged");
    assert_eq!(local.complete, remote.complete, "completion flags diverged");
}

/// The full access log a database served, rendered to comparable lines.
fn log_lines(db: &HiddenDb) -> Vec<String> {
    db.access_log()
        .entries()
        .iter()
        .map(|e| {
            format!(
                "{} {} {} {} {}",
                e.seq, e.query, e.matched, e.returned, e.overflowed
            )
        })
        .collect()
}

/// Runs `alg` in-process and over loopback TCP on identical databases and
/// asserts the two runs byte-identical: results, costs, traces, and the
/// exact query stream the database served.
fn check_remote(alg: &dyn Discoverer, interfaces: &[InterfaceType], k: usize) {
    let local_db = build_db(interfaces, k);
    local_db.enable_access_log();
    let reference = alg.discover(&local_db).expect("in-process run");

    let remote_db = build_db(interfaces, k);
    remote_db.enable_access_log();
    let config = ServerConfig::new()
        .with_workers(2)
        .with_read_timeout(Some(Duration::from_secs(10)));
    let (remote, report) = with_server(&remote_db, config, |addr| {
        let oracle = RemoteOracle::connect_with(addr, alg.name(), Some(Duration::from_secs(10)))
            .expect("handshake");
        // The machine is built from the oracle's schema replica — metadata
        // that itself round-tripped through the welcome frame — proving the
        // client needs no local copy of the database.
        let machine = alg.machine(&oracle.replica()).expect("supported interface");
        DiscoveryDriver::with_oracle(
            oracle,
            machine,
            DriverConfig::new().with_budget(alg.budget()),
        )
        .run()
        .expect("remote run")
    });

    assert_identical(&reference, &remote);
    assert_eq!(
        remote.query_cost,
        remote_db.queries_issued(),
        "driver-side cost must equal server-side accounting"
    );
    assert_eq!(
        log_lines(&local_db),
        log_lines(&remote_db),
        "the database served a different query stream over the wire"
    );
    assert_eq!(report.connections, 1);
    assert_eq!(report.rejected, 0, "a clean client must not be rejected");
    assert_eq!(report.finished.len(), 1);
    let conn = &report.finished[0];
    assert_eq!(conn.label, alg.name());
    assert_eq!(conn.queries, remote_db.queries_issued());
    assert_eq!(conn.error_replies, 0);
}

#[test]
fn sq_db_sky_is_byte_identical_over_tcp() {
    check_remote(&SqDbSky::new(), &[InterfaceType::Sq; 3], 3);
}

#[test]
fn rq_db_sky_is_byte_identical_over_tcp() {
    check_remote(&RqDbSky::new(), &[InterfaceType::Rq; 3], 3);
}

#[test]
fn pq_db_sky_is_byte_identical_over_tcp() {
    check_remote(&PqDbSky::new(), &[InterfaceType::Pq; 3], 3);
}

#[test]
fn pq_2d_sky_is_byte_identical_over_tcp() {
    check_remote(&Pq2dSky::new(), &[InterfaceType::Pq; 2], 3);
}

#[test]
fn mq_db_sky_is_byte_identical_over_tcp() {
    check_remote(
        &MqDbSky::new(),
        &[InterfaceType::Sq, InterfaceType::Rq, InterfaceType::Pq],
        3,
    );
}

#[test]
fn baseline_crawl_is_byte_identical_over_tcp() {
    check_remote(&BaselineCrawl::new(), &[InterfaceType::Rq; 3], 3);
}

#[test]
fn point_space_crawl_is_byte_identical_over_tcp() {
    check_remote(&PointSpaceCrawl::new(), &[InterfaceType::Pq; 3], 2);
}

/// RQ-SKYBAND has no `Discoverer` impl (its product is a band, not a plain
/// skyline), so it is driven through `build_machine` on both sides.
#[test]
fn rq_skyband_is_byte_identical_over_tcp() {
    let interfaces = [InterfaceType::Rq; 3];
    let local_db = build_db(&interfaces, 3);
    local_db.enable_access_log();
    let machine = RqSkyband::new(2)
        .build_machine(&local_db)
        .expect("RQ schema");
    let reference = DiscoveryDriver::new(&local_db, machine, DriverConfig::new())
        .run()
        .expect("in-process run");

    let remote_db = build_db(&interfaces, 3);
    remote_db.enable_access_log();
    let (remote, report) = with_server(&remote_db, ServerConfig::new(), |addr| {
        let oracle = RemoteOracle::connect(addr).expect("handshake");
        let machine = RqSkyband::new(2)
            .build_machine(&oracle.replica())
            .expect("RQ schema");
        DiscoveryDriver::with_oracle(oracle, machine, DriverConfig::new())
            .run()
            .expect("remote run")
    });

    assert_identical(&reference, &remote);
    assert_eq!(log_lines(&local_db), log_lines(&remote_db));
    assert_eq!(report.rejected, 0);
    assert_eq!(report.finished.len(), 1);
}

/// The welcome frame must describe the database faithfully: protocol
/// version, ranker name, `k`, tuple count, and a schema whose replica is
/// machine-construction-equivalent to the original.
#[test]
fn welcome_metadata_matches_the_database() {
    let db = build_db(&[InterfaceType::Sq, InterfaceType::Rq], 4);
    let ((), report) = with_server(&db, ServerConfig::new().with_workers(1), |addr| {
        let oracle = RemoteOracle::connect_with(addr, "meta-probe", None).expect("handshake");
        let info = oracle.info();
        assert_eq!(info.protocol, WIRE_PROTOCOL);
        assert_eq!(info.ranker, db.ranker_name());
        assert_eq!(info.k, db.k() as u64);
        assert_eq!(info.tuple_count, db.n() as u64);
        let replica = oracle.replica();
        assert_eq!(replica.k(), db.k());
        assert_eq!(replica.n(), 0, "the replica holds no tuples");
        assert_eq!(replica.schema().len(), db.schema().len());
        assert_eq!(replica.schema().num_ranking(), db.schema().num_ranking());
        for (ours, theirs) in db.schema().attrs().iter().zip(replica.schema().attrs()) {
            assert_eq!(ours.name, theirs.name);
            assert_eq!(ours.domain_size, theirs.domain_size);
            assert_eq!(ours.interface, theirs.interface);
            assert_eq!(ours.role, theirs.role);
        }
    });
    assert_eq!(report.connections, 1);
    assert_eq!(report.finished.len(), 1);
    assert_eq!(report.finished[0].label, "meta-probe");
    assert_eq!(report.finished[0].plans, 0);
}

/// Several remote tenants on one server and one shared database: each run
/// is deterministic and their per-connection accounting sums exactly to the
/// database's global counter — the same tenancy contract
/// `DiscoveryService` guarantees in-process.
#[test]
fn concurrent_remote_tenants_share_global_accounting() {
    let db = build_db(&[InterfaceType::Sq; 3], 3);
    let (results, report) = with_server(&db, ServerConfig::new().with_workers(4), |addr| {
        std::thread::scope(|scope| {
            let tenants: Vec<_> = (0..3)
                .map(|i| {
                    scope.spawn(move || {
                        let oracle = RemoteOracle::connect_with(addr, format!("tenant-{i}"), None)
                            .expect("handshake");
                        let machine = SqDbSky::new()
                            .machine(&oracle.replica())
                            .expect("SQ schema");
                        DiscoveryDriver::with_oracle(oracle, machine, DriverConfig::new())
                            .run()
                            .expect("tenant run")
                    })
                })
                .collect();
            tenants
                .into_iter()
                .map(|t| t.join().expect("tenant thread"))
                .collect::<Vec<_>>()
        })
    });

    for other in &results[1..] {
        assert_identical(&results[0], other);
    }
    assert_eq!(report.connections, 3);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.finished.len(), 3);
    let served: u64 = report.finished.iter().map(|c| c.queries).sum();
    assert_eq!(
        served,
        db.queries_issued(),
        "per-connection accounting must sum to the global counter"
    );
    let cost: u64 = results.iter().map(|r| r.query_cost).sum();
    assert_eq!(cost, db.queries_issued());
}
