//! The adversarial frame battery: every corrupted, truncated, oversized,
//! stalled or out-of-state input a hostile peer can produce must be
//! rejected **silently and cheaply** — no reply frame to probe, no panic,
//! no unbounded allocation, no wedged worker — and the server must go on
//! serving well-behaved clients afterwards.
//!
//! Client-side resilience rides along: a [`RemoteOracle`] facing a corrupt
//! or version-mismatched server reports transient
//! [`QueryError::ConnectionDropped`] instead of panicking.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use skyweb_core::codec::{FORMAT_VERSION, MAGIC};
use skyweb_core::{
    decode_welcome, encode_hello, encode_plan, encode_responses, encode_welcome, Discoverer,
    DiscoveryDriver, DriverConfig, Hello, PlanOracle, QueryPlan, SqDbSky, Welcome, KIND_PLAN,
    KIND_WELCOME, WIRE_PROTOCOL,
};
use skyweb_hidden_db::{
    HiddenDb, InterfaceType, Predicate, Query, QueryError, SchemaBuilder, Tuple,
};
use skyweb_net::wire::{read_frame, write_frame};
use skyweb_net::{NetError, RemoteOracle, ServeReport, Server, ServerConfig, MAX_FRAME_LEN};

fn small_db() -> HiddenDb {
    let schema = SchemaBuilder::new()
        .ranking("a0", 4, InterfaceType::Sq)
        .ranking("a1", 3, InterfaceType::Sq)
        .build();
    let tuples: Vec<Tuple> = (0..12u64)
        .map(|i| Tuple::new(i, vec![(i % 4) as u32, ((i / 4) % 3) as u32]))
        .collect();
    HiddenDb::with_sum_ranking(schema, tuples, 2)
}

/// Serves `db` while `f` runs, then shuts down and returns the report.
/// Shutdown happens even if `f` panics — otherwise a failed assertion
/// would deadlock the scope on the still-accepting server thread.
fn with_server<T>(
    db: &HiddenDb,
    config: ServerConfig,
    f: impl FnOnce(SocketAddr) -> T,
) -> (T, ServeReport) {
    let server = Server::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.handle();
    std::thread::scope(|scope| {
        let serving = scope.spawn(move || server.serve(db, &config));
        let value = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(addr)));
        handle.shutdown();
        let report = serving.join().expect("serve loop does not panic");
        match value {
            Ok(v) => (v, report),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

/// A raw socket that has completed a valid handshake.
fn handshake(addr: SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    let hello = Hello {
        protocol: WIRE_PROTOCOL,
        label: "adversary".to_string(),
    };
    write_frame(&mut stream, &encode_hello(&hello)).expect("send hello");
    let (kind, _) = read_frame(&mut stream, MAX_FRAME_LEN)
        .expect("welcome")
        .expect("welcome frame");
    assert_eq!(kind, KIND_WELCOME);
    stream
}

/// Reads the stream to EOF and returns everything the server sent back.
/// Panics (failing the test) if the server stalls instead of hanging up.
fn drain(stream: &mut TcpStream) -> Vec<u8> {
    let mut out = Vec::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return out,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            // Dropping a socket with adversarial bytes still unread
            // surfaces as a reset rather than a clean EOF on the peer —
            // an equally silent hang-up.
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => return out,
            Err(e) => panic!("server stalled instead of hanging up: {e}"),
        }
    }
}

/// Sends `bytes` and half-closes the write side, tolerating the race where
/// the server has already reset the connection (it drops as soon as the
/// input is provably bad, possibly before the send completes).
fn send_and_half_close(stream: &mut TcpStream, bytes: &[u8]) {
    let sent = stream
        .write_all(bytes)
        .and_then(|()| stream.flush())
        .and_then(|()| stream.shutdown(Shutdown::Write));
    if let Err(e) = sent {
        assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::NotConnected
            ),
            "unexpected send failure: {e}"
        );
    }
}

/// Sends `bytes` on a fresh handshaken connection, half-closes, and asserts
/// the server hangs up without sending a single reply byte.
fn expect_silent_drop(addr: SocketAddr, bytes: &[u8]) {
    let mut stream = handshake(addr);
    send_and_half_close(&mut stream, bytes);
    let reply = drain(&mut stream);
    assert!(
        reply.is_empty(),
        "server replied {} bytes to adversarial input {bytes:?}",
        reply.len()
    );
}

/// A well-behaved client run that must succeed — the proof that the server
/// survived whatever came before it.
fn good_client_still_served(addr: SocketAddr) {
    let oracle = RemoteOracle::connect_with(addr, "good", Some(Duration::from_secs(5)))
        .expect("handshake after abuse");
    let machine = SqDbSky::new()
        .machine(&oracle.replica())
        .expect("SQ schema");
    let result = DiscoveryDriver::with_oracle(oracle, machine, DriverConfig::new())
        .run()
        .expect("run after abuse");
    assert!(result.complete);
    assert!(!result.skyline.is_empty());
}

/// A one-query plan frame, the corpus for the corruption battery.
fn small_plan_frame() -> Vec<u8> {
    encode_plan(&QueryPlan::new(vec![Query::new(vec![
        Predicate::lt(0, 2),
        Predicate::lt(1, 2),
    ])]))
}

#[test]
fn truncated_handshake_is_rejected_and_the_server_keeps_serving() {
    let db = small_db();
    let ((), report) = with_server(&db, ServerConfig::new().with_workers(1), |addr| {
        let hello = encode_hello(&Hello {
            protocol: WIRE_PROTOCOL,
            label: "trunc".to_string(),
        });
        // Every prefix of the hello frame, including the empty connection.
        for cut in 0..hello.len() {
            let mut stream = TcpStream::connect(addr).expect("connect");
            send_and_half_close(&mut stream, &hello[..cut]);
            let reply = drain(&mut stream);
            assert!(
                reply.is_empty(),
                "server replied to a {cut}-byte handshake prefix"
            );
        }
        good_client_still_served(addr);
    });
    assert_eq!(report.rejected, {
        let hello = encode_hello(&Hello {
            protocol: WIRE_PROTOCOL,
            label: "trunc".to_string(),
        });
        hello.len() as u64
    });
    assert_eq!(report.finished.len(), 1);
}

#[test]
fn mid_frame_disconnect_after_handshake_is_rejected() {
    let db = small_db();
    let plan = small_plan_frame();
    let ((), report) = with_server(&db, ServerConfig::new().with_workers(1), |addr| {
        for cut in 1..plan.len() {
            expect_silent_drop(addr, &plan[..cut]);
        }
        good_client_still_served(addr);
    });
    assert_eq!(report.rejected, (plan.len() - 1) as u64);
    assert_eq!(report.finished.len(), 1);
}

#[test]
fn every_bit_flip_of_a_plan_frame_is_rejected() {
    let db = small_db();
    let plan = small_plan_frame();
    let ((), report) = with_server(&db, ServerConfig::new().with_workers(2), |addr| {
        for byte in 0..plan.len() {
            for bit in 0..8 {
                let mut flipped = plan.clone();
                flipped[byte] ^= 1u8 << bit;
                expect_silent_drop(addr, &flipped);
            }
        }
        good_client_still_served(addr);
    });
    assert_eq!(report.rejected, (plan.len() * 8) as u64);
    assert_eq!(report.finished.len(), 1);
}

#[test]
fn oversized_length_claims_are_dropped_without_allocation() {
    let db = small_db();
    let ((), report) = with_server(&db, ServerConfig::new().with_workers(1), |addr| {
        // A 16-byte frame claiming a terabyte payload, after the handshake.
        let mut huge = Vec::new();
        huge.extend_from_slice(&MAGIC);
        huge.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        huge.push(KIND_PLAN);
        huge.extend_from_slice(&(1u64 << 40).to_le_bytes());
        huge.push(0);
        assert_eq!(huge.len(), 16);
        expect_silent_drop(addr, &huge);

        // The same claim as the *handshake* frame: the tighter handshake
        // cap rejects it before the session even exists.
        let mut stream = TcpStream::connect(addr).expect("connect");
        send_and_half_close(&mut stream, &huge);
        assert!(drain(&mut stream).is_empty());

        good_client_still_served(addr);
    });
    assert_eq!(report.rejected, 2);
    assert_eq!(report.finished.len(), 1);
}

#[test]
fn out_of_state_frames_drop_the_connection() {
    let db = small_db();
    let ((), report) = with_server(&db, ServerConfig::new().with_workers(1), |addr| {
        // A responses frame where only a plan is valid.
        expect_silent_drop(addr, &encode_responses(&[]));
        // A second hello after the handshake.
        expect_silent_drop(
            addr,
            &encode_hello(&Hello {
                protocol: WIRE_PROTOCOL,
                label: "again".to_string(),
            }),
        );
        // A plan frame *instead of* the handshake.
        let mut stream = TcpStream::connect(addr).expect("connect");
        send_and_half_close(&mut stream, &small_plan_frame());
        assert!(drain(&mut stream).is_empty());

        good_client_still_served(addr);
    });
    assert_eq!(report.rejected, 3);
    assert_eq!(report.finished.len(), 1);
}

#[test]
fn slowloris_times_out_and_frees_the_worker() {
    let db = small_db();
    let config = ServerConfig::new()
        .with_workers(1)
        .with_read_timeout(Some(Duration::from_millis(100)));
    let ((), report) = with_server(&db, config, |addr| {
        // The slowloris: three bytes of a header, then silence, with the
        // socket held open. With a single worker, a wedge here would starve
        // every later client.
        let mut slow = TcpStream::connect(addr).expect("connect");
        slow.write_all(&MAGIC[..3]).expect("send partial header");
        slow.flush().expect("flush");

        // The honest client must still get served: the read timeout frees
        // the worker ~100 ms in.
        good_client_still_served(addr);

        // And the slow connection itself was hung up on, not left dangling.
        slow.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("set timeout");
        let mut buf = [0u8; 16];
        assert_eq!(
            slow.read(&mut buf).expect("read after timeout"),
            0,
            "the stalled connection must be closed, not kept alive"
        );
    });
    assert_eq!(report.rejected, 1);
    assert_eq!(report.finished.len(), 1);
}

#[test]
fn protocol_mismatch_still_gets_a_welcome_then_close() {
    let db = small_db();
    let ((), report) = with_server(&db, ServerConfig::new().with_workers(1), |addr| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("set timeout");
        let hello = Hello {
            protocol: WIRE_PROTOCOL + 1,
            label: "from-the-future".to_string(),
        };
        write_frame(&mut stream, &encode_hello(&hello)).expect("send hello");
        // The server still announces itself — that is *how* the client
        // learns which version to downgrade to — then hangs up.
        let (kind, frame) = read_frame(&mut stream, MAX_FRAME_LEN)
            .expect("welcome")
            .expect("welcome frame");
        assert_eq!(kind, KIND_WELCOME);
        let welcome = decode_welcome(&frame).expect("valid welcome");
        assert_eq!(welcome.protocol, WIRE_PROTOCOL);
        assert!(drain(&mut stream).is_empty(), "no frames after the close");
    });
    assert_eq!(report.rejected, 1);
    assert_eq!(report.finished.len(), 0);
}

/// A fake server speaking a future protocol version: the client must
/// surface [`NetError::ProtocolMismatch`], not limp along.
#[test]
fn client_rejects_a_mismatched_server() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let fake = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let (kind, _) = read_frame(&mut stream, MAX_FRAME_LEN)
            .expect("hello")
            .expect("hello frame");
        assert_eq!(kind, skyweb_core::KIND_HELLO);
        let welcome = Welcome {
            protocol: WIRE_PROTOCOL + 7,
            ranker: "sum".to_string(),
            k: 2,
            tuple_count: 0,
            schema: SchemaBuilder::new()
                .ranking("a0", 2, InterfaceType::Sq)
                .build(),
        };
        write_frame(&mut stream, &encode_welcome(&welcome)).expect("send welcome");
    });
    match RemoteOracle::connect(addr) {
        Err(NetError::ProtocolMismatch { ours, theirs }) => {
            assert_eq!(ours, WIRE_PROTOCOL);
            assert_eq!(theirs, WIRE_PROTOCOL + 7);
        }
        other => panic!("expected ProtocolMismatch, got {other:?}"),
    }
    fake.join().expect("fake server");
}

/// A server that answers a plan with garbage: the oracle reports the
/// transient [`QueryError::ConnectionDropped`] (so a retrying driver
/// degrades instead of aborting) and latches broken for later plans.
#[test]
fn oracle_latches_broken_after_a_corrupt_reply() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let fake = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let _ = read_frame(&mut stream, MAX_FRAME_LEN)
            .expect("hello")
            .expect("hello frame");
        let welcome = Welcome {
            protocol: WIRE_PROTOCOL,
            ranker: "sum".to_string(),
            k: 2,
            tuple_count: 0,
            schema: SchemaBuilder::new()
                .ranking("a0", 2, InterfaceType::Sq)
                .build(),
        };
        write_frame(&mut stream, &encode_welcome(&welcome)).expect("send welcome");
        let _ = read_frame(&mut stream, MAX_FRAME_LEN)
            .expect("plan")
            .expect("plan frame");
        // Reply with a frame kind that is never valid as a plan answer.
        let bogus = encode_hello(&Hello {
            protocol: WIRE_PROTOCOL,
            label: "gotcha".to_string(),
        });
        write_frame(&mut stream, &bogus).expect("send bogus reply");
    });
    let mut oracle = RemoteOracle::connect(addr).expect("handshake");
    let plan = vec![Query::select_all()];
    let (responses, err) = oracle.run_plan_grouped(&plan, None);
    assert!(responses.is_empty());
    assert_eq!(err, Some(QueryError::ConnectionDropped));
    // Later plans short-circuit on the latched broken flag — still the
    // same transient error, never a panic on a dead socket.
    let (responses, err) = oracle.run_plan_grouped(&plan, None);
    assert!(responses.is_empty());
    assert_eq!(err, Some(QueryError::ConnectionDropped));
    fake.join().expect("fake server");
}
