//! The unified, immutable, `Arc`-backed tuple store.
//!
//! Earlier revisions of the simulator kept the tuples **twice**: a plain
//! `Vec<Tuple>` for the oracle/scan path and a lazily built `Vec<Arc<Tuple>>`
//! from which indexed responses were cloned. [`TupleStore`] replaces both
//! with a single `Arc<[Arc<Tuple>]>`:
//!
//! * the **scan path** and the **index builder** iterate the store by
//!   reference ([`TupleStore::iter`]),
//! * **responses** bump a reference count ([`TupleStore::share`]) instead of
//!   deep-cloning a tuple,
//! * **oracle consumers** (ground-truth skylines, workload analysis) borrow
//!   the same allocation through [`crate::HiddenDb::oracle_tuples`],
//!
//! halving the resident memory of an indexed database. The store itself is
//! a handle: cloning it is one atomic increment, so it can be shared across
//! threads and sessions freely.

use std::fmt;
use std::ops::Index;
use std::sync::Arc;

use crate::Tuple;

/// An immutable tuple store shared (via `Arc`) by the scan path, the query
/// index and every [`crate::QueryResponse`].
#[derive(Clone)]
pub struct TupleStore {
    tuples: Arc<[Arc<Tuple>]>,
}

impl TupleStore {
    /// Builds a store from owned tuples. Each tuple is placed behind its own
    /// `Arc` exactly once; no code path copies it again afterwards.
    pub fn new(tuples: Vec<Tuple>) -> Self {
        TupleStore {
            tuples: tuples.into_iter().map(Arc::new).collect(),
        }
    }

    /// Number of tuples in the store.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` if the store holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Borrows the tuple at `idx`, or `None` if out of range.
    pub fn get(&self, idx: usize) -> Option<&Tuple> {
        self.tuples.get(idx).map(Arc::as_ref)
    }

    /// Shares the tuple at `idx`: one reference-count bump, no deep clone.
    /// This is how query responses are built.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn share(&self, idx: usize) -> Arc<Tuple> {
        Arc::clone(&self.tuples[idx])
    }

    /// The underlying shared slice, for callers that need positional access
    /// to the `Arc` handles themselves.
    pub fn as_slice(&self) -> &[Arc<Tuple>] {
        &self.tuples
    }

    /// Iterates the tuples in store order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &Tuple> {
        self.tuples.iter().map(Arc::as_ref)
    }

    /// Deep-copies the store into owned tuples (test/analysis convenience —
    /// the hot paths never call this).
    pub fn to_vec(&self) -> Vec<Tuple> {
        self.iter().cloned().collect()
    }
}

impl Index<usize> for TupleStore {
    type Output = Tuple;

    fn index(&self, idx: usize) -> &Tuple {
        &self.tuples[idx]
    }
}

impl fmt::Debug for TupleStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TupleStore")
            .field("len", &self.tuples.len())
            .finish()
    }
}

impl From<Vec<Tuple>> for TupleStore {
    fn from(tuples: Vec<Tuple>) -> Self {
        TupleStore::new(tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TupleStore {
        TupleStore::new(vec![
            Tuple::new(0, vec![1, 2]),
            Tuple::new(1, vec![3, 4]),
            Tuple::new(2, vec![5, 6]),
        ])
    }

    #[test]
    fn accessors() {
        let s = store();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s[1].id, 1);
        assert_eq!(s.get(2).map(|t| t.id), Some(2));
        assert!(s.get(3).is_none());
        assert_eq!(s.iter().map(|t| t.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(s.to_vec().len(), 3);
    }

    #[test]
    fn share_aliases_the_store() {
        let s = store();
        let shared = s.share(1);
        assert!(Arc::ptr_eq(&shared, &s.as_slice()[1]));
    }

    #[test]
    fn clone_is_a_handle_not_a_copy() {
        let s = store();
        let c = s.clone();
        for (a, b) in s.as_slice().iter().zip(c.as_slice()) {
            assert!(Arc::ptr_eq(a, b));
        }
    }
}
