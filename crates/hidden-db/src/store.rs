//! The unified, immutable, `Arc`-backed tuple store.
//!
//! Earlier revisions of the simulator kept the tuples **twice**: a plain
//! `Vec<Tuple>` for the oracle/scan path and a lazily built `Vec<Arc<Tuple>>`
//! from which indexed responses were cloned. [`TupleStore`] replaces both
//! with a single `Arc<[Arc<Tuple>]>`:
//!
//! * the **scan path** and the **index builder** iterate the store by
//!   reference ([`TupleStore::iter`]),
//! * **responses** bump a reference count ([`TupleStore::share`]) instead of
//!   deep-cloning a tuple,
//! * **oracle consumers** (ground-truth skylines, workload analysis) borrow
//!   the same allocation through [`crate::HiddenDb::oracle_tuples`],
//!
//! halving the resident memory of an indexed database. The store itself is
//! a handle: cloning it is one atomic increment, so it can be shared across
//! threads and sessions freely.
//!
//! Since PR 7 a store can also be **lazily backed by a persisted columnar
//! segment** ([`crate::SegmentReader`]): tuples materialize per chunk the
//! first time a query response touches them, so opening a 10M-tuple segment
//! costs O(footer) and resident memory tracks the *touched* working set,
//! not the dataset. The public API is unchanged — `share`/`get`/indexing
//! hydrate on demand (panicking on storage faults, which the engine
//! precludes by using the fallible [`TupleStore::try_share`] first), and
//! [`TupleStore::as_slice`]/[`TupleStore::iter`] hydrate everything once
//! (the full-scan escape hatch for oracle consumers and the `Scan`
//! reference strategy). Hydrated chunks are cached in the shared reader, so
//! clones of a lazy store share every materialized tuple.

use std::fmt;
use std::ops::Index;
use std::sync::Arc;

use crate::segment::{SegmentError, SegmentReader};
use crate::Tuple;

/// Where a [`TupleStore`]'s tuples live.
#[derive(Clone)]
enum Repr {
    /// Fully materialized in RAM.
    Ram(Arc<[Arc<Tuple>]>),
    /// Served lazily from a persisted columnar segment; hydrated chunks are
    /// cached inside the (shared) reader.
    Lazy(Arc<SegmentReader>),
}

/// An immutable tuple store shared (via `Arc`) by the scan path, the query
/// index and every [`crate::QueryResponse`].
#[derive(Clone)]
pub struct TupleStore {
    repr: Repr,
}

impl TupleStore {
    /// Builds a store from owned tuples. Each tuple is placed behind its own
    /// `Arc` exactly once; no code path copies it again afterwards.
    pub fn new(tuples: Vec<Tuple>) -> Self {
        TupleStore {
            repr: Repr::Ram(tuples.into_iter().map(Arc::new).collect()),
        }
    }

    /// Wraps an opened segment as a lazily-hydrating store.
    pub(crate) fn from_segment(reader: Arc<SegmentReader>) -> Self {
        TupleStore {
            repr: Repr::Lazy(reader),
        }
    }

    /// The backing segment reader, if this store is segment-backed.
    pub(crate) fn segment_reader(&self) -> Option<&Arc<SegmentReader>> {
        match &self.repr {
            Repr::Ram(_) => None,
            Repr::Lazy(reader) => Some(reader),
        }
    }

    /// Number of tuples in the store.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Ram(tuples) => tuples.len(),
            Repr::Lazy(reader) => reader.n(),
        }
    }

    /// `true` if the store holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows the tuple at `idx`, or `None` if out of range. On a
    /// segment-backed store this hydrates the **entire** store once (the
    /// bounded chunk cache may evict individual chunks, so a plain borrow
    /// can only come from the sticky full-hydration snapshot) — engine hot
    /// paths use [`TupleStore::try_share`] instead, which serves owned
    /// handles straight from the chunk cache.
    ///
    /// # Panics
    /// Panics if a segment-backed chunk fails to load (I/O error or
    /// corrupted bytes) — use the engine-facing fallible accessors to
    /// surface storage faults as errors instead.
    pub fn get(&self, idx: usize) -> Option<&Tuple> {
        match &self.repr {
            Repr::Ram(tuples) => tuples.get(idx).map(Arc::as_ref),
            Repr::Lazy(reader) => expect_loaded(reader.hydrate_all())
                .get(idx)
                .map(Arc::as_ref),
        }
    }

    /// Shares the tuple at `idx`: one reference-count bump, no deep clone
    /// (plus a one-time chunk hydration on a segment-backed store). This is
    /// how query responses are built.
    ///
    /// # Panics
    /// Panics if `idx` is out of range, or if a segment-backed chunk fails
    /// to load.
    pub fn share(&self, idx: usize) -> Arc<Tuple> {
        match &self.repr {
            Repr::Ram(tuples) => Arc::clone(&tuples[idx]),
            Repr::Lazy(reader) => expect_loaded(reader.tuple_at(idx)),
        }
    }

    /// Fallible [`TupleStore::share`]: surfaces segment storage faults as a
    /// typed error instead of panicking. Infallible on a RAM store.
    pub(crate) fn try_share(&self, idx: usize) -> Result<Arc<Tuple>, SegmentError> {
        match &self.repr {
            Repr::Ram(tuples) => Ok(Arc::clone(&tuples[idx])),
            Repr::Lazy(reader) => reader.tuple_at(idx),
        }
    }

    /// Materializes every tuple of a segment-backed store (no-op on RAM),
    /// surfacing storage faults. After this succeeds, every infallible
    /// accessor is guaranteed panic-free.
    pub(crate) fn try_hydrate_all(&self) -> Result<(), SegmentError> {
        match &self.repr {
            Repr::Ram(_) => Ok(()),
            Repr::Lazy(reader) => reader.hydrate_all().map(|_| ()),
        }
    }

    /// The underlying shared slice, for callers that need positional access
    /// to the `Arc` handles themselves. On a segment-backed store this
    /// hydrates the **entire** store once (cached in the shared reader) —
    /// it is the full-scan escape hatch, not a lazy path.
    ///
    /// # Panics
    /// Panics if a segment-backed chunk fails to load.
    pub fn as_slice(&self) -> &[Arc<Tuple>] {
        match &self.repr {
            Repr::Ram(tuples) => tuples,
            Repr::Lazy(reader) => expect_loaded(reader.hydrate_all()),
        }
    }

    /// Iterates the tuples in store order (fully hydrating a segment-backed
    /// store, like [`TupleStore::as_slice`]).
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &Tuple> {
        self.as_slice().iter().map(Arc::as_ref)
    }

    /// Deep-copies the store into owned tuples (test/analysis convenience —
    /// the hot paths never call this).
    pub fn to_vec(&self) -> Vec<Tuple> {
        self.iter().cloned().collect()
    }
}

/// Unwraps a lazy-hydration result on the infallible (panicking) API.
fn expect_loaded<T>(res: Result<T, SegmentError>) -> T {
    res.unwrap_or_else(|e| panic!("segment-backed tuple store failed to hydrate: {e}"))
}

impl Index<usize> for TupleStore {
    type Output = Tuple;

    fn index(&self, idx: usize) -> &Tuple {
        match &self.repr {
            Repr::Ram(tuples) => &tuples[idx],
            Repr::Lazy(reader) => expect_loaded(reader.hydrate_all())[idx].as_ref(),
        }
    }
}

impl fmt::Debug for TupleStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TupleStore")
            .field("len", &self.len())
            .field(
                "backing",
                &match &self.repr {
                    Repr::Ram(_) => "ram",
                    Repr::Lazy(_) => "segment",
                },
            )
            .finish()
    }
}

impl From<Vec<Tuple>> for TupleStore {
    fn from(tuples: Vec<Tuple>) -> Self {
        TupleStore::new(tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TupleStore {
        TupleStore::new(vec![
            Tuple::new(0, vec![1, 2]),
            Tuple::new(1, vec![3, 4]),
            Tuple::new(2, vec![5, 6]),
        ])
    }

    #[test]
    fn accessors() {
        let s = store();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s[1].id, 1);
        assert_eq!(s.get(2).map(|t| t.id), Some(2));
        assert!(s.get(3).is_none());
        assert_eq!(s.iter().map(|t| t.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(s.to_vec().len(), 3);
    }

    #[test]
    fn share_aliases_the_store() {
        let s = store();
        let shared = s.share(1);
        assert!(Arc::ptr_eq(&shared, &s.as_slice()[1]));
        assert!(Arc::ptr_eq(&s.try_share(1).unwrap(), &s.as_slice()[1]));
    }

    #[test]
    fn clone_is_a_handle_not_a_copy() {
        let s = store();
        let c = s.clone();
        for (a, b) in s.as_slice().iter().zip(c.as_slice()) {
            assert!(Arc::ptr_eq(a, b));
        }
    }
}
