//! Domination-consistent ranking functions used by the hidden database to
//! pick which `k` of the matching tuples a query returns.
//!
//! The paper supports *any* ranking function with a single requirement,
//! **domination consistency**: if tuple `t` dominates `t'` and both match a
//! query, then `t` must be ranked above `t'` in the answer. Every ranker in
//! this module satisfies that requirement; [`is_domination_consistent`] can
//! be used to check arbitrary answers in tests.

use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dominance::DominanceIndex;
use crate::store::TupleStore;
use crate::tuple::dominates_on;
use crate::{AttrId, Schema, Tuple};

/// A hidden database's proprietary ranking function.
///
/// Given the set of tuples matching a query, a ranker selects and orders the
/// (at most) `k` tuples that the web interface returns.
pub trait Ranker: Send + Sync {
    /// Human-readable name of the ranking function (for logs and reports).
    fn name(&self) -> &str;

    /// Selects the top `k` tuples out of `matching`, best first.
    ///
    /// Implementations must be *domination-consistent*: a tuple that is
    /// dominated by another matching tuple may never be ranked above it.
    fn select_top_k<'a>(&self, matching: &[&'a Tuple], k: usize, schema: &Schema)
        -> Vec<&'a Tuple>;

    /// Computes, once at database-construction time, the ranker's global
    /// preference order over the whole tuple store: a permutation of tuple
    /// *indices* (positions in `store`), best-ranked first.
    ///
    /// The contract is that for every subset `S` of the store and every `k`,
    /// [`Ranker::select_top_k`] on `S` returns exactly the first `k` members
    /// of `S` in this order. Deterministic total-order rankers (anything
    /// score-based, single-attribute, lexicographic) can therefore be
    /// answered by the indexed query engine with an early-terminating scan
    /// in rank order instead of a filter-everything-then-sort pass.
    ///
    /// Returns `None` (the default) when the ranker has no fixed total
    /// order — e.g. randomized or adversarial rankers whose choice depends
    /// on the queried subset — in which case the engine falls back to
    /// calling `select_top_k` on the matching set.
    fn precompute(&self, store: &TupleStore, schema: &Schema) -> Option<Vec<u32>> {
        let _ = (store, schema);
        None
    }

    /// Builds, once at database-construction time, an optional
    /// [`DominanceIndex`] over the store for rankers whose selection is
    /// *dominance-driven* rather than score-driven (and which therefore
    /// return `None` from [`Ranker::precompute`]). The engine hands the
    /// index back on every [`Ranker::select_top_k_indices`] call so the
    /// ranker never re-derives global dominance facts per query.
    ///
    /// The default (for total-order rankers, which never consult it) is
    /// `None`.
    fn precompute_dominance(&self, store: &TupleStore, schema: &Schema) -> Option<DominanceIndex> {
        let _ = (store, schema);
        None
    }

    /// Selects the top `k` of the tuples at store positions `indices`
    /// (which the caller supplies in ascending store order), returning the
    /// selected store positions best-first.
    ///
    /// This is the entry point both execution strategies use: it lets
    /// responses alias the store by index instead of resolving ranker-chosen
    /// references back to positions, and it is where a precomputed
    /// [`DominanceIndex`] (when the engine has one — `dom` is `None` on the
    /// scan reference path) is offered to dominance-driven rankers.
    /// Implementations must return the same selection whether or not `dom`
    /// is provided; the index is an accelerator, never an input.
    ///
    /// The default delegates to [`Ranker::select_top_k`] and maps the chosen
    /// references back to their positions, preserving exact behavior for
    /// rankers that don't override it.
    fn select_top_k_indices(
        &self,
        store: &TupleStore,
        indices: &[u32],
        k: usize,
        schema: &Schema,
        dom: Option<&DominanceIndex>,
    ) -> Vec<u32> {
        let _ = dom;
        let matching: Vec<&Tuple> = indices.iter().map(|&i| &store[i as usize]).collect();
        let selected = self.select_top_k(&matching, k, schema);
        // Rankers return arbitrary references out of `matching`; recover
        // each one's store position by pointer identity — hash only the k
        // selected pointers (k is small), then resolve them with one pass
        // over the matching set.
        let pos_of: std::collections::HashMap<*const Tuple, usize> = selected
            .iter()
            .enumerate()
            .map(|(pos, &t)| (t as *const Tuple, pos))
            .collect();
        let mut out = vec![u32::MAX; selected.len()];
        let mut remaining = selected.len();
        for (&t, &idx) in matching.iter().zip(indices) {
            if remaining == 0 {
                break;
            }
            if let Some(&pos) = pos_of.get(&(t as *const Tuple)) {
                out[pos] = idx;
                remaining -= 1;
            }
        }
        debug_assert!(out.iter().all(|&i| i != u32::MAX));
        out
    }
}

/// Rankers defined by a numeric score (lower score = ranked higher).
///
/// Any score that is monotone non-decreasing in every ranking attribute's
/// rank-space value is automatically domination-consistent.
pub trait ScoreRanker: Send + Sync {
    /// Name of the ranking function.
    fn name(&self) -> &str;
    /// The score of a tuple; lower is better.
    fn score(&self, tuple: &Tuple, schema: &Schema) -> f64;
}

impl<T: ScoreRanker> Ranker for T {
    fn name(&self) -> &str {
        ScoreRanker::name(self)
    }

    fn select_top_k<'a>(
        &self,
        matching: &[&'a Tuple],
        k: usize,
        schema: &Schema,
    ) -> Vec<&'a Tuple> {
        let mut scored: Vec<(f64, &'a Tuple)> = matching
            .iter()
            .map(|&t| (self.score(t, schema), t))
            .collect();
        // `total_cmp` rather than `partial_cmp(..).unwrap_or(Equal)`: the
        // latter silently scrambles the whole ordering as soon as one score
        // is NaN (sort comparators must be total). Under `total_cmp` NaN
        // scores sort after every finite score, deterministically.
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.id.cmp(&b.1.id)));
        scored.into_iter().take(k).map(|(_, t)| t).collect()
    }

    fn precompute(&self, store: &TupleStore, schema: &Schema) -> Option<Vec<u32>> {
        let scores: Vec<f64> = store.iter().map(|t| self.score(t, schema)).collect();
        let mut order: Vec<u32> = (0..store.len() as u32).collect();
        // Same (score, id) key and same stable sort as `select_top_k`, so
        // the permutation restricted to any matching subset reproduces the
        // subset's top-k order exactly.
        order.sort_by(|&a, &b| {
            scores[a as usize]
                .total_cmp(&scores[b as usize])
                .then(store[a as usize].id.cmp(&store[b as usize].id))
        });
        Some(order)
    }
}

/// Ranks tuples by the *sum* of their ranking-attribute rank values.
///
/// This is the ranking function the paper uses for its offline experiments:
/// "the SUM of attributes for which smaller values are preferred MINUS the
/// SUM of attributes for which larger values are preferred" — in rank space
/// all attributes are smaller-is-better, so the expression reduces to a
/// plain sum.
#[derive(Debug, Default, Clone)]
pub struct SumRanker;

impl ScoreRanker for SumRanker {
    fn name(&self) -> &str {
        "sum"
    }

    fn score(&self, tuple: &Tuple, schema: &Schema) -> f64 {
        schema
            .ranking_attrs()
            .iter()
            .map(|&a| f64::from(tuple.values[a]))
            .sum()
    }
}

/// Ranks tuples by a positive-weighted sum of their ranking attributes.
#[derive(Debug, Clone)]
pub struct WeightedSumRanker {
    weights: Vec<f64>,
}

impl WeightedSumRanker {
    /// Creates a weighted-sum ranker. `weights[i]` is the weight of the
    /// `i`-th *ranking* attribute (in `schema.ranking_attrs()` order).
    ///
    /// # Panics
    /// Panics if any weight is zero or negative: a non-positive weight would
    /// let a dominated tuple tie with (or overtake) its dominator, breaking
    /// domination consistency.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|w| *w > 0.0),
            "weights must be strictly positive to preserve domination consistency"
        );
        WeightedSumRanker { weights }
    }
}

impl ScoreRanker for WeightedSumRanker {
    fn name(&self) -> &str {
        "weighted-sum"
    }

    fn score(&self, tuple: &Tuple, schema: &Schema) -> f64 {
        schema
            .ranking_attrs()
            .iter()
            .enumerate()
            .map(|(i, &a)| self.weights.get(i).copied().unwrap_or(1.0) * f64::from(tuple.values[a]))
            .sum()
    }
}

/// Ranks tuples by a single attribute (e.g. price, low to high), breaking
/// ties by the sum of the remaining ranking attributes and finally by tuple
/// id.
///
/// This models the default ranking of the live websites in the paper's
/// online experiments: Blue Nile, Google Flights and Yahoo! Autos all rank
/// by price. The tie-break on the other ranking attributes is what keeps the
/// ranker domination-consistent when several tuples share the primary
/// attribute value.
#[derive(Debug, Clone)]
pub struct SingleAttributeRanker {
    attr: AttrId,
}

impl SingleAttributeRanker {
    /// Ranks by the given attribute, ascending in rank space.
    pub fn new(attr: AttrId) -> Self {
        SingleAttributeRanker { attr }
    }
}

impl SingleAttributeRanker {
    fn sort_key(&self, t: &Tuple, schema: &Schema) -> (crate::Value, u64, u64) {
        let tie_break: u64 = schema
            .ranking_attrs()
            .iter()
            .filter(|&&a| a != self.attr)
            .map(|&a| u64::from(t.values[a]))
            .sum();
        (t.values[self.attr], tie_break, t.id)
    }
}

impl Ranker for SingleAttributeRanker {
    fn name(&self) -> &str {
        "single-attribute"
    }

    fn select_top_k<'a>(
        &self,
        matching: &[&'a Tuple],
        k: usize,
        schema: &Schema,
    ) -> Vec<&'a Tuple> {
        let mut sorted: Vec<&'a Tuple> = matching.to_vec();
        sorted.sort_by_key(|t| self.sort_key(t, schema));
        sorted.truncate(k);
        sorted
    }

    fn precompute(&self, store: &TupleStore, schema: &Schema) -> Option<Vec<u32>> {
        let mut order: Vec<u32> = (0..store.len() as u32).collect();
        order.sort_by_key(|&i| self.sort_key(&store[i as usize], schema));
        Some(order)
    }
}

/// Ranks tuples lexicographically by a priority list of attributes.
#[derive(Debug, Clone)]
pub struct LexicographicRanker {
    priority: Vec<AttrId>,
}

impl LexicographicRanker {
    /// Creates a lexicographic ranker with the given attribute priority.
    pub fn new(priority: Vec<AttrId>) -> Self {
        LexicographicRanker { priority }
    }
}

impl LexicographicRanker {
    fn compare(&self, a: &Tuple, b: &Tuple) -> std::cmp::Ordering {
        for &attr in &self.priority {
            let ord = a.values[attr].cmp(&b.values[attr]);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a.id.cmp(&b.id)
    }
}

impl Ranker for LexicographicRanker {
    fn name(&self) -> &str {
        "lexicographic"
    }

    fn select_top_k<'a>(
        &self,
        matching: &[&'a Tuple],
        k: usize,
        _schema: &Schema,
    ) -> Vec<&'a Tuple> {
        let mut sorted: Vec<&'a Tuple> = matching.to_vec();
        sorted.sort_by(|a, b| self.compare(a, b));
        sorted.truncate(k);
        sorted
    }

    fn precompute(&self, store: &TupleStore, _schema: &Schema) -> Option<Vec<u32>> {
        let mut order: Vec<u32> = (0..store.len() as u32).collect();
        order.sort_by(|&a, &b| self.compare(&store[a as usize], &store[b as usize]));
        Some(order)
    }
}

/// Candidate state inside [`peel_top_k`].
#[derive(Clone, Copy, PartialEq, Eq)]
enum PeelState {
    /// Dominated by at least one current minimal candidate.
    Pending,
    /// Currently non-dominated (a member of the minimal set).
    Minimal,
    /// Already emitted into the answer.
    Taken,
}

/// One candidate of a peel: a tuple handle plus its monotone order key
/// (sum of attribute values or precomputed dominance rank — any total order
/// in which dominators come strictly first) and whether it is known to be a
/// global skyline member (then it is minimal in *every* subset and needs no
/// dominance test).
struct PeelCand<'a> {
    t: &'a Tuple,
    key: u64,
    free: bool,
    state: PeelState,
}

/// The shared selection loop of the dominance-driven rankers: repeatedly
/// extract one element of the current minimal (non-dominated) set, chosen
/// by `choose`, until `k` elements are emitted or the candidates run out.
/// Returns the positions (into `cands`) of the emitted elements, best
/// first.
///
/// `cands` must be sorted ascending by `(key, id)`. The minimal set is
/// maintained *incrementally*: it is built once with a sort-filter pass
/// (each candidate tested against the minimal set only — exact, since every
/// dominator chain ends in a minimal element), and after each extraction
/// only the tuples the extracted element dominated are re-examined. The old
/// implementation recomputed the full pairwise `minimal_indices` from
/// scratch on every round — O(rounds · n²) dominance tests versus
/// O(n · s) here (s = minimal-set size).
///
/// `choose` receives the size of the minimal set and returns the index of
/// the element to extract. The minimal set is kept in ascending `(key, id)`
/// order, so `choose = |len| len - 1` extracts the worst-key minimal
/// element and `choose = |len| rng.gen_range(0..len)` extracts a uniform
/// one.
fn peel_top_k(
    cands: &mut [PeelCand<'_>],
    k: usize,
    attrs: &[AttrId],
    mut choose: impl FnMut(usize) -> usize,
) -> Vec<usize> {
    debug_assert!(cands
        .windows(2)
        .all(|w| { (w[0].key, w[0].t.id) < (w[1].key, w[1].t.id) }));
    // Initial minimal set: sort-filter pass. All previously accepted
    // minimal candidates have strictly smaller (key, id), so testing
    // against them alone is exact.
    let mut minimal: Vec<usize> = Vec::new();
    for i in 0..cands.len() {
        let dominated = !cands[i].free
            && minimal
                .iter()
                .any(|&m| dominates_on(cands[m].t, cands[i].t, attrs));
        if dominated {
            cands[i].state = PeelState::Pending;
        } else {
            cands[i].state = PeelState::Minimal;
            minimal.push(i);
        }
    }

    let mut out = Vec::with_capacity(k.min(cands.len()));
    while out.len() < k && !minimal.is_empty() {
        let ci = minimal.remove(choose(minimal.len()));
        cands[ci].state = PeelState::Taken;
        out.push(ci);
        if out.len() == k {
            break;
        }
        // Promotion pass: a pending tuple becomes minimal when the element
        // just removed was its last remaining minimal dominator. Only
        // tuples the removed element dominated (strictly larger key, so
        // strictly after `ci`) can be affected; processing them in key
        // order lets earlier promotions veto later ones.
        for j in ci + 1..cands.len() {
            if cands[j].state != PeelState::Pending || !dominates_on(cands[ci].t, cands[j].t, attrs)
            {
                continue;
            }
            // `minimal` holds ascending candidate positions == ascending
            // (key, id); only the prefix before `j` can dominate j.
            let lim = minimal.partition_point(|&m| m < j);
            let dominated = minimal[..lim]
                .iter()
                .any(|&m| dominates_on(cands[m].t, cands[j].t, attrs));
            if !dominated {
                cands[j].state = PeelState::Minimal;
                minimal.insert(lim, j);
            }
        }
    }
    out
}

/// Builds peel candidates for a plain `select_top_k` call (no precomputed
/// dominance): keys are attribute-value sums, sorted by `(key, id)`.
fn peel_cands_from_refs<'a>(matching: &[&'a Tuple], attrs: &[AttrId]) -> Vec<PeelCand<'a>> {
    let mut cands: Vec<PeelCand<'a>> = matching
        .iter()
        .map(|&t| PeelCand {
            t,
            key: attrs.iter().map(|&a| u64::from(t.values[a])).sum(),
            free: false,
            state: PeelState::Pending,
        })
        .collect();
    cands.sort_unstable_by_key(|c| (c.key, c.t.id));
    cands
}

/// Runs a dominance-driven top-k selection through the store-index entry
/// point, consulting the precomputed [`DominanceIndex`] when available:
/// sorting by precomputed rank reproduces the `(sum, id)` order without
/// touching tuple values, and global skyline members skip their dominance
/// tests entirely. Falls back to the sum-key path (identical selection)
/// without an index.
fn peel_select_indices(
    store: &TupleStore,
    indices: &[u32],
    k: usize,
    attrs: &[AttrId],
    dom: Option<&DominanceIndex>,
    choose: impl FnMut(usize) -> usize,
) -> Vec<u32> {
    let mut order: Vec<u32> = indices.to_vec();
    let mut cands: Vec<PeelCand<'_>> = match dom {
        Some(dom) => {
            // The precomputed rank *is* the (sum, id) order restricted to
            // any subset, so the selection is identical to the sum-key path.
            order.sort_unstable_by_key(|&i| dom.rank_of(i as usize));
            order
                .iter()
                .map(|&i| PeelCand {
                    t: &store[i as usize],
                    key: u64::from(dom.rank_of(i as usize)),
                    free: dom.on_skyline(i as usize),
                    state: PeelState::Pending,
                })
                .collect()
        }
        None => {
            let key_of = |i: u32| -> u64 {
                let t = &store[i as usize];
                attrs.iter().map(|&a| u64::from(t.values[a])).sum()
            };
            order.sort_unstable_by_key(|&i| (key_of(i), store[i as usize].id));
            order
                .iter()
                .map(|&i| PeelCand {
                    t: &store[i as usize],
                    key: key_of(i),
                    free: false,
                    state: PeelState::Pending,
                })
                .collect()
        }
    };
    peel_top_k(&mut cands, k, attrs, choose)
        .into_iter()
        .map(|pos| order[pos])
        .collect()
}

/// The "average-case" ranking model of Section 3.2 of the paper: for every
/// query, the returned tuple is chosen **uniformly at random** among the
/// skyline tuples of the matching set.
///
/// The full top-k list is produced as a random linear extension of the
/// dominance partial order, generated by repeatedly drawing a uniform member
/// of the currently non-dominated tuples — which is domination-consistent by
/// construction.
#[derive(Debug)]
pub struct RandomSkylineRanker {
    rng: Mutex<StdRng>,
}

impl RandomSkylineRanker {
    /// Creates a randomized ranker with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomSkylineRanker {
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }
}

impl Ranker for RandomSkylineRanker {
    fn name(&self) -> &str {
        "random-skyline"
    }

    fn select_top_k<'a>(
        &self,
        matching: &[&'a Tuple],
        k: usize,
        schema: &Schema,
    ) -> Vec<&'a Tuple> {
        let attrs = schema.ranking_attrs();
        let mut cands = peel_cands_from_refs(matching, attrs);
        let mut rng = self
            .rng
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let picks = peel_top_k(&mut cands, k, attrs, |len| rng.gen_range(0..len));
        picks.into_iter().map(|pos| cands[pos].t).collect()
    }

    fn precompute_dominance(&self, store: &TupleStore, schema: &Schema) -> Option<DominanceIndex> {
        Some(DominanceIndex::build(store, schema.ranking_attrs()))
    }

    fn select_top_k_indices(
        &self,
        store: &TupleStore,
        indices: &[u32],
        k: usize,
        schema: &Schema,
        dom: Option<&DominanceIndex>,
    ) -> Vec<u32> {
        let mut rng = self
            .rng
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        peel_select_indices(store, indices, k, schema.ranking_attrs(), dom, |len| {
            rng.gen_range(0..len)
        })
    }
}

/// An adversarial (but still domination-consistent) ranking function used in
/// worst-case experiments: among the currently non-dominated matching
/// tuples it always returns the one with the **largest** attribute-rank sum,
/// i.e. the tuple a "reasonable" ranking function would be least likely to
/// surface. This is the kind of ill-behaved ranking the worst-case analysis
/// of Section 3.2 has to assume.
#[derive(Debug, Default, Clone)]
pub struct WorstCaseRanker;

impl Ranker for WorstCaseRanker {
    fn name(&self) -> &str {
        "worst-case"
    }

    fn select_top_k<'a>(
        &self,
        matching: &[&'a Tuple],
        k: usize,
        schema: &Schema,
    ) -> Vec<&'a Tuple> {
        let attrs = schema.ranking_attrs();
        let mut cands = peel_cands_from_refs(matching, attrs);
        // The minimal set is kept in ascending (sum, id) order, so the
        // adversarial largest-(sum, id) minimal element is simply its last
        // member — the same pick the old full recomputation made.
        let picks = peel_top_k(&mut cands, k, attrs, |len| len - 1);
        picks.into_iter().map(|pos| cands[pos].t).collect()
    }

    fn precompute_dominance(&self, store: &TupleStore, schema: &Schema) -> Option<DominanceIndex> {
        Some(DominanceIndex::build(store, schema.ranking_attrs()))
    }

    fn select_top_k_indices(
        &self,
        store: &TupleStore,
        indices: &[u32],
        k: usize,
        schema: &Schema,
        dom: Option<&DominanceIndex>,
    ) -> Vec<u32> {
        peel_select_indices(store, indices, k, schema.ranking_attrs(), dom, |len| {
            len - 1
        })
    }
}

/// Checks that an answer (`returned`, best first) to a query whose matching
/// set is `matching` respects domination consistency: no returned tuple is
/// preceded (or displaced) by a matching tuple that dominates it.
pub fn is_domination_consistent(returned: &[&Tuple], matching: &[&Tuple], schema: &Schema) -> bool {
    let attrs = schema.ranking_attrs();
    for (pos, &t) in returned.iter().enumerate() {
        for &u in matching {
            if dominates_on(u, t, attrs) {
                // `u` dominates `t`, so `u` must appear before `t`.
                match returned.iter().position(|&r| r.id == u.id) {
                    Some(upos) if upos < pos => {}
                    _ => return false,
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InterfaceType, SchemaBuilder};

    fn schema(m: usize) -> Schema {
        let mut b = SchemaBuilder::new();
        for i in 0..m {
            b = b.ranking(format!("a{i}"), 100, InterfaceType::Rq);
        }
        b.build()
    }

    fn toy_tuples() -> Vec<Tuple> {
        vec![
            Tuple::new(0, vec![5, 1]),
            Tuple::new(1, vec![4, 4]),
            Tuple::new(2, vec![1, 3]),
            Tuple::new(3, vec![3, 2]),
            Tuple::new(4, vec![6, 6]),
        ]
    }

    #[test]
    fn sum_ranker_orders_by_sum() {
        let s = schema(2);
        let tuples = toy_tuples();
        let refs: Vec<&Tuple> = tuples.iter().collect();
        let top = SumRanker.select_top_k(&refs, 3, &s);
        assert_eq!(top[0].id, 2); // sum 4
        assert_eq!(top[1].id, 3); // sum 5
        assert_eq!(top[2].id, 0); // sum 6
    }

    #[test]
    fn single_attribute_ranker_is_price_low_to_high() {
        let s = schema(2);
        let tuples = toy_tuples();
        let refs: Vec<&Tuple> = tuples.iter().collect();
        let top = SingleAttributeRanker::new(1).select_top_k(&refs, 2, &s);
        assert_eq!(top[0].id, 0);
        assert_eq!(top[1].id, 3);
    }

    #[test]
    fn lexicographic_ranker_respects_priority() {
        let s = schema(2);
        let tuples = [
            Tuple::new(0, vec![2, 0]),
            Tuple::new(1, vec![1, 9]),
            Tuple::new(2, vec![1, 3]),
        ];
        let refs: Vec<&Tuple> = tuples.iter().collect();
        let top = LexicographicRanker::new(vec![0, 1]).select_top_k(&refs, 3, &s);
        assert_eq!(top.iter().map(|t| t.id).collect::<Vec<_>>(), vec![2, 1, 0]);
    }

    #[test]
    fn weighted_sum_rejects_negative_weights() {
        let result = std::panic::catch_unwind(|| WeightedSumRanker::new(vec![1.0, -1.0]));
        assert!(result.is_err());
    }

    #[test]
    fn all_rankers_are_domination_consistent_on_toy_data() {
        let s = schema(2);
        let tuples = toy_tuples();
        let refs: Vec<&Tuple> = tuples.iter().collect();
        let rankers: Vec<Box<dyn Ranker>> = vec![
            Box::new(SumRanker),
            Box::new(WeightedSumRanker::new(vec![2.0, 0.5])),
            Box::new(SingleAttributeRanker::new(0)),
            Box::new(LexicographicRanker::new(vec![1, 0])),
            Box::new(RandomSkylineRanker::new(42)),
            Box::new(WorstCaseRanker),
        ];
        for ranker in &rankers {
            for k in 1..=tuples.len() {
                let top = ranker.select_top_k(&refs, k, &s);
                assert!(
                    is_domination_consistent(&top, &refs, &s),
                    "{} violated domination consistency at k={k}",
                    ranker.name()
                );
            }
        }
    }

    #[test]
    fn random_skyline_top1_is_always_a_skyline_tuple() {
        let s = schema(2);
        let tuples = toy_tuples();
        let refs: Vec<&Tuple> = tuples.iter().collect();
        let ranker = RandomSkylineRanker::new(7);
        // The skyline of the toy data is {0, 2, 3}.
        for _ in 0..50 {
            let top = ranker.select_top_k(&refs, 1, &s);
            assert!(matches!(top[0].id, 0 | 2 | 3));
        }
    }

    #[test]
    fn worst_case_ranker_prefers_large_sums_among_minimal() {
        let s = schema(2);
        let tuples = toy_tuples();
        let refs: Vec<&Tuple> = tuples.iter().collect();
        let top = WorstCaseRanker.select_top_k(&refs, 1, &s);
        // Among skyline tuples {0 (sum 6), 2 (sum 4), 3 (sum 5)} the ranker
        // picks the largest sum.
        assert_eq!(top[0].id, 0);
    }

    #[test]
    fn rankers_truncate_to_k() {
        let s = schema(2);
        let tuples = toy_tuples();
        let refs: Vec<&Tuple> = tuples.iter().collect();
        assert_eq!(SumRanker.select_top_k(&refs, 2, &s).len(), 2);
        assert_eq!(SumRanker.select_top_k(&refs, 100, &s).len(), tuples.len());
        assert!(SumRanker.select_top_k(&[], 3, &s).is_empty());
    }

    /// A pathological score function producing NaN for some tuples, used to
    /// pin down the NaN-safety of the sort in `select_top_k`.
    struct NanRanker;

    impl ScoreRanker for NanRanker {
        fn name(&self) -> &str {
            "nan"
        }

        fn score(&self, tuple: &Tuple, _schema: &Schema) -> f64 {
            if tuple.values[0] == 0 {
                f64::NAN
            } else {
                f64::from(tuple.values[0])
            }
        }
    }

    #[test]
    fn nan_scores_rank_last_and_deterministically() {
        let s = schema(2);
        let tuples = [
            Tuple::new(0, vec![0, 5]), // NaN score
            Tuple::new(1, vec![2, 5]),
            Tuple::new(2, vec![1, 5]),
            Tuple::new(3, vec![0, 9]), // NaN score
        ];
        let refs: Vec<&Tuple> = tuples.iter().collect();
        let top = NanRanker.select_top_k(&refs, 4, &s);
        // Finite scores first (ascending), then the NaN tuples in id order:
        // with the old `partial_cmp(..).unwrap_or(Equal)` comparator the
        // NaN entries scrambled the whole result non-deterministically.
        let ids: Vec<u64> = top.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![2, 1, 0, 3]);
        for _ in 0..10 {
            let again: Vec<u64> = NanRanker
                .select_top_k(&refs, 4, &s)
                .iter()
                .map(|t| t.id)
                .collect();
            assert_eq!(again, ids);
        }
        assert_eq!(NanRanker.select_top_k(&refs, 1, &s)[0].id, 2);
    }

    #[test]
    fn precompute_order_reproduces_select_top_k_on_every_subset() {
        let s = schema(2);
        let tuples = vec![
            Tuple::new(0, vec![5, 1]),
            Tuple::new(1, vec![4, 4]),
            Tuple::new(2, vec![1, 3]),
            Tuple::new(3, vec![3, 2]),
            Tuple::new(4, vec![6, 6]),
            Tuple::new(5, vec![1, 3]), // duplicate values of tuple 2
        ];
        let store = TupleStore::new(tuples.clone());
        let rankers: Vec<Box<dyn Ranker>> = vec![
            Box::new(SumRanker),
            Box::new(WeightedSumRanker::new(vec![2.0, 0.5])),
            Box::new(SingleAttributeRanker::new(1)),
            Box::new(LexicographicRanker::new(vec![1, 0])),
        ];
        for ranker in &rankers {
            let perm = ranker
                .precompute(&store, &s)
                .expect("deterministic rankers must precompute an order");
            // Every subset (bitmask) and every k: the permutation filtered
            // to the subset must equal select_top_k on the subset.
            for mask in 0u32..(1 << tuples.len()) {
                let subset: Vec<&Tuple> = tuples
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, t)| t)
                    .collect();
                for k in 1..=subset.len() {
                    let expected: Vec<u64> = ranker
                        .select_top_k(&subset, k, &s)
                        .iter()
                        .map(|t| t.id)
                        .collect();
                    let from_perm: Vec<u64> = perm
                        .iter()
                        .filter(|&&i| mask & (1 << i) != 0)
                        .take(k)
                        .map(|&i| tuples[i as usize].id)
                        .collect();
                    assert_eq!(
                        from_perm,
                        expected,
                        "{} diverged on mask {mask:b}, k={k}",
                        ranker.name()
                    );
                }
            }
        }
    }

    #[test]
    fn randomized_rankers_do_not_precompute() {
        let s = schema(2);
        let store = TupleStore::new(toy_tuples());
        assert!(RandomSkylineRanker::new(1).precompute(&store, &s).is_none());
        assert!(WorstCaseRanker.precompute(&store, &s).is_none());
    }

    #[test]
    fn domination_consistency_checker_detects_violations() {
        let s = schema(2);
        let good = Tuple::new(0, vec![1, 1]);
        let bad = Tuple::new(1, vec![2, 2]);
        let matching = vec![&good, &bad];
        // `bad` returned ahead of the tuple dominating it.
        assert!(!is_domination_consistent(&[&bad, &good], &matching, &s));
        assert!(is_domination_consistent(&[&good, &bad], &matching, &s));
        // `bad` returned while its dominator is suppressed entirely.
        assert!(!is_domination_consistent(&[&bad], &matching, &s));
    }
}
