//! Conjunctive search queries and per-attribute predicates.

use std::fmt;

use crate::{AttrId, Schema, Tuple, Value};

/// Comparison operator of a search predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `attribute < value`
    Lt,
    /// `attribute <= value`
    Le,
    /// `attribute = value`
    Eq,
    /// `attribute >= value`
    Ge,
    /// `attribute > value`
    Gt,
}

impl CmpOp {
    /// Evaluates `lhs OP rhs`.
    pub fn eval(self, lhs: Value, rhs: Value) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Gt => lhs > rhs,
        }
    }

    /// `true` for operators that bound the attribute from above
    /// ("better than" predicates in rank space).
    pub fn is_upper_bound(self) -> bool {
        matches!(self, CmpOp::Lt | CmpOp::Le)
    }

    /// `true` for operators that bound the attribute from below
    /// ("worse than" predicates in rank space).
    pub fn is_lower_bound(self) -> bool {
        matches!(self, CmpOp::Ge | CmpOp::Gt)
    }

    /// SQL-ish symbol used by [`fmt::Display`].
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
        }
    }
}

/// A single predicate of a conjunctive search query: `attribute OP value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// The attribute the predicate constrains.
    pub attr: AttrId,
    /// The comparison operator.
    pub op: CmpOp,
    /// The rank-space constant on the right-hand side.
    pub value: Value,
}

impl Predicate {
    /// Creates a new predicate.
    pub fn new(attr: AttrId, op: CmpOp, value: Value) -> Self {
        Predicate { attr, op, value }
    }

    /// `attr < value`
    pub fn lt(attr: AttrId, value: Value) -> Self {
        Predicate::new(attr, CmpOp::Lt, value)
    }

    /// `attr <= value`
    pub fn le(attr: AttrId, value: Value) -> Self {
        Predicate::new(attr, CmpOp::Le, value)
    }

    /// `attr = value`
    pub fn eq(attr: AttrId, value: Value) -> Self {
        Predicate::new(attr, CmpOp::Eq, value)
    }

    /// `attr >= value`
    pub fn ge(attr: AttrId, value: Value) -> Self {
        Predicate::new(attr, CmpOp::Ge, value)
    }

    /// `attr > value`
    pub fn gt(attr: AttrId, value: Value) -> Self {
        Predicate::new(attr, CmpOp::Gt, value)
    }

    /// Evaluates the predicate against a tuple.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        self.op.eval(tuple.values[self.attr], self.value)
    }
}

/// A conjunctive search query: the conjunction (`AND`) of zero or more
/// predicates. The empty conjunction is the `SELECT *` query that matches
/// every tuple.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Query {
    predicates: Vec<Predicate>,
}

impl Query {
    /// The `SELECT * FROM D` query (no predicates).
    pub fn select_all() -> Self {
        Query::default()
    }

    /// Builds a query from a list of predicates.
    pub fn new(predicates: Vec<Predicate>) -> Self {
        Query { predicates }
    }

    /// The predicates of this query, in insertion order.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// `true` if the query has no predicates (`SELECT *`).
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Returns a new query equal to this one with `pred` appended.
    pub fn and(&self, pred: Predicate) -> Query {
        let mut predicates = self.predicates.clone();
        predicates.push(pred);
        Query { predicates }
    }

    /// Returns a new query equal to this one with all of `preds` appended.
    pub fn and_all(&self, preds: &[Predicate]) -> Query {
        let mut predicates = self.predicates.clone();
        predicates.extend_from_slice(preds);
        Query { predicates }
    }

    /// Appends a predicate in place.
    pub fn push(&mut self, pred: Predicate) {
        self.predicates.push(pred);
    }

    /// `true` if `tuple` satisfies every predicate of the query.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        self.predicates.iter().all(|p| p.matches(tuple))
    }

    /// `true` if the query's predicates can never be satisfied by any value
    /// combination of `schema`'s domains, regardless of the database
    /// contents (e.g. `A < 0`, or `A <= 2 AND A >= 5`).
    ///
    /// Discovery algorithms use this to skip queries that are trivially
    /// empty without spending a web access on them... or rather, the hidden
    /// database simulator does *not* special-case them, so that query costs
    /// stay faithful; this helper is only used by tests and by internal
    /// bookkeeping that is allowed "for free" (client-side reasoning).
    pub fn is_unsatisfiable(&self, schema: &Schema) -> bool {
        for attr in 0..schema.len() {
            let mut lo: i64 = 0;
            let mut hi: i64 = i64::from(schema.attr(attr).max_value());
            for p in self.predicates.iter().filter(|p| p.attr == attr) {
                let v = i64::from(p.value);
                match p.op {
                    CmpOp::Lt => hi = hi.min(v - 1),
                    CmpOp::Le => hi = hi.min(v),
                    CmpOp::Eq => {
                        lo = lo.max(v);
                        hi = hi.min(v);
                    }
                    CmpOp::Ge => lo = lo.max(v),
                    CmpOp::Gt => lo = lo.max(v + 1),
                }
            }
            if lo > hi {
                return true;
            }
        }
        false
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.predicates.is_empty() {
            return write!(f, "SELECT * FROM D");
        }
        write!(f, "SELECT * FROM D WHERE ")?;
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "A{} {} {}", p.attr, p.op.symbol(), p.value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InterfaceType, SchemaBuilder};

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(!CmpOp::Lt.eval(2, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Eq.eval(3, 3));
        assert!(CmpOp::Ge.eval(3, 3));
        assert!(CmpOp::Gt.eval(4, 3));
        assert!(!CmpOp::Gt.eval(3, 3));
    }

    #[test]
    fn select_all_matches_everything() {
        let q = Query::select_all();
        assert!(q.is_empty());
        assert!(q.matches(&Tuple::new(0, vec![9, 9, 9])));
    }

    #[test]
    fn conjunction_matching() {
        let q = Query::new(vec![Predicate::lt(0, 5), Predicate::ge(1, 2)]);
        assert!(q.matches(&Tuple::new(0, vec![4, 2])));
        assert!(!q.matches(&Tuple::new(1, vec![5, 2])));
        assert!(!q.matches(&Tuple::new(2, vec![4, 1])));
    }

    #[test]
    fn and_does_not_mutate_original() {
        let q = Query::new(vec![Predicate::lt(0, 5)]);
        let q2 = q.and(Predicate::eq(1, 3));
        assert_eq!(q.len(), 1);
        assert_eq!(q2.len(), 2);
    }

    #[test]
    fn unsatisfiable_detection() {
        let schema = SchemaBuilder::new()
            .ranking("a", 10, InterfaceType::Rq)
            .ranking("b", 10, InterfaceType::Rq)
            .build();
        assert!(Query::new(vec![Predicate::lt(0, 0)]).is_unsatisfiable(&schema));
        assert!(
            Query::new(vec![Predicate::le(0, 2), Predicate::ge(0, 5)]).is_unsatisfiable(&schema)
        );
        assert!(
            !Query::new(vec![Predicate::le(0, 5), Predicate::ge(0, 5)]).is_unsatisfiable(&schema)
        );
        assert!(Query::new(vec![Predicate::gt(1, 9)]).is_unsatisfiable(&schema));
        assert!(!Query::select_all().is_unsatisfiable(&schema));
    }

    #[test]
    fn display_is_sql_like() {
        let q = Query::new(vec![Predicate::lt(0, 5), Predicate::eq(2, 1)]);
        assert_eq!(q.to_string(), "SELECT * FROM D WHERE A0 < 5 AND A2 = 1");
        assert_eq!(Query::select_all().to_string(), "SELECT * FROM D");
    }
}
