//! Conjunctive search queries and per-attribute predicates.

use std::fmt;

use crate::{AttrId, Schema, Tuple, Value};

/// Comparison operator of a search predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `attribute < value`
    Lt,
    /// `attribute <= value`
    Le,
    /// `attribute = value`
    Eq,
    /// `attribute >= value`
    Ge,
    /// `attribute > value`
    Gt,
}

impl CmpOp {
    /// Evaluates `lhs OP rhs`.
    pub fn eval(self, lhs: Value, rhs: Value) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Gt => lhs > rhs,
        }
    }

    /// `true` for operators that bound the attribute from above
    /// ("better than" predicates in rank space).
    pub fn is_upper_bound(self) -> bool {
        matches!(self, CmpOp::Lt | CmpOp::Le)
    }

    /// `true` for operators that bound the attribute from below
    /// ("worse than" predicates in rank space).
    pub fn is_lower_bound(self) -> bool {
        matches!(self, CmpOp::Ge | CmpOp::Gt)
    }

    /// SQL-ish symbol used by [`fmt::Display`].
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
        }
    }
}

/// A single predicate of a conjunctive search query: `attribute OP value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// The attribute the predicate constrains.
    pub attr: AttrId,
    /// The comparison operator.
    pub op: CmpOp,
    /// The rank-space constant on the right-hand side.
    pub value: Value,
}

impl Predicate {
    /// Creates a new predicate.
    pub fn new(attr: AttrId, op: CmpOp, value: Value) -> Self {
        Predicate { attr, op, value }
    }

    /// `attr < value`
    pub fn lt(attr: AttrId, value: Value) -> Self {
        Predicate::new(attr, CmpOp::Lt, value)
    }

    /// `attr <= value`
    pub fn le(attr: AttrId, value: Value) -> Self {
        Predicate::new(attr, CmpOp::Le, value)
    }

    /// `attr = value`
    pub fn eq(attr: AttrId, value: Value) -> Self {
        Predicate::new(attr, CmpOp::Eq, value)
    }

    /// `attr >= value`
    pub fn ge(attr: AttrId, value: Value) -> Self {
        Predicate::new(attr, CmpOp::Ge, value)
    }

    /// `attr > value`
    pub fn gt(attr: AttrId, value: Value) -> Self {
        Predicate::new(attr, CmpOp::Gt, value)
    }

    /// Evaluates the predicate against a tuple.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        self.op.eval(tuple.values[self.attr], self.value)
    }
}

/// A conjunctive search query: the conjunction (`AND`) of zero or more
/// predicates. The empty conjunction is the `SELECT *` query that matches
/// every tuple.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Query {
    predicates: Vec<Predicate>,
}

impl Query {
    /// The `SELECT * FROM D` query (no predicates).
    pub fn select_all() -> Self {
        Query::default()
    }

    /// Builds a query from a list of predicates.
    pub fn new(predicates: Vec<Predicate>) -> Self {
        Query { predicates }
    }

    /// The predicates of this query, in insertion order.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// `true` if the query has no predicates (`SELECT *`).
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Returns a new query equal to this one with `pred` appended.
    pub fn and(&self, pred: Predicate) -> Query {
        let mut predicates = self.predicates.clone();
        predicates.push(pred);
        Query { predicates }
    }

    /// Returns a new query equal to this one with all of `preds` appended.
    pub fn and_all(&self, preds: &[Predicate]) -> Query {
        let mut predicates = self.predicates.clone();
        predicates.extend_from_slice(preds);
        Query { predicates }
    }

    /// Appends a predicate in place.
    pub fn push(&mut self, pred: Predicate) {
        self.predicates.push(pred);
    }

    /// `true` if `tuple` satisfies every predicate of the query.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        self.predicates.iter().all(|p| p.matches(tuple))
    }

    /// Length of the longest common predicate *prefix* of `self` and
    /// `other` — the syntactic factoring the batch executor groups sibling
    /// queries by. Predicates are compared literally (attribute, operator,
    /// constant), which is exactly how tree-shaped discovery algorithms
    /// build sibling queries: the parent's conjunction followed by one
    /// per-child refinement.
    pub fn shared_prefix_len(&self, other: &Query) -> usize {
        self.predicates
            .iter()
            .zip(&other.predicates)
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// `true` if the query's predicates can never be satisfied by any value
    /// combination of `schema`'s domains, regardless of the database
    /// contents (e.g. `A < 0`, or `A <= 2 AND A >= 5`).
    ///
    /// Discovery algorithms use this to skip queries that are trivially
    /// empty without spending a web access on them... or rather, the hidden
    /// database simulator does *not* special-case them, so that query costs
    /// stay faithful; this helper is only used by tests and by internal
    /// bookkeeping that is allowed "for free" (client-side reasoning).
    pub fn is_unsatisfiable(&self, schema: &Schema) -> bool {
        for attr in 0..schema.len() {
            let mut lo: i64 = 0;
            let mut hi: i64 = i64::from(schema.attr(attr).max_value());
            for p in self.predicates.iter().filter(|p| p.attr == attr) {
                let v = i64::from(p.value);
                match p.op {
                    CmpOp::Lt => hi = hi.min(v - 1),
                    CmpOp::Le => hi = hi.min(v),
                    CmpOp::Eq => {
                        lo = lo.max(v);
                        hi = hi.min(v);
                    }
                    CmpOp::Ge => lo = lo.max(v),
                    CmpOp::Gt => lo = lo.max(v + 1),
                }
            }
            if lo > hi {
                return true;
            }
        }
        false
    }
}

/// One consecutive run of a query plan whose members all share the same
/// predicate prefix — the unit the engine's batch executor evaluates a
/// shared conjunction once for (see `Session::run_plan_grouped`).
///
/// Groups tile a plan: the first `len` queries form the first group, the
/// next group starts right after, and the `len`s sum to the plan length.
/// Within a group, the first `prefix_len` predicates of every query are
/// literally identical (same attribute, operator and constant, in the same
/// order); the remaining predicates are the query's private *residual*.
/// `prefix_len == 0` (nothing shared) and `len == 1` (a singleton) are
/// valid degenerate groups — the executor answers them exactly like
/// individually issued queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixGroup {
    /// Number of consecutive plan queries in this group (≥ 1).
    pub len: usize,
    /// Number of leading predicates all group members share.
    pub prefix_len: usize,
}

/// Factors a query plan into maximal runs of adjacent queries sharing a
/// predicate prefix — the engine-side fallback when a plan arrives without
/// sibling annotations from the discovery machine that built it.
///
/// The factoring is greedy: a group absorbs the next query while the
/// running common prefix keeps its length; a query that would *shrink* the
/// established prefix starts a fresh group (tree frontiers interleave
/// sibling groups of different parents, and a shrunk prefix would dilute
/// the shared work of every member already admitted). Queries sharing
/// nothing with their predecessor become singleton groups.
pub fn prefix_groups(queries: &[Query]) -> Vec<PrefixGroup> {
    let mut groups = Vec::new();
    let Some(first) = queries.first() else {
        return groups;
    };
    let mut start = 0usize;
    // The group's common prefix length; `None` while the group has a single
    // member (a singleton shares whatever its first sibling agrees on).
    let mut prefix: Option<usize> = None;
    let mut head = first;
    for (i, q) in queries.iter().enumerate().skip(1) {
        let common = head.shared_prefix_len(q);
        let common = prefix.map_or(common, |p| p.min(common));
        let extends = common >= 1 && prefix.is_none_or(|p| common == p);
        if extends {
            prefix = Some(common);
        } else {
            groups.push(PrefixGroup {
                len: i - start,
                prefix_len: prefix.unwrap_or(0),
            });
            start = i;
            prefix = None;
            head = q;
        }
    }
    groups.push(PrefixGroup {
        len: queries.len() - start,
        prefix_len: prefix.unwrap_or(0),
    });
    groups
}

/// `true` if `groups` is a valid tiling of `queries`: lengths are positive
/// and sum to the plan length, and every member of a group literally shares
/// its group's predicate prefix. The batch executor checks annotations from
/// discovery machines against this before trusting them.
pub fn groups_cover(queries: &[Query], groups: &[PrefixGroup]) -> bool {
    let mut pos = 0usize;
    for g in groups {
        if g.len == 0 || pos + g.len > queries.len() {
            return false;
        }
        let head = &queries[pos];
        if head.len() < g.prefix_len {
            return false;
        }
        let prefix = &head.predicates()[..g.prefix_len];
        for q in &queries[pos..pos + g.len] {
            if q.len() < g.prefix_len || &q.predicates()[..g.prefix_len] != prefix {
                return false;
            }
        }
        pos += g.len;
    }
    pos == queries.len()
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.predicates.is_empty() {
            return write!(f, "SELECT * FROM D");
        }
        write!(f, "SELECT * FROM D WHERE ")?;
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "A{} {} {}", p.attr, p.op.symbol(), p.value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InterfaceType, SchemaBuilder};

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(!CmpOp::Lt.eval(2, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Eq.eval(3, 3));
        assert!(CmpOp::Ge.eval(3, 3));
        assert!(CmpOp::Gt.eval(4, 3));
        assert!(!CmpOp::Gt.eval(3, 3));
    }

    #[test]
    fn select_all_matches_everything() {
        let q = Query::select_all();
        assert!(q.is_empty());
        assert!(q.matches(&Tuple::new(0, vec![9, 9, 9])));
    }

    #[test]
    fn conjunction_matching() {
        let q = Query::new(vec![Predicate::lt(0, 5), Predicate::ge(1, 2)]);
        assert!(q.matches(&Tuple::new(0, vec![4, 2])));
        assert!(!q.matches(&Tuple::new(1, vec![5, 2])));
        assert!(!q.matches(&Tuple::new(2, vec![4, 1])));
    }

    #[test]
    fn and_does_not_mutate_original() {
        let q = Query::new(vec![Predicate::lt(0, 5)]);
        let q2 = q.and(Predicate::eq(1, 3));
        assert_eq!(q.len(), 1);
        assert_eq!(q2.len(), 2);
    }

    #[test]
    fn unsatisfiable_detection() {
        let schema = SchemaBuilder::new()
            .ranking("a", 10, InterfaceType::Rq)
            .ranking("b", 10, InterfaceType::Rq)
            .build();
        assert!(Query::new(vec![Predicate::lt(0, 0)]).is_unsatisfiable(&schema));
        assert!(
            Query::new(vec![Predicate::le(0, 2), Predicate::ge(0, 5)]).is_unsatisfiable(&schema)
        );
        assert!(
            !Query::new(vec![Predicate::le(0, 5), Predicate::ge(0, 5)]).is_unsatisfiable(&schema)
        );
        assert!(Query::new(vec![Predicate::gt(1, 9)]).is_unsatisfiable(&schema));
        assert!(!Query::select_all().is_unsatisfiable(&schema));
    }

    #[test]
    fn shared_prefix_len_is_literal_and_ordered() {
        let base = Query::new(vec![Predicate::lt(0, 5), Predicate::ge(1, 2)]);
        let a = base.and(Predicate::lt(2, 3));
        let b = base.and(Predicate::lt(3, 7));
        assert_eq!(a.shared_prefix_len(&b), 2);
        assert_eq!(base.shared_prefix_len(&a), 2);
        assert_eq!(a.shared_prefix_len(&a), 3);
        // Same predicates, different order: no *prefix* sharing.
        let swapped = Query::new(vec![Predicate::ge(1, 2), Predicate::lt(0, 5)]);
        assert_eq!(base.shared_prefix_len(&swapped), 0);
        assert_eq!(Query::select_all().shared_prefix_len(&base), 0);
    }

    #[test]
    fn prefix_groups_edge_cases() {
        // Empty plan.
        assert!(prefix_groups(&[]).is_empty());
        // Single query.
        let q = Query::new(vec![Predicate::lt(0, 5)]);
        assert_eq!(
            prefix_groups(std::slice::from_ref(&q)),
            vec![PrefixGroup {
                len: 1,
                prefix_len: 0
            }]
        );
        // Zero shared prefix: all singletons.
        let plan = vec![
            Query::new(vec![Predicate::lt(0, 5)]),
            Query::new(vec![Predicate::lt(1, 5)]),
            Query::select_all(),
        ];
        let groups = prefix_groups(&plan);
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|g| g.len == 1 && g.prefix_len == 0));
        assert!(groups_cover(&plan, &groups));
        // All-identical queries: one group whose prefix is the whole query.
        let plan = vec![q.clone(), q.clone(), q.clone()];
        assert_eq!(
            prefix_groups(&plan),
            vec![PrefixGroup {
                len: 3,
                prefix_len: 1
            }]
        );
    }

    #[test]
    fn prefix_groups_split_sibling_runs() {
        // Two sibling families (SQ-frontier shape): children of P, then
        // children of Q, with nothing shared across the boundary.
        let p = Query::new(vec![Predicate::lt(0, 5)]);
        let q = Query::new(vec![Predicate::lt(1, 7)]);
        let plan = vec![
            p.and(Predicate::lt(1, 3)),
            p.and(Predicate::lt(2, 4)),
            p.and(Predicate::lt(3, 2)),
            q.and(Predicate::lt(0, 1)),
            q.and(Predicate::lt(2, 2)),
        ];
        let groups = prefix_groups(&plan);
        assert_eq!(
            groups,
            vec![
                PrefixGroup {
                    len: 3,
                    prefix_len: 1
                },
                PrefixGroup {
                    len: 2,
                    prefix_len: 1
                },
            ]
        );
        assert!(groups_cover(&plan, &groups));
        // A query that would shrink the established prefix starts fresh.
        let deep = p.and(Predicate::lt(1, 3));
        let plan = vec![
            deep.and(Predicate::lt(2, 1)),
            deep.and(Predicate::lt(3, 1)),
            p.and(Predicate::lt(2, 9)),
        ];
        let groups = prefix_groups(&plan);
        assert_eq!(groups[0].len, 2);
        assert_eq!(groups[0].prefix_len, 2);
        assert_eq!(groups[1].len, 1);
        assert!(groups_cover(&plan, &groups));
    }

    #[test]
    fn groups_cover_rejects_malformed_tilings() {
        let p = Query::new(vec![Predicate::lt(0, 5)]);
        let plan = vec![p.and(Predicate::lt(1, 3)), p.and(Predicate::lt(2, 4))];
        let ok = PrefixGroup {
            len: 2,
            prefix_len: 1,
        };
        assert!(groups_cover(&plan, &[ok]));
        // Wrong total length.
        assert!(!groups_cover(
            &plan,
            &[PrefixGroup {
                len: 1,
                prefix_len: 1
            }]
        ));
        // Prefix longer than a member.
        assert!(!groups_cover(
            &plan,
            &[PrefixGroup {
                len: 2,
                prefix_len: 3
            }]
        ));
        // Claimed prefix not actually shared.
        assert!(!groups_cover(
            &plan,
            &[PrefixGroup {
                len: 2,
                prefix_len: 2
            }]
        ));
        // Zero-length group.
        assert!(!groups_cover(
            &plan,
            &[
                PrefixGroup {
                    len: 0,
                    prefix_len: 0
                },
                ok
            ]
        ));
    }

    #[test]
    fn display_is_sql_like() {
        let q = Query::new(vec![Predicate::lt(0, 5), Predicate::eq(2, 1)]);
        assert_eq!(q.to_string(), "SELECT * FROM D WHERE A0 < 5 AND A2 = 1");
        assert_eq!(Query::select_all().to_string(), "SELECT * FROM D");
    }
}
