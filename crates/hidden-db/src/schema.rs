//! Schema description of a hidden web database: which attributes exist, how
//! large their domains are, and what kind of search predicates the web
//! interface supports for each of them.

use crate::{AttrId, Value};

/// The kind of search predicate a web interface supports for an attribute.
///
/// This is the taxonomy of Section 2.2 of the paper and, somewhat
/// surprisingly, it is the critical factor deciding how expensive skyline
/// discovery is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterfaceType {
    /// *Single-ended range query* predicate: `A < v`, `A <= v`, or `A = v`.
    ///
    /// Typical for attributes where users have no reason to specify an upper
    /// bound on quality, e.g. laptop memory size or number of stops.
    Sq,
    /// *(Two-ended) range query* predicate: `A < v`, `A <= v`, `A = v`,
    /// `A >= v`, or `A > v`.
    ///
    /// Typical for attributes such as price where users routinely specify
    /// both ends of a range.
    Rq,
    /// *Point query* predicate: only `A = v` is supported.
    ///
    /// Typical for small-domain ordinal attributes such as "number of stops"
    /// (0, 1, 2+) on flight search sites.
    Pq,
}

impl InterfaceType {
    /// Whether the interface supports "better than" one-ended ranges (`<`/`<=`).
    pub fn supports_upper_bound(self) -> bool {
        matches!(self, InterfaceType::Sq | InterfaceType::Rq)
    }

    /// Whether the interface supports "worse than" one-ended ranges (`>`/`>=`).
    pub fn supports_lower_bound(self) -> bool {
        matches!(self, InterfaceType::Rq)
    }

    /// Short human-readable label (`"SQ"`, `"RQ"`, `"PQ"`).
    pub fn label(self) -> &'static str {
        match self {
            InterfaceType::Sq => "SQ",
            InterfaceType::Rq => "RQ",
            InterfaceType::Pq => "PQ",
        }
    }
}

/// Whether an attribute participates in the skyline definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeRole {
    /// A ranking attribute: it has an inherent preferential order (smaller
    /// rank-space value = more preferred) and takes part in dominance.
    Ranking,
    /// A filtering attribute: order-less (make, model, flight number, ...).
    /// It has no bearing on the skyline but can be used as an equality
    /// filter appended to every query.
    Filtering,
}

/// Description of a single attribute of the hidden database.
#[derive(Debug, Clone)]
pub struct AttributeSpec {
    /// Human readable attribute name (e.g. `"price"`).
    pub name: String,
    /// Number of distinct rank-space values; valid values are
    /// `0..domain_size`.
    pub domain_size: Value,
    /// Which predicates the search interface supports for this attribute.
    pub interface: InterfaceType,
    /// Whether the attribute is a ranking or filtering attribute.
    pub role: AttributeRole,
}

impl AttributeSpec {
    /// Creates a new ranking attribute specification.
    pub fn ranking(name: impl Into<String>, domain_size: Value, interface: InterfaceType) -> Self {
        AttributeSpec {
            name: name.into(),
            domain_size,
            interface,
            role: AttributeRole::Ranking,
        }
    }

    /// Creates a new filtering attribute specification. Filtering attributes
    /// only ever support equality predicates.
    pub fn filtering(name: impl Into<String>, domain_size: Value) -> Self {
        AttributeSpec {
            name: name.into(),
            domain_size,
            interface: InterfaceType::Pq,
            role: AttributeRole::Filtering,
        }
    }

    /// The largest valid rank-space value of this attribute
    /// (`domain_size - 1`), i.e. the least-preferred value.
    pub fn max_value(&self) -> Value {
        self.domain_size.saturating_sub(1)
    }
}

/// The schema of a hidden web database: an ordered list of attributes.
#[derive(Debug, Clone)]
pub struct Schema {
    attrs: Vec<AttributeSpec>,
    ranking: Vec<AttrId>,
}

impl Schema {
    /// Builds a schema from a list of attribute specifications.
    pub fn new(attrs: Vec<AttributeSpec>) -> Self {
        let ranking = attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.role == AttributeRole::Ranking)
            .map(|(i, _)| i)
            .collect();
        Schema { attrs, ranking }
    }

    /// Total number of attributes (ranking + filtering).
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// `true` if the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attribute specification at position `attr`.
    ///
    /// # Panics
    /// Panics if `attr` is out of range.
    pub fn attr(&self, attr: AttrId) -> &AttributeSpec {
        &self.attrs[attr]
    }

    /// All attribute specifications in schema order.
    pub fn attrs(&self) -> &[AttributeSpec] {
        &self.attrs
    }

    /// The identifiers of the ranking attributes, in schema order.
    pub fn ranking_attrs(&self) -> &[AttrId] {
        &self.ranking
    }

    /// Number of ranking attributes (the `m` of the paper).
    pub fn num_ranking(&self) -> usize {
        self.ranking.len()
    }

    /// Looks up an attribute id by name.
    pub fn attr_by_name(&self, name: &str) -> Option<AttrId> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// `true` if `value` is inside the attribute's domain.
    pub fn value_in_domain(&self, attr: AttrId, value: Value) -> bool {
        value < self.attrs[attr].domain_size
    }

    /// Ranking attributes whose interface supports range predicates
    /// (SQ or RQ).
    pub fn range_attrs(&self) -> Vec<AttrId> {
        self.ranking
            .iter()
            .copied()
            .filter(|&a| self.attrs[a].interface != InterfaceType::Pq)
            .collect()
    }

    /// Ranking attributes whose interface supports only point predicates.
    pub fn point_attrs(&self) -> Vec<AttrId> {
        self.ranking
            .iter()
            .copied()
            .filter(|&a| self.attrs[a].interface == InterfaceType::Pq)
            .collect()
    }

    /// Ranking attributes whose interface supports two-ended ranges.
    pub fn two_ended_attrs(&self) -> Vec<AttrId> {
        self.ranking
            .iter()
            .copied()
            .filter(|&a| self.attrs[a].interface == InterfaceType::Rq)
            .collect()
    }
}

/// Convenience builder for [`Schema`].
///
/// ```
/// use skyweb_hidden_db::{InterfaceType, SchemaBuilder};
/// let schema = SchemaBuilder::new()
///     .ranking("price", 1000, InterfaceType::Rq)
///     .ranking("stops", 3, InterfaceType::Pq)
///     .filtering("carrier", 14)
///     .build();
/// assert_eq!(schema.len(), 3);
/// assert_eq!(schema.num_ranking(), 2);
/// ```
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    attrs: Vec<AttributeSpec>,
}

impl SchemaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        SchemaBuilder::default()
    }

    /// Adds a ranking attribute.
    pub fn ranking(
        mut self,
        name: impl Into<String>,
        domain_size: Value,
        interface: InterfaceType,
    ) -> Self {
        self.attrs
            .push(AttributeSpec::ranking(name, domain_size, interface));
        self
    }

    /// Adds a filtering attribute.
    pub fn filtering(mut self, name: impl Into<String>, domain_size: Value) -> Self {
        self.attrs.push(AttributeSpec::filtering(name, domain_size));
        self
    }

    /// Finalizes the schema.
    pub fn build(self) -> Schema {
        Schema::new(self.attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_schema() -> Schema {
        SchemaBuilder::new()
            .ranking("price", 100, InterfaceType::Rq)
            .ranking("duration", 50, InterfaceType::Sq)
            .ranking("stops", 3, InterfaceType::Pq)
            .filtering("carrier", 5)
            .build()
    }

    #[test]
    fn ranking_and_filtering_are_separated() {
        let s = mixed_schema();
        assert_eq!(s.len(), 4);
        assert_eq!(s.num_ranking(), 3);
        assert_eq!(s.ranking_attrs(), &[0, 1, 2]);
        assert_eq!(s.attr(3).role, AttributeRole::Filtering);
    }

    #[test]
    fn interface_partitions() {
        let s = mixed_schema();
        assert_eq!(s.range_attrs(), vec![0, 1]);
        assert_eq!(s.point_attrs(), vec![2]);
        assert_eq!(s.two_ended_attrs(), vec![0]);
    }

    #[test]
    fn interface_capabilities() {
        assert!(InterfaceType::Sq.supports_upper_bound());
        assert!(!InterfaceType::Sq.supports_lower_bound());
        assert!(InterfaceType::Rq.supports_lower_bound());
        assert!(!InterfaceType::Pq.supports_upper_bound());
        assert_eq!(InterfaceType::Pq.label(), "PQ");
    }

    #[test]
    fn lookup_by_name_and_domain() {
        let s = mixed_schema();
        assert_eq!(s.attr_by_name("stops"), Some(2));
        assert_eq!(s.attr_by_name("unknown"), None);
        assert!(s.value_in_domain(2, 2));
        assert!(!s.value_in_domain(2, 3));
        assert_eq!(s.attr(2).max_value(), 2);
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.num_ranking(), 0);
    }
}
