//! Tuples and the dominance relation between them.

use crate::{AttrId, Schema, TupleId, Value};

/// A database tuple: an identifier plus one rank-space value per attribute
/// (in schema order).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    /// Stable identifier of the tuple inside its database.
    pub id: TupleId,
    /// One value per attribute, in schema order. Smaller = more preferred
    /// for ranking attributes; arbitrary category code for filtering
    /// attributes.
    pub values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from its id and values.
    pub fn new(id: TupleId, values: Vec<Value>) -> Self {
        Tuple { id, values }
    }

    /// The value of attribute `attr`.
    ///
    /// # Panics
    /// Panics if `attr` is out of range.
    pub fn value(&self, attr: AttrId) -> Value {
        self.values[attr]
    }

    /// Number of attributes stored in this tuple.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Projection of the tuple onto a subset of attributes.
    pub fn project(&self, attrs: &[AttrId]) -> Vec<Value> {
        attrs.iter().map(|&a| self.values[a]).collect()
    }

    /// `true` if every listed attribute value lies inside its closed bound:
    /// the box-membership test the indexed query engine reduces conjunctive
    /// queries to (every supported predicate is a one-attribute range).
    #[inline]
    pub fn within_bounds(&self, bounds: &[(AttrId, Value, Value)]) -> bool {
        bounds.iter().all(|&(attr, lo, hi)| {
            let v = self.values[attr];
            v >= lo && v <= hi
        })
    }
}

/// Outcome of comparing two tuples under the dominance partial order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dominance {
    /// The left tuple dominates the right one (better or equal everywhere,
    /// strictly better somewhere).
    Dominates,
    /// The right tuple dominates the left one.
    DominatedBy,
    /// The tuples have identical values on all compared attributes.
    Equal,
    /// Neither tuple dominates the other.
    Incomparable,
}

/// Compares `a` and `b` on the given attributes under the
/// "smaller rank-space value is better" preference order.
pub fn compare_on(a: &Tuple, b: &Tuple, attrs: &[AttrId]) -> Dominance {
    let mut a_better = false;
    let mut b_better = false;
    for &attr in attrs {
        let (va, vb) = (a.values[attr], b.values[attr]);
        if va < vb {
            a_better = true;
        } else if vb < va {
            b_better = true;
        }
        if a_better && b_better {
            return Dominance::Incomparable;
        }
    }
    match (a_better, b_better) {
        (true, false) => Dominance::Dominates,
        (false, true) => Dominance::DominatedBy,
        (false, false) => Dominance::Equal,
        (true, true) => Dominance::Incomparable,
    }
}

/// `true` if `a` dominates `b` on the given attributes: `a` is at least as
/// good as `b` on every attribute and strictly better on at least one.
pub fn dominates_on(a: &Tuple, b: &Tuple, attrs: &[AttrId]) -> bool {
    compare_on(a, b, attrs) == Dominance::Dominates
}

/// `true` if `a` dominates `b` on all *ranking* attributes of `schema`.
///
/// This is the dominance relation used by the skyline definition in the
/// paper: filtering attributes are ignored.
pub fn dominates(a: &Tuple, b: &Tuple, schema: &Schema) -> bool {
    dominates_on(a, b, schema.ranking_attrs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InterfaceType, SchemaBuilder};

    fn schema3() -> Schema {
        SchemaBuilder::new()
            .ranking("a", 10, InterfaceType::Rq)
            .ranking("b", 10, InterfaceType::Rq)
            .filtering("f", 4)
            .build()
    }

    #[test]
    fn basic_dominance() {
        let s = schema3();
        let better = Tuple::new(0, vec![1, 2, 3]);
        let worse = Tuple::new(1, vec![2, 2, 0]);
        assert!(dominates(&better, &worse, &s));
        assert!(!dominates(&worse, &better, &s));
    }

    #[test]
    fn equal_values_do_not_dominate() {
        let s = schema3();
        let a = Tuple::new(0, vec![1, 2, 0]);
        let b = Tuple::new(1, vec![1, 2, 1]);
        // identical on ranking attrs, differing only on the filtering attr
        assert!(!dominates(&a, &b, &s));
        assert_eq!(compare_on(&a, &b, s.ranking_attrs()), Dominance::Equal);
    }

    #[test]
    fn incomparable_tuples() {
        let s = schema3();
        let a = Tuple::new(0, vec![1, 5, 0]);
        let b = Tuple::new(1, vec![5, 1, 0]);
        assert_eq!(
            compare_on(&a, &b, s.ranking_attrs()),
            Dominance::Incomparable
        );
        assert!(!dominates(&a, &b, &s));
        assert!(!dominates(&b, &a, &s));
    }

    #[test]
    fn dominance_on_subset_of_attributes() {
        let a = Tuple::new(0, vec![1, 9]);
        let b = Tuple::new(1, vec![2, 0]);
        assert!(dominates_on(&a, &b, &[0]));
        assert!(dominates_on(&b, &a, &[1]));
        assert!(!dominates_on(&a, &b, &[0, 1]));
    }

    #[test]
    fn projection_and_accessors() {
        let t = Tuple::new(7, vec![3, 1, 4]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.value(2), 4);
        assert_eq!(t.project(&[2, 0]), vec![4, 3]);
    }

    #[test]
    fn within_bounds_is_a_box_membership_test() {
        let t = Tuple::new(0, vec![3, 1, 4]);
        assert!(t.within_bounds(&[]));
        assert!(t.within_bounds(&[(0, 0, 5), (2, 4, 4)]));
        assert!(!t.within_bounds(&[(0, 4, 9)]));
        assert!(!t.within_bounds(&[(1, 0, 5), (2, 0, 3)]));
    }

    #[test]
    fn compare_is_antisymmetric() {
        let a = Tuple::new(0, vec![1, 1]);
        let b = Tuple::new(1, vec![2, 2]);
        assert_eq!(compare_on(&a, &b, &[0, 1]), Dominance::Dominates);
        assert_eq!(compare_on(&b, &a, &[0, 1]), Dominance::DominatedBy);
    }
}
