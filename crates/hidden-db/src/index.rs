//! The indexed query-execution engine behind [`crate::HiddenDb`].
//!
//! The experiment harness issues tens of thousands of simulated top-k
//! queries per discovery run, so the per-query cost of the simulator bounds
//! how fast whole experiments can go. The naive interface answers each query
//! with a full O(n) predicate scan, a heap-allocated match vector, a full
//! sort by score and deep tuple clones. This module precomputes, once at
//! construction:
//!
//! * a **rank-order permutation** — the ranker's global preference order
//!   over the store (via [`crate::Ranker::precompute`]), so top-k selection
//!   becomes "walk the store in rank order, stop after `k` matches plus one
//!   overflow probe" with no sorting at query time;
//! * **per-rank-block zone maps** — for every 64 consecutive ranks and every
//!   attribute, the min/max attribute value inside the block. Broad-range
//!   rank scans skip whole blocks whose value range cannot intersect the
//!   query box and evaluate surviving blocks with a branch-free 64-bit
//!   match bitset instead of a tuple-by-tuple candidate walk;
//! * **per-attribute posting lists with prefix counts** — tuple indices
//!   bucketed by attribute value (a counting sort per attribute), so the
//!   engine knows the exact selectivity of any single-attribute range in
//!   O(1) and can iterate only the candidates of the most selective
//!   predicate of a conjunction;
//! * a **shared response path** — answers are built by bumping reference
//!   counts out of the unified [`TupleStore`] instead of deep-copying
//!   tuples, and all per-query working memory lives in a reusable
//!   [`Scratch`] buffer owned by the calling session.
//!
//! Since PR 7 the same structures also exist in persisted form: a
//! [`crate::SegmentReader`] serves the permutation, columns, zone maps and
//! posting lists straight from an on-disk columnar segment, hydrating
//! lazily per chunk. [`QueryIndex`] abstracts over the two through
//! [`IndexBackend`], so every plan below runs unchanged — and produces
//! byte-identical answers — against either backing (pinned by the
//! differential suites in `tests/proptest_segment.rs` and
//! `tests/golden_traces.rs`). Storage faults surface as typed
//! [`SegmentError`]s threaded through every execution path; the RAM backend
//! never produces one.
//!
//! Every conjunctive predicate the interface supports (`<`, `<=`, `=`,
//! `>=`, `>`) is a one-attribute range constraint, so a whole query reduces
//! to a per-attribute box `[lo, hi]^m` — membership is a handful of integer
//! compares and never needs the original `Query` again.
//!
//! The engine is behaviorally identical to the naive path (which is kept as
//! [`ExecStrategy::Scan`] for differential testing): same tuples, same
//! order, same overflow flag, same statistics.

use std::sync::{Arc, OnceLock};

use crate::dominance::DominanceIndex;
use crate::predicate::PrefixGroup;
use crate::segment::{SegmentError, SegmentReader};
use crate::store::TupleStore;
use crate::{
    AttrId, CmpOp, HiddenDb, Predicate, Query, QueryError, QueryResponse, Ranker, Schema, Tuple,
    Value,
};

/// How a [`crate::HiddenDb`] executes queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecStrategy {
    /// The reference implementation: filter every tuple, rank the matches,
    /// share the top k. O(n log n) per query; kept for differential testing
    /// and as the ground truth the indexed engine must reproduce.
    Scan,
    /// The indexed engine of the `index` module: rank-ordered early
    /// termination with block skipping, posting-list candidate pruning,
    /// allocation-light responses. The default.
    #[default]
    Indexed,
}

/// Ranks per zone-map block: the rank permutation is cut into chunks of 64
/// so one `u64` bitset covers a block and the per-block min/max tables stay
/// small (`2·m·n/64` values). Segment chunk sizes are multiples of this, so
/// a block never spans two persisted chunks.
pub(crate) const BLOCK: usize = 64;

/// Denominator of the planner's selectivity crossover: a conjunction whose
/// most selective predicate matches `count` tuples takes the early-
/// terminating block rank scan when `count * BLOCK_SCAN_CROSSOVER_DEN >= n`
/// (i.e. selectivity ≥ n / 32 — a *broad* query), and the posting-list plan
/// otherwise.
///
/// Rationale: the block engine costs ~1 sequential u32 read per visited
/// rank versus a pointer-chasing push per posting candidate (~20-30x more),
/// so it wins well below 50% selectivity; n/32 is the empirical crossover
/// on the discovery workloads (MQ/BASELINE region queries of the paper's
/// figure suite). The same constant gates the shared-prefix materializer
/// (both the posting cut and the joint-selectivity estimate), so the future
/// calibrated cost model (ROADMAP AQP item) has exactly one seam to
/// replace. Referenced from the planner unit tests
/// (`crossover_constant_separates_scan_and_posting_plans`).
pub(crate) const BLOCK_SCAN_CROSSOVER_DEN: usize = 32;

/// Per-attribute posting list: tuple indices grouped by attribute value.
///
/// `order[starts[v] .. starts[v + 1]]` are the indices (ascending, thanks to
/// the stable counting sort) of the tuples whose value on this attribute is
/// exactly `v`; `starts` doubles as a prefix-count table, so the number of
/// tuples with value in `[lo, hi]` is `starts[hi + 1] - starts[lo]`.
struct Posting {
    starts: Vec<u32>,
    order: Vec<u32>,
}

/// Rank-ordered columnar values with per-block min/max zone maps, one table
/// per attribute. Built only when a rank permutation exists, since only the
/// rank scan consults them.
///
/// `cols[attr][rank]` is the value of the rank-`rank` tuple on `attr` —
/// the same data as the tuple store, laid out so a block's bound check is a
/// sequential pass over 64 contiguous `u32`s instead of 64 pointer chases
/// through `Arc<Tuple>` handles. `mins[attr][block]` / `maxs[attr][block]`
/// summarize each 64-rank block so provably empty (or provably full) blocks
/// skip the pass entirely.
struct RankColumns {
    cols: Vec<Vec<Value>>,
    mins: Vec<Vec<Value>>,
    maxs: Vec<Vec<Value>>,
}

/// The fully-materialized in-RAM index — what [`QueryIndex::build`]
/// produces and what [`crate::SegmentWriter`] persists.
pub(crate) struct RamIndex {
    /// `perm[r]` = store index of the tuple at rank `r` (best first), when
    /// the ranker exposes a deterministic total order.
    perm: Option<Vec<u32>>,
    /// Inverse of `perm`: store index → rank position. Empty when `perm` is
    /// `None`.
    rank_of: Vec<u32>,
    /// Columnar values + per-block min/max over the rank order. `None` iff
    /// `perm` is.
    zones: Option<RankColumns>,
    postings: Vec<Posting>,
}

impl RamIndex {
    /// The rank permutation, if the ranker exposes a total order.
    pub(crate) fn perm(&self) -> Option<&[u32]> {
        self.perm.as_deref()
    }

    /// The inverse permutation (empty when [`RamIndex::perm`] is `None`).
    pub(crate) fn rank_of(&self) -> &[u32] {
        &self.rank_of
    }

    /// The rank-ordered column of `attr`. Requires a rank order.
    pub(crate) fn rank_col(&self, attr: AttrId) -> &[Value] {
        &self
            .zones
            .as_ref()
            .expect("rank columns require a rank order")
            .cols[attr]
    }

    /// Per-block zone-map minima of `attr`. Requires a rank order.
    pub(crate) fn zone_mins(&self, attr: AttrId) -> &[Value] {
        &self
            .zones
            .as_ref()
            .expect("zone maps require a rank order")
            .mins[attr]
    }

    /// Per-block zone-map maxima of `attr`. Requires a rank order.
    pub(crate) fn zone_maxs(&self, attr: AttrId) -> &[Value] {
        &self
            .zones
            .as_ref()
            .expect("zone maps require a rank order")
            .maxs[attr]
    }

    /// Prefix-count table of `attr`'s posting list (`domain_size + 1`
    /// entries).
    pub(crate) fn posting_starts(&self, attr: AttrId) -> &[u32] {
        &self.postings[attr].starts
    }

    /// Value-bucketed store indices of `attr`'s posting list.
    pub(crate) fn posting_order(&self, attr: AttrId) -> &[u32] {
        &self.postings[attr].order
    }
}

/// Where a [`QueryIndex`] reads its precomputed structures from.
pub(crate) enum IndexBackend {
    /// Built in RAM at construction ([`QueryIndex::build`]).
    Ram(RamIndex),
    /// Served lazily from a persisted columnar segment
    /// ([`QueryIndex::from_segment`]).
    Segment(Arc<SegmentReader>),
}

/// Dominance facts for rankers without a total order: built eagerly with a
/// RAM index, on first need (after full hydration) with a segment backend —
/// so dominance precomputation stays off the segment cold-open path.
enum DomSource {
    Built(Option<DominanceIndex>),
    Lazy(OnceLock<Option<DominanceIndex>>),
}

/// Outcome of one indexed execution.
pub(crate) struct ExecOutcome {
    /// The answer tuples, best-ranked first, sharing the store's allocations.
    pub returned: Vec<Arc<Tuple>>,
    /// Whether more than `k` tuples matched.
    pub overflowed: bool,
    /// Exact size of the matching set when the chosen plan computed it
    /// (`None` only for early-terminated rank scans, where finishing the
    /// count would defeat the early termination).
    pub matched: Option<usize>,
}

/// Reusable per-session working memory so steady-state queries allocate
/// nothing beyond their (small) answer vector.
///
/// Earlier revisions kept one of these in a thread-local; it now lives in
/// [`crate::Session`] (and in a small pool inside [`crate::HiddenDb`] for
/// session-less one-off queries), so the database itself stays free of
/// thread-affine state.
#[derive(Default)]
pub(crate) struct Scratch {
    /// Closed per-attribute bounds `[lo, hi]` of the current query.
    bounds: Vec<(i64, i64)>,
    /// Constrained attributes as `(attr, lo, hi)`.
    cons: Vec<(AttrId, Value, Value)>,
    /// Rank positions (or store indices) of matching candidates.
    hits: Vec<u32>,
    /// Per-chunk match bitset of the compressed-domain store scan.
    words: Vec<u64>,
}

/// One zone block's rank-ordered column values: borrowed straight out of a
/// RAM index, or a refcounted chunk plus offsets from a segment reader
/// (whose bounded cache may evict the chunk, so a plain borrow cannot cross
/// the accessor boundary).
enum ColBlock<'a> {
    Borrowed(&'a [Value]),
    Shared {
        chunk: Arc<[u32]>,
        start: usize,
        len: usize,
    },
}

impl ColBlock<'_> {
    fn as_slice(&self) -> &[Value] {
        match self {
            ColBlock::Borrowed(s) => s,
            ColBlock::Shared { chunk, start, len } => &chunk[*start..*start + *len],
        }
    }
}

/// The per-database index: rank permutation + zone maps + posting lists,
/// backed either by RAM or by a persisted segment.
pub(crate) struct QueryIndex {
    n: usize,
    backend: IndexBackend,
    dom: DomSource,
}

impl QueryIndex {
    /// Builds the index for a tuple store. O(m·n) plus one O(n log n) sort
    /// per deterministic ranker.
    pub(crate) fn build(store: &TupleStore, schema: &Schema, ranker: &dyn Ranker) -> Self {
        let n = store.len();
        let perm = ranker.precompute(store, schema);
        if let Some(p) = &perm {
            assert_eq!(p.len(), n, "precomputed rank order must cover the store");
        }
        let rank_of = match &perm {
            Some(p) => {
                let mut inv = vec![0u32; n];
                for (rank, &idx) in p.iter().enumerate() {
                    inv[idx as usize] = rank as u32;
                }
                inv
            }
            None => Vec::new(),
        };
        let zones = perm.as_ref().map(|p| {
            let blocks = p.len().div_ceil(BLOCK);
            let mut cols = vec![vec![0 as Value; p.len()]; schema.len()];
            let mut mins = vec![vec![Value::MAX; blocks]; schema.len()];
            let mut maxs = vec![vec![Value::MIN; blocks]; schema.len()];
            for (rank, &idx) in p.iter().enumerate() {
                let b = rank / BLOCK;
                for (attr, &v) in store[idx as usize].values.iter().enumerate() {
                    cols[attr][rank] = v;
                    let (lo, hi) = (&mut mins[attr][b], &mut maxs[attr][b]);
                    *lo = (*lo).min(v);
                    *hi = (*hi).max(v);
                }
            }
            RankColumns { cols, mins, maxs }
        });
        let postings = (0..schema.len())
            .map(|attr| {
                let d = schema.attr(attr).domain_size as usize;
                let mut starts = vec![0u32; d + 1];
                for t in store.iter() {
                    starts[t.values[attr] as usize + 1] += 1;
                }
                for v in 0..d {
                    starts[v + 1] += starts[v];
                }
                let mut cursor = starts.clone();
                let mut order = vec![0u32; n];
                for (i, t) in store.iter().enumerate() {
                    let slot = &mut cursor[t.values[attr] as usize];
                    order[*slot as usize] = i as u32;
                    *slot += 1;
                }
                Posting { starts, order }
            })
            .collect();
        let dom = if perm.is_none() {
            ranker.precompute_dominance(store, schema)
        } else {
            None
        };
        QueryIndex {
            n,
            backend: IndexBackend::Ram(RamIndex {
                perm,
                rank_of,
                zones,
                postings,
            }),
            dom: DomSource::Built(dom),
        }
    }

    /// Wraps an opened segment as an index: nothing is read eagerly beyond
    /// what [`SegmentReader::open`] already validated (footer + zone maps +
    /// prefix counts), so this is the O(touched blocks) cold-open path.
    pub(crate) fn from_segment(reader: Arc<SegmentReader>) -> Self {
        QueryIndex {
            n: reader.n(),
            backend: IndexBackend::Segment(reader),
            dom: DomSource::Lazy(OnceLock::new()),
        }
    }

    /// The RAM view of the index, if it was built in RAM (what the segment
    /// writer serializes). `None` for segment-backed indexes.
    pub(crate) fn ram(&self) -> Option<&RamIndex> {
        match &self.backend {
            IndexBackend::Ram(r) => Some(r),
            IndexBackend::Segment(_) => None,
        }
    }

    /// Whether a rank permutation exists (the ranker exposed a total order).
    fn has_perm(&self) -> bool {
        match &self.backend {
            IndexBackend::Ram(r) => r.perm.is_some(),
            IndexBackend::Segment(s) => s.has_perm(),
        }
    }

    /// Number of tuples whose value on `attr` lies in `[lo, hi]` — the O(1)
    /// selectivity oracle used for predicate ordering (and exposed through
    /// [`crate::HiddenDb::selectivity`]). Served from the eager prefix
    /// counts on both backends, so planning never touches lazy chunks.
    pub(crate) fn range_count(&self, attr: AttrId, lo: Value, hi: Value) -> usize {
        if lo > hi {
            return 0;
        }
        match &self.backend {
            IndexBackend::Ram(r) => {
                let s = &r.postings[attr].starts;
                (s[hi as usize + 1] - s[lo as usize]) as usize
            }
            IndexBackend::Segment(s) => s.range_count(attr, lo, hi),
        }
    }

    /// Zone-map `(min, max)` of rank block `b` on `attr`. Eager on both
    /// backends; requires a rank order.
    fn zone(&self, attr: AttrId, b: usize) -> (Value, Value) {
        match &self.backend {
            IndexBackend::Ram(r) => {
                let z = r.zones.as_ref().expect("zone maps require a rank order");
                (z.mins[attr][b], z.maxs[attr][b])
            }
            IndexBackend::Segment(s) => s.zone(attr, b),
        }
    }

    /// Store index of the tuple at rank `rank`.
    fn perm_at(&self, rank: usize) -> Result<u32, SegmentError> {
        match &self.backend {
            IndexBackend::Ram(r) => {
                Ok(r.perm.as_ref().expect("perm_at requires a rank order")[rank])
            }
            IndexBackend::Segment(s) => s.perm_at(rank),
        }
    }

    /// Rank position of the tuple at store index `idx`.
    fn rank_of_at(&self, idx: usize) -> Result<u32, SegmentError> {
        match &self.backend {
            IndexBackend::Ram(r) => Ok(r.rank_of[idx]),
            IndexBackend::Segment(s) => s.rank_of_at(idx),
        }
    }

    /// Value of the rank-`rank` tuple on `attr` (rank-ordered column).
    fn rank_value_at(&self, attr: AttrId, rank: usize) -> Result<Value, SegmentError> {
        match &self.backend {
            IndexBackend::Ram(r) => Ok(r
                .zones
                .as_ref()
                .expect("rank columns require a rank order")
                .cols[attr][rank]),
            IndexBackend::Segment(s) => s.rank_value_at(attr, rank),
        }
    }

    /// The contiguous rank-ordered column values of zone block `b` on
    /// `attr` (`len` values).
    fn rank_col_block(
        &self,
        attr: AttrId,
        b: usize,
        len: usize,
    ) -> Result<ColBlock<'_>, SegmentError> {
        match &self.backend {
            IndexBackend::Ram(r) => {
                let z = r.zones.as_ref().expect("rank columns require a rank order");
                let base = b * BLOCK;
                Ok(ColBlock::Borrowed(&z.cols[attr][base..base + len]))
            }
            IndexBackend::Segment(s) => {
                if let Some(block) = s.rank_col_block_sticky(attr, b, len) {
                    return Ok(ColBlock::Borrowed(block));
                }
                let (chunk, start) = s.rank_col_chunk(attr, b)?;
                Ok(ColBlock::Shared { chunk, start, len })
            }
        }
    }

    /// Value of the tuple at store index `idx` on `attr`, via the columnar
    /// data — never hydrates a tuple on the segment backend.
    fn value_at(
        &self,
        store: &TupleStore,
        idx: usize,
        attr: AttrId,
    ) -> Result<Value, SegmentError> {
        match &self.backend {
            IndexBackend::Ram(_) => Ok(store[idx].values[attr]),
            IndexBackend::Segment(s) => s.store_value_at(attr, idx),
        }
    }

    /// Box-membership of the tuple at store index `idx` against `cons`, via
    /// the columnar data (tuple-free on the segment backend).
    fn within_bounds_at(
        &self,
        store: &TupleStore,
        idx: usize,
        cons: &[(AttrId, Value, Value)],
    ) -> Result<bool, SegmentError> {
        match &self.backend {
            IndexBackend::Ram(_) => Ok(store[idx].within_bounds(cons)),
            IndexBackend::Segment(s) => {
                for &(attr, lo, hi) in cons {
                    let v = s.store_value_at(attr, idx)?;
                    if v < lo || v > hi {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }

    /// Walks `attr`'s posting order over `[lo, hi]`: store indices,
    /// ascending within each value bucket — identical iteration order on
    /// both backends.
    fn for_posting(
        &self,
        attr: AttrId,
        lo: Value,
        hi: Value,
        f: &mut dyn FnMut(u32) -> Result<(), SegmentError>,
    ) -> Result<(), SegmentError> {
        if lo > hi {
            return Ok(());
        }
        match &self.backend {
            IndexBackend::Ram(r) => {
                let p = &r.postings[attr];
                let range = p.starts[lo as usize] as usize..p.starts[hi as usize + 1] as usize;
                for &idx in &p.order[range] {
                    f(idx)?;
                }
                Ok(())
            }
            IndexBackend::Segment(s) => s.for_posting(attr, lo, hi, f),
        }
    }

    /// The dominance index for fallback rankers. Eagerly built alongside a
    /// RAM index; with a segment backend it is computed on first need, after
    /// fully hydrating the store (fallback selection walks tuples anyway).
    fn dom(
        &self,
        store: &TupleStore,
        schema: &Schema,
        ranker: &dyn Ranker,
    ) -> Result<Option<&DominanceIndex>, SegmentError> {
        match &self.dom {
            DomSource::Built(d) => Ok(d.as_ref()),
            DomSource::Lazy(cell) => {
                if let Some(d) = cell.get() {
                    return Ok(d.as_ref());
                }
                store.try_hydrate_all()?;
                Ok(cell
                    .get_or_init(|| ranker.precompute_dominance(store, schema))
                    .as_ref())
            }
        }
    }

    /// The zone-map block walk shared by the early-terminating rank scan
    /// and the batch executor's shared-conjunction materializer: visits the
    /// rank order block by block, skips blocks whose zone maps prove no
    /// member can satisfy some bound, and hands the caller every surviving
    /// block's base rank plus its non-empty lane bitset (bit i set iff the
    /// block's i-th member lies inside every bound; a bound the whole block
    /// provably satisfies needs no lane pass). Lanes are rank-ordered, so
    /// consuming set bits low-to-high walks candidates best-ranked first.
    /// Stops early when `emit` returns `Ok(false)`.
    fn for_each_matching_block(
        &self,
        cons: &[(AttrId, Value, Value)],
        emit: &mut dyn FnMut(usize, u64) -> Result<bool, SegmentError>,
    ) -> Result<(), SegmentError> {
        let blocks = self.n.div_ceil(BLOCK);
        for b in 0..blocks {
            // Zone check: can any member of this block satisfy every bound?
            let survives = cons.iter().all(|&(attr, lo, hi)| {
                let (bmin, bmax) = self.zone(attr, b);
                bmin <= hi && bmax >= lo
            });
            if !survives {
                continue;
            }
            // Lane bitset: built branch-free, one attribute at a time, from
            // the columnar rank-ordered values.
            let base = b * BLOCK;
            let len = BLOCK.min(self.n - base);
            let mut mask: u64 = if len == BLOCK {
                u64::MAX
            } else {
                (1u64 << len) - 1
            };
            for &(attr, lo, hi) in cons {
                let (bmin, bmax) = self.zone(attr, b);
                if bmin >= lo && bmax <= hi {
                    continue;
                }
                let col = self.rank_col_block(attr, b, len)?;
                let mut m = 0u64;
                for (lane, &v) in col.as_slice().iter().enumerate() {
                    m |= u64::from(v >= lo && v <= hi) << lane;
                }
                mask &= m;
                if mask == 0 {
                    break;
                }
            }
            if mask != 0 && !emit(base, mask)? {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Executes a validated query against the store, using the caller's
    /// scratch buffers for all per-query working memory.
    ///
    /// `need_matched` forces a plan that knows the exact matching count
    /// (used when the access log is recording); it never changes the answer,
    /// only how much counting work is done. An `Err` is only possible on
    /// the segment backend (I/O failure or corrupted chunk).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn execute(
        &self,
        query: &Query,
        k: usize,
        store: &TupleStore,
        schema: &Schema,
        ranker: &dyn Ranker,
        need_matched: bool,
        scratch: &mut Scratch,
    ) -> Result<ExecOutcome, SegmentError> {
        let Some(best) = self.plan(query, schema, &mut scratch.bounds, &mut scratch.cons) else {
            return Ok(ExecOutcome {
                returned: Vec::new(),
                overflowed: false,
                matched: Some(0),
            });
        };

        match (self.has_perm(), best) {
            // SELECT * (no constraints): the answer is the head of the rank
            // order.
            (true, None) => {
                let take = k.min(self.n);
                let mut returned = Vec::with_capacity(take);
                for r in 0..take {
                    returned.push(store.try_share(self.perm_at(r)? as usize)?);
                }
                Ok(ExecOutcome {
                    returned,
                    overflowed: self.n > k,
                    matched: Some(self.n),
                })
            }
            (true, Some((count, best_pos))) => {
                if count == 0 {
                    return Ok(ExecOutcome {
                        returned: Vec::new(),
                        overflowed: false,
                        matched: Some(0),
                    });
                }
                // Plan choice: walking the most selective posting list costs
                // `count` rank lookups plus a k-selection and yields an
                // exact match count; the block rank scan touches columnar
                // values in preference order and stops after k matches + 1
                // overflow probe (see [`BLOCK_SCAN_CROSSOVER_DEN`] for the
                // crossover rationale). The access log needs exact counts,
                // so `need_matched` pins an exact plan: on a segment backend
                // whose chunk cache is bounded, a broad exact count is
                // cheapest in the compressed domain (store chunks filtered
                // without unpacking, zero cache traffic — hydrating them
                // would decode on every miss and churn the budget);
                // with the unbounded sticky cache decoded chunks stay
                // resident forever, so the posting walk is cheaper and the
                // plan stays on it.
                if !need_matched && count * BLOCK_SCAN_CROSSOVER_DEN >= self.n {
                    self.rank_scan(k, store, &scratch.cons)
                } else if count * BLOCK_SCAN_CROSSOVER_DEN >= self.n
                    && self.compressed_scan_available()
                {
                    self.compressed_topk(
                        k,
                        store,
                        &scratch.cons,
                        &mut scratch.hits,
                        &mut scratch.words,
                    )
                } else {
                    self.posting_topk(k, store, &scratch.cons, best_pos, &mut scratch.hits)
                }
            }
            // No precomputed order (randomized / adversarial rankers): defer
            // ranking to the ranker itself on the exact matching set, using
            // the posting list only to prune the candidates.
            (false, _) => self.ranker_fallback(query, k, store, schema, ranker, best, scratch),
        }
    }

    /// Query planning shared by [`QueryIndex::execute`] and the scan paths:
    /// folds the conjunction into one closed box per attribute (`bounds`),
    /// collects the constrained attributes into `cons`, and picks the most
    /// selective one via the prefix counts.
    ///
    /// Returns `None` when the query is unsatisfiable, otherwise
    /// `Some(best)` where `best` is `(count, position in cons)` of the most
    /// selective constrained attribute (or `None` for `SELECT *`).
    fn plan(
        &self,
        query: &Query,
        schema: &Schema,
        bounds: &mut Vec<(i64, i64)>,
        cons: &mut Vec<(AttrId, Value, Value)>,
    ) -> Option<Option<(usize, usize)>> {
        if !fold_bounds(query.predicates(), schema, bounds) {
            return None;
        }
        cons.clear();
        let mut best: Option<(usize, usize)> = None; // (count, cons position)
        for (attr, &(lo, hi)) in bounds.iter().enumerate() {
            let max = i64::from(schema.attr(attr).max_value());
            if lo > 0 || hi < max {
                let (lo, hi) = (lo as Value, hi as Value);
                let count = self.range_count(attr, lo, hi);
                let pos = cons.len();
                cons.push((attr, lo, hi));
                if best.is_none_or(|(c, _)| count < c) {
                    best = Some((count, pos));
                }
            }
        }
        Some(best)
    }

    /// Broad-query plan: walk the rank order block by block, best ranks
    /// first, early-terminating after k matches and one overflow probe.
    ///
    /// A block of 64 ranks is skipped wholesale when its zone map proves no
    /// member can satisfy some bound (and needs no per-lane work when it
    /// proves every member does); surviving blocks are evaluated with a
    /// branch-free 64-bit match bitset built from the rank-ordered columnar
    /// values — a sequential pass over contiguous `u32`s — instead of the
    /// old tuple-at-a-time candidate walk, whose per-tuple pointer chasing
    /// and branching dominated broad-range queries.
    fn rank_scan(
        &self,
        k: usize,
        store: &TupleStore,
        cons: &[(AttrId, Value, Value)],
    ) -> Result<ExecOutcome, SegmentError> {
        let mut returned = Vec::with_capacity(k.min(16));
        let mut seen = 0usize;
        let mut overflowed = false;
        self.for_each_matching_block(cons, &mut |base, mut mask| {
            // Consuming set bits low-to-high preserves the answer order of
            // the old tuple-at-a-time walk exactly.
            while mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                seen += 1;
                if seen > k {
                    // Overflow probe: one extra match proves truncation.
                    overflowed = true;
                    return Ok(false);
                }
                returned.push(store.try_share(self.perm_at(base + lane)? as usize)?);
            }
            Ok(true)
        })?;
        Ok(if overflowed {
            ExecOutcome {
                returned,
                overflowed: true,
                matched: None,
            }
        } else {
            ExecOutcome {
                returned,
                overflowed: false,
                matched: Some(seen),
            }
        })
    }

    /// Selective-query plan: iterate the most selective predicate's posting
    /// range, bound-check the remaining attributes columnar-only, then pick
    /// the k best by precomputed rank position with one partial selection.
    fn posting_topk(
        &self,
        k: usize,
        store: &TupleStore,
        cons: &[(AttrId, Value, Value)],
        best_pos: usize,
        hits: &mut Vec<u32>,
    ) -> Result<ExecOutcome, SegmentError> {
        let (attr, lo, hi) = cons[best_pos];
        hits.clear();
        self.for_posting(attr, lo, hi, &mut |idx| {
            // The posting range already guarantees the best attribute's
            // bounds; check the others.
            let mut ok = true;
            for (i, &(a, lo, hi)) in cons.iter().enumerate() {
                if i == best_pos {
                    continue;
                }
                let v = self.value_at(store, idx as usize, a)?;
                if v < lo || v > hi {
                    ok = false;
                    break;
                }
            }
            if ok {
                hits.push(self.rank_of_at(idx as usize)?);
            }
            Ok(())
        })?;
        let matched = hits.len();
        let overflowed = matched > k;
        if overflowed {
            // Partial selection: k smallest rank positions to the front,
            // then order just those k.
            hits.select_nth_unstable(k - 1);
            hits.truncate(k);
        }
        hits.sort_unstable();
        let mut returned = Vec::with_capacity(hits.len());
        for &rank in hits.iter() {
            returned.push(store.try_share(self.perm_at(rank as usize)? as usize)?);
        }
        Ok(ExecOutcome {
            returned,
            overflowed,
            matched: Some(matched),
        })
    }

    /// Whether the planner should filter store chunks in the compressed
    /// domain: a segment backend with the compressed filter enabled *and* a
    /// bounded chunk cache. With the sticky unbounded cache, hydrated
    /// chunks are decoded once and resident forever, so the posting walk
    /// beats re-scanning compressed bytes on every query.
    fn compressed_scan_available(&self) -> bool {
        match &self.backend {
            IndexBackend::Ram(_) => false,
            IndexBackend::Segment(s) => s.compressed_filter_enabled() && s.cache_is_bounded(),
        }
    }

    /// Broad-but-exact plan on the segment backend: the match count is too
    /// large for the posting walk to be cheap, so filter every store chunk
    /// directly against its packed representation (no chunk decode, no
    /// cache traffic) and select the top k by rank position. The matching
    /// set — and therefore the answer and the reported count — is identical
    /// to [`QueryIndex::posting_topk`]'s.
    fn compressed_topk(
        &self,
        k: usize,
        store: &TupleStore,
        cons: &[(AttrId, Value, Value)],
        hits: &mut Vec<u32>,
        words: &mut Vec<u64>,
    ) -> Result<ExecOutcome, SegmentError> {
        let IndexBackend::Segment(s) = &self.backend else {
            unreachable!("compressed scans require the segment backend");
        };
        hits.clear();
        s.filter_store_compressed(cons, words, &mut |idx| {
            hits.push(self.rank_of_at(idx as usize)?);
            Ok(())
        })?;
        let matched = hits.len();
        let overflowed = matched > k;
        if overflowed {
            hits.select_nth_unstable(k - 1);
            hits.truncate(k);
        }
        hits.sort_unstable();
        let mut returned = Vec::with_capacity(hits.len());
        for &rank in hits.iter() {
            returned.push(store.try_share(self.perm_at(rank as usize)? as usize)?);
        }
        Ok(ExecOutcome {
            returned,
            overflowed,
            matched: Some(matched),
        })
    }

    /// Fallback for rankers without a precomputed order: materialize the
    /// matching positions (pruned through the best posting list, in store
    /// order — byte-identical to what the naive scan would hand the ranker)
    /// and let [`Ranker::select_top_k_indices`] decide, offering the
    /// precomputed dominance index.
    #[allow(clippy::too_many_arguments)]
    fn ranker_fallback(
        &self,
        query: &Query,
        k: usize,
        store: &TupleStore,
        schema: &Schema,
        ranker: &dyn Ranker,
        best: Option<(usize, usize)>,
        scratch: &mut Scratch,
    ) -> Result<ExecOutcome, SegmentError> {
        let Scratch { cons, hits, .. } = scratch;
        hits.clear();
        match best {
            Some((_, best_pos)) => {
                let (attr, lo, hi) = cons[best_pos];
                self.for_posting(attr, lo, hi, &mut |idx| {
                    if self.within_bounds_at(store, idx as usize, cons)? {
                        hits.push(idx);
                    }
                    Ok(())
                })?;
                // Store order, exactly like the naive scan's filter pass
                // (this matters for rankers that consume randomness).
                hits.sort_unstable();
            }
            None => hits.extend(0..self.n as u32),
        }
        // Resolve dominance facts first: on the segment backend this fully
        // hydrates the store, so every tuple access below is infallible.
        let dom = self.dom(store, schema, ranker)?;
        debug_assert!(hits.iter().all(|&i| query.matches(&store[i as usize])));
        let matched = hits.len();
        let selected = ranker.select_top_k_indices(store, hits, k, schema, dom);
        let returned = selected.iter().map(|&i| store.share(i as usize)).collect();
        Ok(ExecOutcome {
            returned,
            overflowed: matched > k,
            matched: Some(matched),
        })
    }
}

/// Materialized shared-prefix context for one plan group (see
/// [`execute_plan`]): the result of evaluating the group's shared
/// conjunction exactly once, against which every member query only has to
/// apply its private residual predicates and top-k selection.
pub(crate) enum SharedGroup {
    /// Sharing would not pay off (singleton group, unconstrained prefix, or
    /// a prefix so broad that the per-query early-terminating plans win):
    /// run every member through the regular single-query engine.
    PerQuery,
    /// The shared conjunction provably matches nothing — every member
    /// query answers empty with an exact zero match count.
    Empty,
    /// Candidate tuples matching the shared conjunction, as ascending rank
    /// positions (rankers with a precomputed total order): a member's
    /// top-k answer is the first k candidates passing its residual bounds.
    Ranked {
        /// Matching rank positions, ascending (best-ranked first).
        hits: Vec<u32>,
        /// The shared conjunction folded into a per-attribute box; member
        /// queries only re-check attributes their own box tightens.
        bounds: Vec<(i64, i64)>,
    },
    /// Candidate store indices matching the shared conjunction, ascending
    /// (rankers without a precomputed order — selection is delegated to
    /// [`Ranker::select_top_k_indices`] exactly like the sequential path,
    /// so even per-query RNG consumption is preserved).
    StoreOrder {
        /// Matching store indices, ascending.
        hits: Vec<u32>,
        /// The shared conjunction folded into a per-attribute box.
        bounds: Vec<(i64, i64)>,
    },
}

impl QueryIndex {
    /// Evaluates a group's shared conjunction once: folds the prefix into a
    /// per-attribute box, gates on whether sharing beats the per-query
    /// plans, and materializes the matching candidates through the most
    /// selective shared posting list.
    ///
    /// The caller must have validated the group's head query (the prefix is
    /// a prefix of it, so that validates the prefix too).
    pub(crate) fn prepare_shared(
        &self,
        prefix: &[Predicate],
        group_len: usize,
        store: &TupleStore,
        schema: &Schema,
    ) -> Result<SharedGroup, SegmentError> {
        let mut bounds = Vec::new();
        if !fold_bounds(prefix, schema, &mut bounds) {
            return Ok(SharedGroup::Empty);
        }
        let mut cons: Vec<(AttrId, Value, Value)> = Vec::new();
        let mut best: Option<(usize, usize)> = None;
        for (attr, &(lo, hi)) in bounds.iter().enumerate() {
            let max = i64::from(schema.attr(attr).max_value());
            if lo > 0 || hi < max {
                let (lo, hi) = (lo as Value, hi as Value);
                let count = self.range_count(attr, lo, hi);
                let pos = cons.len();
                cons.push((attr, lo, hi));
                if best.is_none_or(|(c, _)| count < c) {
                    best = Some((count, pos));
                }
            }
        }
        let Some((count, best_pos)) = best else {
            // Unconstrained prefix (`SELECT *`-shaped): nothing to share.
            return Ok(SharedGroup::PerQuery);
        };
        if count == 0 {
            return Ok(SharedGroup::Empty);
        }
        if group_len < 2 {
            // A singleton amortizes nothing over the per-query plans.
            return Ok(SharedGroup::PerQuery);
        }
        let ranked = self.has_perm();
        if count * BLOCK_SCAN_CROSSOVER_DEN < self.n {
            // Posting-list intersection: one attribute is selective enough
            // that walking its posting range (what every member's own
            // posting plan would do anyway) materializes the shared
            // candidates once for the whole group.
            let (attr, lo, hi) = cons[best_pos];
            let mut hits = Vec::with_capacity(count);
            self.for_posting(attr, lo, hi, &mut |idx| {
                if self.within_bounds_at(store, idx as usize, &cons)? {
                    hits.push(if ranked {
                        self.rank_of_at(idx as usize)?
                    } else {
                        idx
                    });
                }
                Ok(())
            })?;
            hits.sort_unstable();
            return Ok(if ranked {
                SharedGroup::Ranked { hits, bounds }
            } else {
                SharedGroup::StoreOrder { hits, bounds }
            });
        }
        // Every individual attribute is broad. Tree frontiers still produce
        // *jointly* selective conjunctions (each sibling inherits its whole
        // ancestor chain), and for those one block-skipping zone-map scan,
        // amortized over the group, beats per-query early-terminating scans.
        // Joint selectivity is estimated from the O(1) per-attribute counts
        // under independence; a broad estimate keeps the per-query plans,
        // whose early termination is unbeatable for answers near k.
        let est: f64 = cons
            .iter()
            .map(|&(attr, lo, hi)| self.range_count(attr, lo, hi) as f64 / self.n as f64)
            .product::<f64>()
            * self.n as f64;
        if est * BLOCK_SCAN_CROSSOVER_DEN as f64 >= self.n as f64 {
            return Ok(SharedGroup::PerQuery);
        }
        if ranked {
            // Zone-map scan over the rank-ordered columns (the same block
            // walk the rank scan uses, without early termination): the
            // collected rank positions arrive already sorted.
            let mut hits = Vec::new();
            self.for_each_matching_block(&cons, &mut |base, mut mask| {
                while mask != 0 {
                    let lane = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    hits.push((base + lane) as u32);
                }
                Ok(true)
            })?;
            Ok(SharedGroup::Ranked { hits, bounds })
        } else {
            // No rank order (randomized / adversarial rankers): one full
            // box-membership pass, amortized over the group.
            let mut hits = Vec::new();
            for idx in 0..self.n as u32 {
                if self.within_bounds_at(store, idx as usize, &cons)? {
                    hits.push(idx);
                }
            }
            Ok(SharedGroup::StoreOrder { hits, bounds })
        }
    }

    /// Answers one member query of a prepared group: folds the member's full
    /// conjunction, derives the residual constraints (attributes whose box
    /// is strictly tighter than the shared one) and selects the top k among
    /// the shared candidates — byte-identical to what the single-query
    /// engine returns for the same query.
    ///
    /// Must not be called with [`SharedGroup::PerQuery`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn execute_shared(
        &self,
        shared: &SharedGroup,
        query: &Query,
        k: usize,
        store: &TupleStore,
        schema: &Schema,
        ranker: &dyn Ranker,
        need_matched: bool,
        scratch: &mut Scratch,
    ) -> Result<ExecOutcome, SegmentError> {
        let empty = || ExecOutcome {
            returned: Vec::new(),
            overflowed: false,
            matched: Some(0),
        };
        let (hits, shared_bounds, ranked) = match shared {
            SharedGroup::Empty => return Ok(empty()),
            SharedGroup::Ranked { hits, bounds } => (hits, bounds, true),
            SharedGroup::StoreOrder { hits, bounds } => (hits, bounds, false),
            SharedGroup::PerQuery => unreachable!("PerQuery groups bypass shared execution"),
        };
        if !fold_bounds(query.predicates(), schema, &mut scratch.bounds) {
            return Ok(empty());
        }
        // Per-member cost choice: a member whose own most selective posting
        // range is much smaller than the shared candidate set (its private
        // residual, not the inherited prefix, is the selective part) is
        // cheaper through its regular single-query plan. Both paths return
        // identical answers, so this is purely a plan-cost decision; the
        // O(1) prefix counts make it a handful of lookups.
        let mut member_best = usize::MAX;
        for (attr, &(lo, hi)) in scratch.bounds.iter().enumerate() {
            let max = i64::from(schema.attr(attr).max_value());
            if lo > 0 || hi < max {
                member_best = member_best.min(self.range_count(attr, lo as Value, hi as Value));
            }
        }
        if member_best != usize::MAX && hits.len() > member_best.saturating_mul(2) {
            return self.execute(query, k, store, schema, ranker, need_matched, scratch);
        }
        // The member's box is the shared box intersected with its residual
        // predicates, so exactly the attributes it tightened need a
        // re-check; every shared candidate already satisfies the rest.
        scratch.cons.clear();
        for (attr, (&full, &sh)) in scratch.bounds.iter().zip(shared_bounds).enumerate() {
            if full != sh {
                scratch.cons.push((attr, full.0 as Value, full.1 as Value));
            }
        }
        if ranked {
            // Candidates arrive best-ranked first: the answer is the first k
            // residual matches, early-terminating after one overflow probe
            // unless the caller needs the exact match count for the log.
            let mut returned = Vec::with_capacity(k.min(16));
            let mut seen = 0usize;
            for &r in hits {
                let r = r as usize;
                let mut ok = true;
                for &(attr, lo, hi) in scratch.cons.iter() {
                    let v = self.rank_value_at(attr, r)?;
                    if v < lo || v > hi {
                        ok = false;
                        break;
                    }
                }
                if !ok {
                    continue;
                }
                seen += 1;
                if seen <= k {
                    returned.push(store.try_share(self.perm_at(r)? as usize)?);
                } else if !need_matched {
                    return Ok(ExecOutcome {
                        returned,
                        overflowed: true,
                        matched: None,
                    });
                }
            }
            Ok(ExecOutcome {
                returned,
                overflowed: seen > k,
                matched: Some(seen),
            })
        } else {
            // No precomputed order: hand the exact matching set (ascending
            // store order, as the sequential fallback materializes it) to
            // the ranker, offering the same precomputed dominance index.
            {
                let hits_out = &mut scratch.hits;
                hits_out.clear();
                for &idx in hits {
                    if self.within_bounds_at(store, idx as usize, &scratch.cons)? {
                        hits_out.push(idx);
                    }
                }
            }
            // Dominance facts before any tuple access: on the segment
            // backend this hydrates the store (fallback selection needs the
            // tuples regardless).
            let dom = self.dom(store, schema, ranker)?;
            debug_assert!(scratch
                .hits
                .iter()
                .all(|&i| query.matches(&store[i as usize])));
            let matched = scratch.hits.len();
            let selected = ranker.select_top_k_indices(store, &scratch.hits, k, schema, dom);
            let returned = selected.iter().map(|&i| store.share(i as usize)).collect();
            Ok(ExecOutcome {
                returned,
                overflowed: matched > k,
                matched: Some(matched),
            })
        }
    }
}

/// Executes a whole multi-query plan against the database: walks the plan's
/// prefix groups, evaluates each group's shared conjunction once (lazily,
/// after the group's first member passes admission) and answers every member
/// from the shared candidates plus its private residual — stopping at the
/// first rejected query, whose error is returned.
///
/// Per-query admission (validation, rate-limit reservation, sequence
/// numbering), statistics and access-log accounting run through exactly the
/// same [`HiddenDb`] hooks as individually issued queries, in plan order, so
/// responses, [`crate::QueryStats`] and log snapshots are byte-identical to
/// the sequential path — the differential battery in `tests/proptest_plan.rs`
/// pins this for both execution strategies.
pub(crate) fn execute_plan(
    db: &HiddenDb,
    queries: &[Query],
    groups: &[PrefixGroup],
    scratch: &mut Scratch,
    responses: &mut Vec<QueryResponse>,
) -> Option<QueryError> {
    debug_assert!(crate::predicate::groups_cover(queries, groups));
    let mut pos = 0usize;
    for g in groups {
        let group = &queries[pos..pos + g.len];
        pos += g.len;
        // Shared context for the group, prepared lazily once the first
        // member passes admission: validating the head validates the prefix
        // (it is a prefix of the head), and a plan cut short by the rate
        // limit before reaching this group never pays for materialization.
        let mut shared: Option<SharedGroup> = None;
        let mut scan_hits: Option<Vec<u32>> = None;
        for q in group {
            let seq = match db.admit(q) {
                Ok(seq) => seq,
                Err(e) => return Some(e),
            };
            let log_enabled = db.log_on();
            let (tuples, overflowed, matched) = if g.prefix_len == 0 || g.len < 2 {
                match db.exec_validated(q, log_enabled, scratch) {
                    Ok(out) => out,
                    Err(e) => return Some(e),
                }
            } else {
                let prefix = &group[0].predicates()[..g.prefix_len];
                match db.strategy() {
                    ExecStrategy::Indexed => {
                        let index = db.index();
                        if shared.is_none() {
                            match index.prepare_shared(prefix, g.len, db.store(), db.schema()) {
                                Ok(sg) => shared = Some(sg),
                                Err(e) => return Some(QueryError::Storage { error: e }),
                            }
                        }
                        // Just prepared above; the unshared fallback is
                        // correct (it executes each query individually).
                        let ctx = &*shared.get_or_insert(SharedGroup::PerQuery);
                        match ctx {
                            SharedGroup::PerQuery => {
                                match db.exec_validated(q, log_enabled, scratch) {
                                    Ok(out) => out,
                                    Err(e) => return Some(e),
                                }
                            }
                            ctx => {
                                let out = index.execute_shared(
                                    ctx,
                                    q,
                                    db.k(),
                                    db.store(),
                                    db.schema(),
                                    db.ranker(),
                                    log_enabled,
                                    scratch,
                                );
                                match out {
                                    Ok(out) => (out.returned, out.overflowed, out.matched),
                                    Err(e) => return Some(QueryError::Storage { error: e }),
                                }
                            }
                        }
                    }
                    ExecStrategy::Scan => {
                        // The reference strategy shares too: one filter pass
                        // over the store per group instead of one per query,
                        // then the member's residual predicates over the
                        // shared candidates. Candidates stay in ascending
                        // store order and the ranker is called with the same
                        // arguments as the sequential scan, so responses and
                        // RNG consumption are identical.
                        let store = db.store();
                        if let Err(e) = store.try_hydrate_all() {
                            return Some(QueryError::Storage { error: e });
                        }
                        let hits = scan_hits.get_or_insert_with(|| {
                            store
                                .iter()
                                .enumerate()
                                .filter(|(_, t)| prefix.iter().all(|p| p.matches(t)))
                                .map(|(i, _)| i as u32)
                                .collect()
                        });
                        let residual = &q.predicates()[g.prefix_len..];
                        let member_hits = &mut scratch.hits;
                        member_hits.clear();
                        for &idx in hits.iter() {
                            if residual.iter().all(|p| p.matches(&store[idx as usize])) {
                                member_hits.push(idx);
                            }
                        }
                        let matched = member_hits.len();
                        let selected = db.ranker().select_top_k_indices(
                            store,
                            member_hits,
                            db.k(),
                            db.schema(),
                            None,
                        );
                        let tuples = selected.iter().map(|&i| store.share(i as usize)).collect();
                        (tuples, matched > db.k(), Some(matched))
                    }
                }
            };
            responses.push(db.finish_query(q, seq, tuples, overflowed, matched, log_enabled));
        }
    }
    None
}

/// Intersects a conjunction of predicates into one closed interval per
/// attribute. Returns `false` if the conjunction is unsatisfiable.
fn fold_bounds(preds: &[Predicate], schema: &Schema, bounds: &mut Vec<(i64, i64)>) -> bool {
    bounds.clear();
    bounds.extend((0..schema.len()).map(|attr| (0i64, i64::from(schema.attr(attr).max_value()))));
    for p in preds {
        let (lo, hi) = &mut bounds[p.attr];
        let v = i64::from(p.value);
        match p.op {
            CmpOp::Lt => *hi = (*hi).min(v - 1),
            CmpOp::Le => *hi = (*hi).min(v),
            CmpOp::Eq => {
                *lo = (*lo).max(v);
                *hi = (*hi).min(v);
            }
            CmpOp::Ge => *lo = (*lo).max(v),
            CmpOp::Gt => *lo = (*lo).max(v + 1),
        }
        if *lo > *hi {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InterfaceType, Predicate, SchemaBuilder, SumRanker};

    fn schema() -> Schema {
        SchemaBuilder::new()
            .ranking("a", 10, InterfaceType::Rq)
            .ranking("b", 10, InterfaceType::Rq)
            .filtering("f", 3)
            .build()
    }

    fn build() -> (Schema, TupleStore, QueryIndex) {
        let s = schema();
        let store = TupleStore::new(vec![
            Tuple::new(0, vec![2, 5, 0]),
            Tuple::new(1, vec![4, 2, 1]),
            Tuple::new(2, vec![7, 7, 2]),
            Tuple::new(3, vec![1, 8, 1]),
            Tuple::new(4, vec![5, 5, 0]),
            Tuple::new(5, vec![2, 2, 2]),
        ]);
        let index = QueryIndex::build(&store, &s, &SumRanker);
        (s, store, index)
    }

    #[test]
    fn prefix_counts_answer_selectivity_in_o1() {
        let (_, _, index) = build();
        assert_eq!(index.range_count(0, 0, 9), 6);
        assert_eq!(index.range_count(0, 2, 2), 2);
        assert_eq!(index.range_count(0, 0, 1), 1);
        assert_eq!(index.range_count(0, 8, 9), 0);
        assert_eq!(index.range_count(2, 0, 0), 2);
        assert_eq!(index.range_count(2, 1, 2), 4);
    }

    #[test]
    fn posting_lists_group_by_value_in_store_order() {
        let (_, store, index) = build();
        let ram = index.ram().expect("built in RAM");
        let starts = ram.posting_starts(2);
        let order = ram.posting_order(2);
        // Value 0 → tuples 0, 4; value 1 → 1, 3; value 2 → 2, 5.
        let bucket = |v: usize| order[starts[v] as usize..starts[v + 1] as usize].to_vec();
        assert_eq!(bucket(0), vec![0, 4]);
        assert_eq!(bucket(1), vec![1, 3]);
        assert_eq!(bucket(2), vec![2, 5]);
        assert_eq!(store.len(), 6);
    }

    #[test]
    fn zone_maps_and_columns_cover_every_block() {
        let (s, store, index) = build();
        assert!(index.has_perm(), "SumRanker precomputes");
        let n = store.len();
        for attr in 0..s.len() {
            for b in 0..n.div_ceil(BLOCK) {
                let len = BLOCK.min(n - b * BLOCK);
                let values: Vec<Value> = (b * BLOCK..b * BLOCK + len)
                    .map(|r| store[index.perm_at(r).unwrap() as usize].values[attr])
                    .collect();
                let (zmin, zmax) = index.zone(attr, b);
                assert_eq!(zmin, *values.iter().min().unwrap());
                assert_eq!(zmax, *values.iter().max().unwrap());
                assert_eq!(
                    index.rank_col_block(attr, b, len).unwrap().as_slice(),
                    &values[..]
                );
            }
        }
    }

    #[test]
    fn fold_bounds_intersects_and_detects_unsat() {
        let s = schema();
        let mut bounds = Vec::new();
        let q = Query::new(vec![
            Predicate::le(0, 6),
            Predicate::ge(0, 2),
            Predicate::lt(1, 4),
        ]);
        assert!(fold_bounds(q.predicates(), &s, &mut bounds));
        assert_eq!(bounds[0], (2, 6));
        assert_eq!(bounds[1], (0, 3));
        assert_eq!(bounds[2], (0, 2));
        let unsat = Query::new(vec![Predicate::lt(0, 0)]);
        assert!(!fold_bounds(unsat.predicates(), &s, &mut bounds));
        let unsat2 = Query::new(vec![Predicate::gt(0, 9)]);
        assert!(!fold_bounds(unsat2.predicates(), &s, &mut bounds));
        let unsat3 = Query::new(vec![Predicate::le(0, 2), Predicate::ge(0, 5)]);
        assert!(!fold_bounds(unsat3.predicates(), &s, &mut bounds));
    }

    #[test]
    fn execute_matches_naive_filter_and_rank() {
        let (s, store, index) = build();
        let queries = vec![
            Query::select_all(),
            Query::new(vec![Predicate::lt(0, 5)]),
            Query::new(vec![Predicate::eq(2, 1)]),
            Query::new(vec![
                Predicate::lt(0, 5),
                Predicate::lt(1, 6),
                Predicate::eq(2, 2),
            ]),
            Query::new(vec![Predicate::gt(0, 9)]),
            Query::new(vec![Predicate::ge(0, 0)]), // full-range predicate
        ];
        let mut scratch = Scratch::default();
        for q in &queries {
            for k in 1..=7 {
                let naive: Vec<&Tuple> = store.iter().filter(|t| q.matches(t)).collect();
                let expected = SumRanker.select_top_k(&naive, k, &s);
                for need_matched in [false, true] {
                    let out = index
                        .execute(q, k, &store, &s, &SumRanker, need_matched, &mut scratch)
                        .expect("RAM execution is infallible");
                    let got: Vec<u64> = out.returned.iter().map(|t| t.id).collect();
                    let want: Vec<u64> = expected.iter().map(|t| t.id).collect();
                    assert_eq!(got, want, "query {q} k={k}");
                    assert_eq!(out.overflowed, naive.len() > k, "query {q} k={k}");
                    if let Some(m) = out.matched {
                        assert_eq!(m, naive.len(), "query {q} k={k}");
                    }
                    assert!(
                        !need_matched || out.matched.is_some(),
                        "query {q}: need_matched plans must report an exact count"
                    );
                }
            }
        }
    }

    #[test]
    fn rank_scan_spans_multiple_blocks() {
        // More than one zone-map block, bounds that skip the best-ranked
        // blocks entirely: matches live at the tail of the rank order.
        let s = SchemaBuilder::new()
            .ranking("a", 200, InterfaceType::Rq)
            .build();
        let store = TupleStore::new((0..150).map(|i| Tuple::new(i, vec![i as u32])).collect());
        let index = QueryIndex::build(&store, &s, &SumRanker);
        let mut scratch = Scratch::default();
        let q = Query::new(vec![Predicate::ge(0, 100)]);
        let out = index
            .execute(&q, 3, &store, &s, &SumRanker, false, &mut scratch)
            .unwrap();
        let ids: Vec<u64> = out.returned.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![100, 101, 102]);
        assert!(out.overflowed);
        // And an exhaustive (non-overflowing) scan across blocks.
        let out = index
            .execute(&q, 60, &store, &s, &SumRanker, false, &mut scratch)
            .unwrap();
        assert_eq!(out.returned.len(), 50);
        assert!(!out.overflowed);
        assert_eq!(out.matched, Some(50));
    }

    #[test]
    fn crossover_constant_separates_scan_and_posting_plans() {
        // Pins the planner's crossover behaviorally on both sides of
        // BLOCK_SCAN_CROSSOVER_DEN: a selective predicate
        // (count * DEN < n) takes the posting plan, which always reports an
        // exact match count; a broad one (count * DEN >= n) takes the
        // early-terminating rank scan, whose overflow probe leaves the
        // count unknown.
        let s = SchemaBuilder::new()
            .ranking("a", 200, InterfaceType::Rq)
            .build();
        let store = TupleStore::new((0..160).map(|i| Tuple::new(i, vec![i as u32])).collect());
        let index = QueryIndex::build(&store, &s, &SumRanker);
        let mut scratch = Scratch::default();
        let n = store.len();

        let selective = Query::new(vec![Predicate::lt(0, 4)]); // count = 4
        assert!(4 * BLOCK_SCAN_CROSSOVER_DEN < n);
        let out = index
            .execute(&selective, 2, &store, &s, &SumRanker, false, &mut scratch)
            .unwrap();
        assert!(out.overflowed);
        assert_eq!(
            out.matched,
            Some(4),
            "selective plans (count * {BLOCK_SCAN_CROSSOVER_DEN} < n) count exactly"
        );

        let broad = Query::new(vec![Predicate::lt(0, 8)]); // count = 8
        assert!(8 * BLOCK_SCAN_CROSSOVER_DEN >= n);
        let out = index
            .execute(&broad, 2, &store, &s, &SumRanker, false, &mut scratch)
            .unwrap();
        assert!(out.overflowed);
        assert_eq!(
            out.matched, None,
            "broad plans (count * {BLOCK_SCAN_CROSSOVER_DEN} >= n) early-terminate"
        );
    }

    #[test]
    fn shared_group_paths_match_single_query_execution() {
        use crate::WorstCaseRanker;
        let mut b = SchemaBuilder::new();
        for i in 0..3 {
            b = b.ranking(format!("a{i}"), 32, InterfaceType::Rq);
        }
        let s = b.build();
        // Attribute 0 has a rare value (posting-selective prefixes);
        // attributes 1 and 2 are individually broad but *jointly* selective
        // on short conjunctions — the tree-frontier shape the zone-scan
        // materializer exists for.
        let tuples: Vec<Tuple> = (0..1000u64)
            .map(|i| {
                let v0 = if i < 10 { 0 } else { 1 + (i % 31) as u32 };
                Tuple::new(i, vec![v0, ((i / 32) % 32) as u32, ((i * 7) % 32) as u32])
            })
            .collect();
        let store = TupleStore::new(tuples);
        let ids = |v: &[Arc<Tuple>]| v.iter().map(|t| t.id).collect::<Vec<u64>>();

        let rankers: [(&str, Box<dyn crate::Ranker>); 2] = [
            ("sum", Box::new(SumRanker)),         // precomputed rank order
            ("worst", Box::new(WorstCaseRanker)), // no rank order: fallback
        ];
        for (rname, ranker) in rankers {
            let index = QueryIndex::build(&store, &s, ranker.as_ref());
            let mut scratch = Scratch::default();
            let cases: Vec<(Vec<Predicate>, &str)> = vec![
                // One attribute selective: posting-list materialization.
                (vec![Predicate::lt(0, 1)], "shared"),
                // All attributes broad, conjunction selective: zone scan
                // (or the full box pass without a rank order).
                (vec![Predicate::lt(1, 4), Predicate::lt(2, 4)], "shared"),
                // Jointly broad: the per-query plans stay.
                (
                    vec![Predicate::lt(1, 16), Predicate::lt(2, 16)],
                    "per-query",
                ),
                // Provably empty shared conjunction.
                (vec![Predicate::gt(0, 31)], "empty"),
            ];
            for (prefix, expect) in cases {
                let shared = index.prepare_shared(&prefix, 4, &store, &s).unwrap();
                match (expect, &shared) {
                    ("shared", SharedGroup::Ranked { .. } | SharedGroup::StoreOrder { .. })
                    | ("per-query", SharedGroup::PerQuery)
                    | ("empty", SharedGroup::Empty) => {}
                    _ => panic!("{rname}: prefix {prefix:?} took an unexpected path"),
                }
                if matches!(shared, SharedGroup::PerQuery) {
                    continue;
                }
                let base = Query::new(prefix.clone());
                let members = vec![
                    base.clone(), // identical to the prefix (empty residual)
                    base.and(Predicate::lt(2, 8)),
                    base.and(Predicate::ge(1, 2)),
                    base.and(Predicate::lt(0, 0)), // unsatisfiable residual
                ];
                for q in &members {
                    for k in [1usize, 5, 100] {
                        for need_matched in [false, true] {
                            let want = index
                                .execute(
                                    q,
                                    k,
                                    &store,
                                    &s,
                                    ranker.as_ref(),
                                    need_matched,
                                    &mut scratch,
                                )
                                .unwrap();
                            let got = index
                                .execute_shared(
                                    &shared,
                                    q,
                                    k,
                                    &store,
                                    &s,
                                    ranker.as_ref(),
                                    need_matched,
                                    &mut scratch,
                                )
                                .unwrap();
                            assert_eq!(
                                ids(&got.returned),
                                ids(&want.returned),
                                "{rname}: answer diverged for {q} k={k}"
                            );
                            assert_eq!(got.overflowed, want.overflowed, "{rname}: {q} k={k}");
                            if need_matched {
                                assert_eq!(got.matched, want.matched, "{rname}: {q} k={k}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn responses_share_the_store_allocation() {
        let (s, store, index) = build();
        let mut scratch = Scratch::default();
        let out = index
            .execute(
                &Query::select_all(),
                3,
                &store,
                &s,
                &SumRanker,
                false,
                &mut scratch,
            )
            .unwrap();
        for t in &out.returned {
            assert!(
                store.as_slice().iter().any(|u| Arc::ptr_eq(u, t)),
                "indexed responses must alias the shared store"
            );
        }
    }
}
