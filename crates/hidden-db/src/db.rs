//! The hidden database itself: a tuple store that can only be reached
//! through a top-k, predicate-restricted search interface.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use std::path::Path;

use crate::conc::SeqReserver;
use crate::index::{QueryIndex, Scratch};
use crate::segment::{
    BlockSource, FileSource, SegmentError, SegmentOpenOptions, SegmentReader, SegmentWriter,
    StorageStats,
};
use crate::stats::{AccessLog, AccessLogEntry, QueryStats, ShardedAccessLog};
use crate::store::TupleStore;
use crate::sync::StdSync;
use crate::{
    AttrId, AttributeRole, CmpOp, ExecStrategy, InterfaceType, Query, Ranker, Schema, SumRanker,
    Tuple, Value,
};

/// Upper bound on pooled scratch buffers kept alive by a database: enough
/// for one per hardware thread on big machines without letting a burst of
/// concurrent one-off queries pin memory forever.
const SCRATCH_POOL_CAP: usize = 32;

/// A client-visible limit on the number of search queries that may be
/// issued, modelling per-IP-address or per-API-key quotas of real web
/// databases (e.g. the 50 free queries per day of the Google Flights QPX
/// API mentioned in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Maximum number of accepted queries.
    pub max_queries: u64,
}

impl RateLimit {
    /// Creates a rate limit of `max_queries` queries.
    pub fn new(max_queries: u64) -> Self {
        RateLimit { max_queries }
    }
}

/// Errors returned by [`HiddenDb::query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query references an attribute that does not exist in the schema.
    UnknownAttribute {
        /// The offending attribute id.
        attr: usize,
    },
    /// The query uses a predicate operator that the attribute's search
    /// interface does not support (e.g. `>` on an SQ attribute, `<` on a PQ
    /// attribute).
    UnsupportedPredicate {
        /// The offending attribute id.
        attr: usize,
        /// The operator that was attempted.
        op: CmpOp,
        /// The interface type of the attribute.
        interface: InterfaceType,
    },
    /// The predicate constant lies outside the attribute's domain.
    ValueOutOfDomain {
        /// The offending attribute id.
        attr: usize,
        /// The out-of-domain constant.
        value: Value,
        /// The size of the attribute's domain.
        domain_size: Value,
    },
    /// The client has exhausted its query quota.
    RateLimitExceeded {
        /// The limit that was hit.
        limit: u64,
    },
    /// The server was temporarily unreachable (transient: a retry of the
    /// same query may succeed).
    Unavailable,
    /// The query did not complete within the client's per-query timeout
    /// (transient).
    Timeout {
        /// Simulated time the attempt spent before being abandoned.
        elapsed_ms: u64,
    },
    /// The server shed load with a short-lived throttle burst (transient —
    /// unlike [`QueryError::RateLimitExceeded`], which is the permanent
    /// exhaustion of the client's whole quota).
    Throttled,
    /// The connection dropped mid-plan; any answered prefix was delivered
    /// before the drop (transient).
    ConnectionDropped,
    /// A segment-backed store failed to load a chunk (I/O error or
    /// corrupted bytes). Non-transient: the backing file is damaged, so a
    /// retry hits the same bytes. The failed query still consumed its
    /// admitted sequence-number slot (it counts as issued) but wrote no
    /// access-log entry.
    Storage {
        /// The underlying storage fault.
        error: SegmentError,
    },
}

impl QueryError {
    /// `true` for failures that are worth retrying: the same query may
    /// succeed on a later attempt ([`QueryError::Unavailable`],
    /// [`QueryError::Timeout`], [`QueryError::Throttled`],
    /// [`QueryError::ConnectionDropped`]). Validation rejections and quota
    /// exhaustion are permanent: retrying cannot change the outcome.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            QueryError::Unavailable
                | QueryError::Timeout { .. }
                | QueryError::Throttled
                | QueryError::ConnectionDropped
        )
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownAttribute { attr } => write!(f, "unknown attribute A{attr}"),
            QueryError::UnsupportedPredicate {
                attr,
                op,
                interface,
            } => write!(
                f,
                "attribute A{attr} ({}) does not support predicate '{}'",
                interface.label(),
                op.symbol()
            ),
            QueryError::ValueOutOfDomain {
                attr,
                value,
                domain_size,
            } => write!(
                f,
                "value {value} is outside the domain [0, {domain_size}) of attribute A{attr}"
            ),
            QueryError::RateLimitExceeded { limit } => {
                write!(f, "query rate limit of {limit} queries exceeded")
            }
            QueryError::Unavailable => write!(f, "service temporarily unavailable"),
            QueryError::Timeout { elapsed_ms } => {
                write!(f, "query timed out after {elapsed_ms} ms")
            }
            QueryError::Throttled => write!(f, "request throttled, retry later"),
            QueryError::ConnectionDropped => write!(f, "connection dropped mid-plan"),
            QueryError::Storage { error } => write!(f, "segment storage error: {error}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Answer of the hidden database to one search query.
///
/// The tuples are shared (`Arc`) with the database's internal store: under
/// the indexed execution strategy building a response costs `k` reference
/// bumps instead of `k` deep tuple clones, which matters when experiments
/// issue tens of thousands of queries.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The returned tuples, best-ranked first. At most `k` tuples.
    pub tuples: Vec<Arc<Tuple>>,
    /// `true` if more than `k` tuples matched the query, i.e. the answer was
    /// truncated by the top-k constraint ("the query overflowed").
    pub overflowed: bool,
}

impl QueryResponse {
    /// The best-ranked returned tuple, if any.
    pub fn top(&self) -> Option<&Tuple> {
        self.tuples.first().map(Arc::as_ref)
    }

    /// `true` if no tuple matched the query.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Number of returned tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Iterates the returned tuples, best-ranked first.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter().map(Arc::as_ref)
    }
}

/// A hidden web database: tuples + schema + proprietary ranking function,
/// reachable only through [`HiddenDb::query`].
///
/// The struct deliberately offers **no** public access to the raw tuple
/// store from the client's perspective; discovery algorithms must go through
/// the query interface, which counts every access. Experiment code that
/// needs ground truth (e.g. to verify that all skyline tuples were found)
/// can use [`HiddenDb::oracle_tuples`], which is clearly marked as
/// server-side knowledge.
pub struct HiddenDb {
    schema: Schema,
    /// The single `Arc`-backed tuple store shared by the scan path, the
    /// index builder and every response (see [`TupleStore`]). Earlier
    /// revisions held the tuples twice — a plain `Vec<Tuple>` plus lazily
    /// deep-cloned `Arc<Tuple>`s for responses — which doubled resident
    /// memory on indexed databases.
    store: TupleStore,
    /// Rank permutation + zone maps + per-attribute posting lists, built
    /// lazily on the first indexed query or `selectivity()` call (so a
    /// database pinned to [`ExecStrategy::Scan`] never pays for them).
    index: OnceLock<QueryIndex>,
    strategy: ExecStrategy,
    ranker: Box<dyn Ranker>,
    k: usize,
    rate_limit: Option<RateLimit>,
    /// Sequence numbering + rate-limit reservation — the [`SeqReserver`]
    /// core the `skyweb-check` interleaving explorer model-checks.
    queries: SeqReserver<StdSync>,
    overflows: AtomicU64,
    empty_answers: AtomicU64,
    tuples_returned: AtomicU64,
    log_enabled: AtomicBool,
    /// Sharded log buffers: entries are spread over independently locked
    /// shards by sequence number, so concurrent logging sessions do not
    /// serialize on one mutex; [`HiddenDb::access_log`] merges them into the
    /// seq-ordered snapshot.
    access_log: ShardedAccessLog,
    /// Recycled per-query working memory for session-less [`HiddenDb::query`]
    /// calls. Sessions carry their own scratch; this pool only serves one-off
    /// queries so they stay allocation-light too.
    scratch_pool: Mutex<Vec<Scratch>>,
}

impl fmt::Debug for HiddenDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HiddenDb")
            .field("n", &self.store.len())
            .field("m", &self.schema.num_ranking())
            .field("k", &self.k)
            .field("ranker", &self.ranker.name())
            .field("rate_limit", &self.rate_limit)
            .finish()
    }
}

/// What executing an admitted query yields: the returned tuples
/// (best-ranked first), the overflow flag and the exact match count when
/// the chosen plan produced one.
pub(crate) type ExecOutput = (Vec<Arc<Tuple>>, bool, Option<usize>);

impl HiddenDb {
    /// Creates a hidden database with the given schema, tuples, ranking
    /// function and top-k constraint.
    ///
    /// # Panics
    /// Panics if `k == 0`, if any tuple's arity differs from the schema, or
    /// if any tuple value lies outside its attribute domain.
    pub fn new(schema: Schema, tuples: Vec<Tuple>, ranker: Box<dyn Ranker>, k: usize) -> Self {
        assert!(k >= 1, "the top-k constraint requires k >= 1");
        for t in &tuples {
            assert_eq!(
                t.arity(),
                schema.len(),
                "tuple {} has arity {} but the schema has {} attributes",
                t.id,
                t.arity(),
                schema.len()
            );
            for (attr, &v) in t.values.iter().enumerate() {
                assert!(
                    schema.value_in_domain(attr, v),
                    "tuple {} value {v} is outside the domain of attribute {attr}",
                    t.id
                );
            }
        }
        HiddenDb {
            schema,
            store: TupleStore::new(tuples),
            index: OnceLock::new(),
            strategy: ExecStrategy::default(),
            ranker,
            k,
            rate_limit: None,
            queries: SeqReserver::new(false),
            overflows: AtomicU64::new(0),
            empty_answers: AtomicU64::new(0),
            tuples_returned: AtomicU64::new(0),
            log_enabled: AtomicBool::new(false),
            access_log: ShardedAccessLog::default(),
            scratch_pool: Mutex::new(Vec::new()),
        }
    }

    /// Convenience constructor using the paper's default offline ranking
    /// function ([`SumRanker`]).
    pub fn with_sum_ranking(schema: Schema, tuples: Vec<Tuple>, k: usize) -> Self {
        HiddenDb::new(schema, tuples, Box::new(SumRanker), k)
    }

    /// Persists this database as a columnar segment file and returns the
    /// number of bytes written (see `docs/segment-format.md`). The output is
    /// byte-deterministic for a given database.
    ///
    /// Fails with [`SegmentError::Malformed`] if this database is itself
    /// segment-backed — re-encoding an opened segment is not supported (copy
    /// the file instead).
    pub fn write_segment(&self, path: impl AsRef<Path>) -> Result<u64, SegmentError> {
        SegmentWriter::new().write_to_path(self, path)
    }

    /// Opens a persisted columnar segment file as a lazily-hydrating hidden
    /// database (see [`HiddenDb::open_segment_source`] for semantics).
    pub fn open_segment(
        path: impl AsRef<Path>,
        ranker: Box<dyn Ranker>,
    ) -> Result<Self, SegmentError> {
        HiddenDb::open_segment_source(Box::new(FileSource::open(path)?), ranker)
    }

    /// [`HiddenDb::open_segment`] with explicit open options (cache budget,
    /// compressed-domain filtering).
    pub fn open_segment_with(
        path: impl AsRef<Path>,
        ranker: Box<dyn Ranker>,
        options: SegmentOpenOptions,
    ) -> Result<Self, SegmentError> {
        HiddenDb::open_segment_source_with(Box::new(FileSource::open(path)?), ranker, options)
    }

    /// Opens a persisted columnar segment from an arbitrary [`BlockSource`]
    /// as a lazily-hydrating hidden database.
    ///
    /// The cold open reads only the trailer, footer, prefix counts and zone
    /// maps — O(footer + metadata), independent of the tuple count. Column
    /// chunks and tuples materialize per 4096-entry chunk the first time a
    /// query touches them, and `Ranker::precompute` never runs: the rank
    /// permutation persisted at write time is served directly.
    ///
    /// `ranker` must be behaviorally identical to the ranker the segment was
    /// written under; it is checked **by name** against the stored name and
    /// rejected with [`SegmentError::RankerMismatch`] on disagreement. The
    /// name check cannot distinguish two differently-parameterized rankers
    /// with the same name (e.g. two `WeightedSumRanker`s with different
    /// weights) — passing one silently yields the *written* ranking, since
    /// the persisted permutation wins.
    ///
    /// The opened database starts with the default [`ExecStrategy::Indexed`]
    /// strategy, no rate limit, zeroed statistics and the access log off —
    /// exactly like [`HiddenDb::new`]. Storage faults during later queries
    /// surface as [`QueryError::Storage`].
    pub fn open_segment_source(
        source: Box<dyn BlockSource>,
        ranker: Box<dyn Ranker>,
    ) -> Result<Self, SegmentError> {
        HiddenDb::open_segment_source_with(source, ranker, SegmentOpenOptions::default())
    }

    /// [`HiddenDb::open_segment_source`] with explicit open options: a
    /// chunk-cache byte budget (bounded working set with clock eviction
    /// instead of sticky hydration) and a switch for compressed-domain
    /// predicate filtering.
    pub fn open_segment_source_with(
        source: Box<dyn BlockSource>,
        ranker: Box<dyn Ranker>,
        options: SegmentOpenOptions,
    ) -> Result<Self, SegmentError> {
        let reader = Arc::new(SegmentReader::open_with(source, options)?);
        if reader.ranker_name() != ranker.name() {
            return Err(SegmentError::RankerMismatch {
                expected: reader.ranker_name().to_string(),
                found: ranker.name().to_string(),
            });
        }
        let db = HiddenDb {
            schema: reader.schema().clone(),
            store: TupleStore::from_segment(Arc::clone(&reader)),
            index: OnceLock::new(),
            strategy: ExecStrategy::default(),
            ranker,
            k: reader.k(),
            rate_limit: None,
            queries: SeqReserver::new(false),
            overflows: AtomicU64::new(0),
            empty_answers: AtomicU64::new(0),
            tuples_returned: AtomicU64::new(0),
            log_enabled: AtomicBool::new(false),
            access_log: ShardedAccessLog::default(),
            scratch_pool: Mutex::new(Vec::new()),
        };
        // Pre-seed the index with the segment metadata so first use never
        // falls back to the O(m·n) RAM build (which would hydrate the whole
        // store).
        let _ = db.index.set(QueryIndex::from_segment(reader));
        Ok(db)
    }

    /// Selects the query-execution strategy (builder style). The default is
    /// [`ExecStrategy::Indexed`]; [`ExecStrategy::Scan`] keeps the naive
    /// filter-then-rank reference path, mainly for differential testing and
    /// benchmarking.
    pub fn with_strategy(mut self, strategy: ExecStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The active query-execution strategy.
    pub fn strategy(&self) -> ExecStrategy {
        self.strategy
    }

    /// The lazily-built query index (first use pays the O(m·n) posting
    /// sorts and the rank-order precompute).
    pub(crate) fn index(&self) -> &QueryIndex {
        self.index
            .get_or_init(|| QueryIndex::build(&self.store, &self.schema, self.ranker.as_ref()))
    }

    /// Number of tuples whose value on `attr` lies in the closed interval
    /// `[lo, hi]` — answered in O(1) from the prefix-count index. This is
    /// server-side knowledge (like [`HiddenDb::oracle_tuples`]): experiment
    /// code may use it for workload analysis, discovery algorithms must not.
    ///
    /// # Panics
    /// Panics if `attr` is out of range or `hi` is outside the domain.
    pub fn selectivity(&self, attr: AttrId, lo: Value, hi: Value) -> usize {
        assert!(attr < self.schema.len(), "unknown attribute A{attr}");
        assert!(
            self.schema.value_in_domain(attr, hi),
            "value {hi} outside the domain of attribute A{attr}"
        );
        self.index().range_count(attr, lo, hi)
    }

    /// Installs a query rate limit (replacing any previous one).
    pub fn set_rate_limit(&mut self, limit: Option<RateLimit>) {
        self.rate_limit = limit;
    }

    /// Builder-style variant of [`HiddenDb::set_rate_limit`].
    pub fn with_rate_limit(mut self, limit: RateLimit) -> Self {
        self.rate_limit = Some(limit);
        self
    }

    /// Starts recording every answered query in an [`AccessLog`].
    pub fn enable_access_log(&self) {
        self.access_log.clear();
        self.log_enabled.store(true, Ordering::Relaxed);
    }

    /// Returns a snapshot of the access log (empty if logging was never
    /// enabled).
    ///
    /// The log is shared by every client of the database but written
    /// through per-sequence-number shards (a client can also be preempted
    /// between reserving its sequence number and writing its entry), so the
    /// snapshot merges the shards and normalizes to ascending sequence
    /// order — the merged, chronological view of all clients' queries,
    /// byte-identical to what the old single-mutex log produced.
    pub fn access_log(&self) -> AccessLog {
        if !self.log_enabled.load(Ordering::Relaxed) {
            return AccessLog::default();
        }
        self.access_log.snapshot()
    }

    /// The database schema (public knowledge: the search form reveals it).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The top-k constraint of the interface.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of tuples in the database.
    ///
    /// Real hidden databases usually advertise their size ("209,666
    /// diamonds"), so exposing `n` is not cheating; none of the discovery
    /// algorithms rely on it.
    pub fn n(&self) -> usize {
        self.store.len()
    }

    /// Name of the ranking function (for reports only — the discovery
    /// algorithms never inspect it).
    pub fn ranker_name(&self) -> &str {
        self.ranker.name()
    }

    /// A snapshot of the backing segment's storage counters (chunk-cache
    /// hits/misses/evictions, resident bytes, chunks decoded per codec), or
    /// `None` for a RAM-backed database.
    pub fn storage_stats(&self) -> Option<StorageStats> {
        self.store
            .segment_reader()
            .map(|reader| reader.storage_stats())
    }

    /// Number of queries answered so far.
    pub fn queries_issued(&self) -> u64 {
        self.queries.issued()
    }

    /// Full query accounting.
    pub fn stats(&self) -> QueryStats {
        QueryStats {
            queries: self.queries.issued(),
            overflows: self.overflows.load(Ordering::Relaxed),
            empty_answers: self.empty_answers.load(Ordering::Relaxed),
            tuples_returned: self.tuples_returned.load(Ordering::Relaxed),
        }
    }

    /// Resets all query counters (and clears the access log if enabled).
    pub fn reset_stats(&self) {
        self.queries.reset();
        self.overflows.store(0, Ordering::Relaxed);
        self.empty_answers.store(0, Ordering::Relaxed);
        self.tuples_returned.store(0, Ordering::Relaxed);
        if self.log_enabled.load(Ordering::Relaxed) {
            self.access_log.clear();
        }
    }

    /// Validates that a query only uses predicates supported by the search
    /// interface. Rejected queries are *not* counted against the rate limit.
    pub fn validate(&self, query: &Query) -> Result<(), QueryError> {
        for p in query.predicates() {
            if p.attr >= self.schema.len() {
                return Err(QueryError::UnknownAttribute { attr: p.attr });
            }
            let spec = self.schema.attr(p.attr);
            if !self.schema.value_in_domain(p.attr, p.value) {
                return Err(QueryError::ValueOutOfDomain {
                    attr: p.attr,
                    value: p.value,
                    domain_size: spec.domain_size,
                });
            }
            let supported = match spec.role {
                AttributeRole::Filtering => p.op == CmpOp::Eq,
                AttributeRole::Ranking => match spec.interface {
                    InterfaceType::Sq => p.op == CmpOp::Eq || p.op.is_upper_bound(),
                    InterfaceType::Rq => true,
                    InterfaceType::Pq => p.op == CmpOp::Eq,
                },
            };
            if !supported {
                return Err(QueryError::UnsupportedPredicate {
                    attr: p.attr,
                    op: p.op,
                    interface: spec.interface,
                });
            }
        }
        Ok(())
    }

    /// Answers a search query: validates it, applies the conjunctive
    /// predicates, lets the ranking function pick the top-k matching tuples,
    /// and updates the query counters.
    ///
    /// Under [`ExecStrategy::Indexed`] (the default) the answer is produced
    /// by the engine in the `index` module: rank-ordered early termination for
    /// broad queries, posting-list candidate pruning for selective ones, and
    /// `Arc`-shared responses. [`ExecStrategy::Scan`] keeps the naive
    /// filter-everything-then-rank reference path; both produce identical
    /// responses, statistics and access-log entries.
    pub fn query(&self, query: &Query) -> Result<QueryResponse, QueryError> {
        // Borrow a pooled scratch so one-off queries stay allocation-light
        // in steady state; sessions bypass the pool with their own buffer.
        let mut scratch = self
            .scratch_pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()
            .unwrap_or_default();
        let out = self.query_with_scratch(query, &mut scratch);
        let mut pool = self
            .scratch_pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if pool.len() < SCRATCH_POOL_CAP {
            pool.push(scratch);
        }
        out
    }

    /// Issues `queries` back to back through one internal [`Session`],
    /// returning one result per query in order. Statistics, rate limiting
    /// and the access log behave exactly as if each query had been issued
    /// individually.
    ///
    /// [`Session`]: crate::Session
    pub fn query_batch(&self, queries: &[Query]) -> Vec<Result<QueryResponse, QueryError>> {
        let mut session = self.session();
        queries.iter().map(|q| session.query(q)).collect()
    }

    /// The engine shared by [`HiddenDb::query`] and [`crate::Session`]: the
    /// caller provides the per-query working memory.
    pub(crate) fn query_with_scratch(
        &self,
        query: &Query,
        scratch: &mut Scratch,
    ) -> Result<QueryResponse, QueryError> {
        let seq = self.admit(query)?;
        let log_enabled = self.log_on();
        let (tuples, overflowed, matched) = self.exec_validated(query, log_enabled, scratch)?;
        Ok(self.finish_query(query, seq, tuples, overflowed, matched, log_enabled))
    }

    /// Admission control for one query: validation, rate-limit reservation
    /// and sequence numbering. On success the query *will* be answered and
    /// counted; admission and completion are split so the plan executor can
    /// interleave them with shared-group evaluation in exact plan order.
    pub(crate) fn admit(&self, query: &Query) -> Result<u64, QueryError> {
        self.validate(query)?;
        // Capture the value returned by `fetch_add` for the log sequence
        // number: re-reading the counter after the increment would let
        // concurrent clients log duplicate or skipped sequence numbers.
        self.queries
            .reserve(self.rate_limit.map(|limit| limit.max_queries))
            .map_err(|limit| QueryError::RateLimitExceeded { limit })
    }

    /// `true` while the access log is recording (the flag that also pins
    /// exact-match-count execution plans).
    pub(crate) fn log_on(&self) -> bool {
        self.log_enabled.load(Ordering::Relaxed)
    }

    /// Computes the answer of an admitted query under the active execution
    /// strategy: the returned tuples (best-ranked first), the overflow flag
    /// and the exact match count when the chosen plan produced one.
    ///
    /// The only error is [`QueryError::Storage`] from a segment-backed store
    /// (a RAM-backed database never fails here). A storage failure consumes
    /// the admitted sequence-number slot but writes no access-log entry.
    pub(crate) fn exec_validated(
        &self,
        query: &Query,
        need_matched: bool,
        scratch: &mut Scratch,
    ) -> Result<ExecOutput, QueryError> {
        match self.strategy {
            ExecStrategy::Scan => {
                // The reference path is a full scan: hydrate a segment-backed
                // store once so the iteration below cannot hit a storage
                // fault mid-scan.
                self.store
                    .try_hydrate_all()
                    .map_err(|e| QueryError::Storage { error: e })?;
                let mut indices: Vec<u32> = Vec::new();
                for (i, t) in self.store.iter().enumerate() {
                    if query.matches(t) {
                        indices.push(i as u32);
                    }
                }
                let matched = indices.len();
                // The reference path offers no precomputed dominance index
                // (`dom = None`); rankers are required to select identically
                // with and without it, which the differential suite checks.
                let selected = self.ranker.select_top_k_indices(
                    &self.store,
                    &indices,
                    self.k,
                    &self.schema,
                    None,
                );
                // Even the reference path shares the store: no code path
                // deep-clones tuples into a response anymore.
                let tuples = selected
                    .iter()
                    .map(|&i| self.store.share(i as usize))
                    .collect();
                Ok((tuples, matched > self.k, Some(matched)))
            }
            ExecStrategy::Indexed => {
                let out = self
                    .index()
                    .execute(
                        query,
                        self.k,
                        &self.store,
                        &self.schema,
                        self.ranker.as_ref(),
                        need_matched,
                        scratch,
                    )
                    .map_err(|e| QueryError::Storage { error: e })?;
                Ok((out.returned, out.overflowed, out.matched))
            }
        }
    }

    /// Completes an admitted query: updates the global counters, records the
    /// access-log entry under the reserved sequence number and builds the
    /// response.
    pub(crate) fn finish_query(
        &self,
        query: &Query,
        seq: u64,
        tuples: Vec<Arc<Tuple>>,
        overflowed: bool,
        matched: Option<usize>,
        log_enabled: bool,
    ) -> QueryResponse {
        if overflowed {
            self.overflows.fetch_add(1, Ordering::Relaxed);
        }
        // k >= 1, so the answer is empty exactly when nothing matched.
        if tuples.is_empty() {
            self.empty_answers.fetch_add(1, Ordering::Relaxed);
        }
        self.tuples_returned
            .fetch_add(tuples.len() as u64, Ordering::Relaxed);

        if log_enabled {
            // The engine only omits the matching count on early-terminated
            // rank scans, a plan it never picks while the log is recording
            // (`need_matched` in the executors is this same flag), so
            // `matched` is always present here.
            if let Some(matched) = matched {
                self.access_log.push(AccessLogEntry {
                    seq,
                    query: query.to_string(),
                    matched,
                    returned: tuples.len(),
                    overflowed,
                });
            }
        }

        QueryResponse { tuples, overflowed }
    }

    /// Executes a whole multi-query plan through the shared-prefix batch
    /// executor (see `index::execute_plan`): sibling queries grouped by
    /// shared predicate prefix evaluate their shared conjunction once, and
    /// per-query admission, statistics and access-log accounting happen in
    /// exact plan order — byte-identical to issuing the queries one by one.
    ///
    /// `hint` carries the grouping a discovery machine annotated its plan
    /// with; it is checked against the plan (and recomputed on the engine
    /// side when absent or inconsistent) before being trusted.
    pub(crate) fn run_plan_with_scratch(
        &self,
        queries: &[Query],
        hint: Option<&[crate::PrefixGroup]>,
        scratch: &mut Scratch,
    ) -> (Vec<QueryResponse>, Option<QueryError>) {
        let computed;
        let groups: &[crate::PrefixGroup] = match hint {
            // An annotation is only trusted after it verifies against the
            // plan; anything else (including a stale or buggy hint) gets
            // the engine-side factoring, as documented.
            Some(h) if crate::predicate::groups_cover(queries, h) => h,
            _ => {
                computed = crate::predicate::prefix_groups(queries);
                &computed
            }
        };
        let mut responses = Vec::with_capacity(queries.len());
        let err = crate::index::execute_plan(self, queries, groups, scratch, &mut responses);
        (responses, err)
    }

    /// The tuple store the engine answers from (crate-internal view; the
    /// public server-side handle is [`HiddenDb::oracle_tuples`]).
    pub(crate) fn store(&self) -> &TupleStore {
        &self.store
    }

    /// The ranking function (crate-internal view for the plan executor).
    pub(crate) fn ranker(&self) -> &dyn Ranker {
        self.ranker.as_ref()
    }

    /// Server-side ("oracle") access to the raw tuple store.
    ///
    /// This is **not** part of the hidden-database interface. It exists so
    /// that experiments and tests can compute ground-truth skylines and so
    /// that generators can inspect what they produced. Discovery algorithms
    /// must never call it.
    ///
    /// The returned [`TupleStore`] is the *same* allocation the query
    /// engine answers from (clone it to keep a cheap handle); there is no
    /// second oracle copy of the data.
    pub fn oracle_tuples(&self) -> &TupleStore {
        &self.store
    }

    /// Opens a client session: an independent query cursor with its own
    /// [`QueryStats`] accounting and reusable working memory, sharing the
    /// database (store, index, rate limit, global statistics, access log)
    /// with every other session.
    pub fn session(&self) -> crate::Session<'_> {
        crate::Session::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Predicate, SchemaBuilder, SingleAttributeRanker};

    fn mixed_db(k: usize) -> HiddenDb {
        let schema = SchemaBuilder::new()
            .ranking("price", 10, InterfaceType::Rq)
            .ranking("duration", 10, InterfaceType::Sq)
            .ranking("stops", 3, InterfaceType::Pq)
            .filtering("carrier", 4)
            .build();
        let tuples = vec![
            Tuple::new(0, vec![2, 5, 0, 1]),
            Tuple::new(1, vec![4, 2, 1, 0]),
            Tuple::new(2, vec![7, 7, 2, 2]),
            Tuple::new(3, vec![1, 8, 1, 3]),
            Tuple::new(4, vec![5, 5, 0, 1]),
        ];
        HiddenDb::with_sum_ranking(schema, tuples, k)
    }

    #[test]
    fn select_all_returns_top_k_and_overflows() {
        let db = mixed_db(2);
        let ans = db.query(&Query::select_all()).unwrap();
        assert_eq!(ans.len(), 2);
        assert!(ans.overflowed);
        // SumRanker over ranking attrs only: sums are 7, 7, 16, 10, 10 →
        // tuples 0 and 1 tie at 7, tie broken by id.
        assert_eq!(ans.tuples[0].id, 0);
        assert_eq!(ans.tuples[1].id, 1);
        assert_eq!(db.queries_issued(), 1);
    }

    #[test]
    fn predicates_filter_matching_tuples() {
        let db = mixed_db(10);
        let q = Query::new(vec![Predicate::lt(0, 5)]);
        let ans = db.query(&q).unwrap();
        assert!(!ans.overflowed);
        let ids: Vec<u64> = ans.tuples.iter().map(|t| t.id).collect();
        assert_eq!(ids.len(), 3);
        assert!(ids.contains(&0) && ids.contains(&1) && ids.contains(&3));
    }

    #[test]
    fn interface_capabilities_are_enforced() {
        let db = mixed_db(5);
        // `>` on an SQ attribute is rejected.
        let err = db
            .query(&Query::new(vec![Predicate::gt(1, 3)]))
            .unwrap_err();
        assert!(matches!(
            err,
            QueryError::UnsupportedPredicate { attr: 1, .. }
        ));
        // `<` on a PQ attribute is rejected.
        let err = db
            .query(&Query::new(vec![Predicate::lt(2, 2)]))
            .unwrap_err();
        assert!(matches!(
            err,
            QueryError::UnsupportedPredicate { attr: 2, .. }
        ));
        // Non-equality on a filtering attribute is rejected.
        let err = db
            .query(&Query::new(vec![Predicate::ge(3, 1)]))
            .unwrap_err();
        assert!(matches!(
            err,
            QueryError::UnsupportedPredicate { attr: 3, .. }
        ));
        // `=` is always allowed.
        assert!(db.query(&Query::new(vec![Predicate::eq(2, 0)])).is_ok());
        // Rejected queries are not counted.
        assert_eq!(db.queries_issued(), 1);
    }

    #[test]
    fn out_of_domain_and_unknown_attributes_are_rejected() {
        let db = mixed_db(5);
        let err = db
            .query(&Query::new(vec![Predicate::eq(2, 3)]))
            .unwrap_err();
        assert!(matches!(
            err,
            QueryError::ValueOutOfDomain {
                attr: 2,
                value: 3,
                ..
            }
        ));
        let err = db
            .query(&Query::new(vec![Predicate::eq(9, 0)]))
            .unwrap_err();
        assert!(matches!(err, QueryError::UnknownAttribute { attr: 9 }));
        assert_eq!(db.queries_issued(), 0);
    }

    #[test]
    fn empty_answers_are_counted() {
        let db = mixed_db(5);
        let q = Query::new(vec![Predicate::lt(0, 1), Predicate::lt(1, 3)]);
        let ans = db.query(&q).unwrap();
        assert!(ans.is_empty());
        assert!(!ans.overflowed);
        assert_eq!(db.stats().empty_answers, 1);
    }

    #[test]
    fn rate_limit_is_enforced() {
        let db = mixed_db(5).with_rate_limit(RateLimit::new(2));
        assert!(db.query(&Query::select_all()).is_ok());
        assert!(db.query(&Query::select_all()).is_ok());
        let err = db.query(&Query::select_all()).unwrap_err();
        assert_eq!(err, QueryError::RateLimitExceeded { limit: 2 });
        assert_eq!(db.queries_issued(), 2);
    }

    #[test]
    fn stats_and_reset() {
        let db = mixed_db(2);
        db.query(&Query::select_all()).unwrap();
        db.query(&Query::new(vec![Predicate::lt(0, 1), Predicate::lt(1, 3)]))
            .unwrap();
        let stats = db.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.overflows, 1);
        assert_eq!(stats.empty_answers, 1);
        assert_eq!(stats.tuples_returned, 2);
        db.reset_stats();
        assert_eq!(db.stats(), QueryStats::default());
    }

    #[test]
    fn access_log_records_queries() {
        let db = mixed_db(2);
        db.enable_access_log();
        db.query(&Query::select_all()).unwrap();
        db.query(&Query::new(vec![Predicate::eq(2, 0)])).unwrap();
        let log = db.access_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log.entries()[0].query, "SELECT * FROM D");
        assert!(log.entries()[0].overflowed);
        assert_eq!(log.entries()[1].matched, 2);
    }

    #[test]
    fn price_ranking_matches_online_scenario() {
        let schema = SchemaBuilder::new()
            .ranking("price", 100, InterfaceType::Rq)
            .ranking("mileage", 100, InterfaceType::Rq)
            .build();
        let tuples = vec![
            Tuple::new(0, vec![30, 1]),
            Tuple::new(1, vec![10, 90]),
            Tuple::new(2, vec![20, 50]),
        ];
        let db = HiddenDb::new(schema, tuples, Box::new(SingleAttributeRanker::new(0)), 2);
        let ans = db.query(&Query::select_all()).unwrap();
        assert_eq!(ans.tuples[0].id, 1);
        assert_eq!(ans.tuples[1].id, 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn mismatched_arity_panics() {
        let schema = SchemaBuilder::new()
            .ranking("a", 10, InterfaceType::Rq)
            .ranking("b", 10, InterfaceType::Rq)
            .build();
        let _ = HiddenDb::with_sum_ranking(schema, vec![Tuple::new(0, vec![1])], 1);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        let schema = SchemaBuilder::new()
            .ranking("a", 10, InterfaceType::Rq)
            .build();
        let _ = HiddenDb::with_sum_ranking(schema, vec![], 0);
    }
}
