//! Concurrency cores: the shared-state hot paths of the storage layer,
//! extracted into small generic structures so a model checker can explore
//! them exhaustively.
//!
//! Three cores live here, each generic over the [`SyncFacade`](crate::sync::SyncFacade):
//!
//! * [`ClockCacheCore`] — the sharded clock (second-chance) cache behind
//!   the bounded decoded-chunk cache of `SegmentReader`;
//! * [`ShardedLogCore`] — the sharded append buffer behind the access log;
//! * [`SeqReserver`] — the atomic sequence/rate-limit reservation behind
//!   query admission.
//!
//! Production code uses them through [`StdSync`](crate::sync::StdSync)
//! (zero-cost `std::sync` pass-throughs); the `skyweb-check` explorer
//! instantiates them with a model facade whose every operation is a
//! scheduling yield point and enumerates bounded thread interleavings.
//!
//! Each core accepts a `racy` flag that *weakens* its atomic
//! read-modify-write updates to separate load + store steps — the seeded
//! mutation the explorer must detect to prove it has teeth. Production
//! constructors always pass `false`; the flag exists only so the checker
//! can demonstrate that the exact interleavings it explores distinguish
//! the correct protocol from the broken one.

use std::collections::HashMap;
use std::hash::Hash;

use crate::sync::{FacadeAtomicU64, FacadeMutex, SyncFacade};

/// Adds `delta` to `counter`, either atomically or — under the seeded
/// `racy` mutation — as a non-atomic load + store pair (two separate
/// yield points under the model facade, so a lost update is reachable).
fn counter_add<A: FacadeAtomicU64>(counter: &A, delta: u64, racy: bool) {
    if racy {
        let v = counter.load();
        counter.store(v.wrapping_add(delta));
    } else {
        counter.fetch_add(delta);
    }
}

/// Subtracting twin of [`counter_add`].
fn counter_sub<A: FacadeAtomicU64>(counter: &A, delta: u64, racy: bool) {
    if racy {
        let v = counter.load();
        counter.store(v.wrapping_sub(delta));
    } else {
        counter.fetch_sub(delta);
    }
}

/// One resident entry of a [`ClockCacheCore`] shard.
struct ClockSlot<K, V> {
    key: K,
    value: V,
    cost: u64,
    referenced: bool,
}

/// One shard: clock (second-chance) eviction over a flat slot array with a
/// key → slot index side table.
struct ClockShard<K, V> {
    slots: Vec<ClockSlot<K, V>>,
    index: HashMap<K, usize>,
    hand: usize,
    bytes: u64,
}

impl<K, V> Default for ClockShard<K, V> {
    fn default() -> Self {
        ClockShard {
            slots: Vec::new(),
            index: HashMap::new(),
            hand: 0,
            bytes: 0,
        }
    }
}

/// A sharded, byte-budgeted cache with clock (second-chance) eviction.
///
/// The caller maps keys to shards (the shard function is domain knowledge
/// — e.g. the chunk cache mixes chunk/attr/kind); each shard holds at most
/// `total_budget / n_shards` bytes. A lookup marks its slot *referenced*;
/// the eviction hand clears the mark on first contact and only evicts
/// slots it finds unmarked, so anything touched since the hand's last
/// sweep survives one extra revolution.
///
/// Hit/miss/eviction/resident-bytes counters are maintained internally on
/// facade atomics so the statistics stay exact under concurrent clients —
/// the invariant the `skyweb-check` explorer pins is
/// `resident == Σ slot costs` across every reachable interleaving.
pub struct ClockCacheCore<S: SyncFacade, K: Send, V: Send> {
    shards: Vec<S::Mutex<ClockShard<K, V>>>,
    shard_budget: u64,
    hits: S::AtomicU64,
    misses: S::AtomicU64,
    evictions: S::AtomicU64,
    resident: S::AtomicU64,
    racy: bool,
}

/// A consistency snapshot of a [`ClockCacheCore`], taken by walking every
/// shard under its lock: the ground truth the counters must agree with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAudit {
    /// Number of resident slots across all shards.
    pub slots: usize,
    /// Sum of the resident slots' costs (ground-truth resident bytes).
    pub slot_bytes: u64,
    /// Value of the `resident` counter (must equal `slot_bytes`).
    pub resident_counter: u64,
    /// `true` if any shard holds more bytes than its budget.
    pub over_budget: bool,
    /// Lifetime hit count.
    pub hits: u64,
    /// Lifetime miss count.
    pub misses: u64,
    /// Lifetime eviction count.
    pub evictions: u64,
}

impl<S, K, V> ClockCacheCore<S, K, V>
where
    S: SyncFacade,
    K: Eq + Hash + Copy + Send,
    V: Clone + Send,
{
    /// Creates a cache of `n_shards` shards sharing `total_budget` bytes.
    ///
    /// `racy` must be `false` outside the model checker: it weakens the
    /// counter updates to load + store (the seeded lost-update mutation).
    pub fn new(n_shards: usize, total_budget: u64, racy: bool) -> Self {
        let divisor = u64::try_from(n_shards.max(1)).unwrap_or(u64::MAX);
        ClockCacheCore {
            shards: (0..n_shards.max(1))
                .map(|_| S::Mutex::new(ClockShard::default()))
                .collect(),
            shard_budget: total_budget / divisor,
            hits: S::AtomicU64::new(0),
            misses: S::AtomicU64::new(0),
            evictions: S::AtomicU64::new(0),
            resident: S::AtomicU64::new(0),
            racy,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard byte budget.
    pub fn shard_budget(&self) -> u64 {
        self.shard_budget
    }

    /// Looks `key` up in `shard`, counting a hit or a miss. A hit marks
    /// the slot referenced (its second chance against the clock hand).
    pub fn get(&self, shard: usize, key: K) -> Option<V> {
        let found = self.shards[shard % self.shards.len()].with(|s| {
            s.index.get(&key).copied().map(|i| {
                s.slots[i].referenced = true;
                s.slots[i].value.clone()
            })
        });
        let counter = if found.is_some() {
            &self.hits
        } else {
            &self.misses
        };
        counter_add(counter, 1, self.racy);
        found
    }

    /// `true` if `key` is resident in `shard`. No counters move — the
    /// prefetch peek.
    pub fn contains(&self, shard: usize, key: K) -> bool {
        self.shards[shard % self.shards.len()].with(|s| s.index.contains_key(&key))
    }

    /// Counts a miss without a lookup — for values decoded via a batched
    /// prefetch rather than [`ClockCacheCore::get`].
    pub fn note_miss(&self) {
        counter_add(&self.misses, 1, self.racy);
    }

    /// Inserts `value` under `key` into `shard`, evicting by clock as
    /// needed, and returns the canonical resident copy. A value whose
    /// `cost` exceeds the shard budget is served back uncached; a key
    /// already resident returns the existing copy unchanged.
    pub fn insert(&self, shard: usize, key: K, value: V, cost: u64) -> V {
        if cost > self.shard_budget {
            // Too large to ever stay resident: serve uncached.
            return value;
        }
        self.shards[shard % self.shards.len()].with(|s| {
            if let Some(&i) = s.index.get(&key) {
                return s.slots[i].value.clone();
            }
            while s.bytes + cost > self.shard_budget && !s.slots.is_empty() {
                let i = s.hand % s.slots.len();
                if s.slots[i].referenced {
                    s.slots[i].referenced = false;
                    s.hand = i + 1;
                } else {
                    let victim = s.slots.swap_remove(i);
                    s.index.remove(&victim.key);
                    s.bytes -= victim.cost;
                    counter_add(&self.evictions, 1, self.racy);
                    counter_sub(&self.resident, victim.cost, self.racy);
                    if i < s.slots.len() {
                        let moved = s.slots[i].key;
                        s.index.insert(moved, i);
                    }
                }
            }
            let i = s.slots.len();
            s.index.insert(key, i);
            s.slots.push(ClockSlot {
                key,
                value: value.clone(),
                cost,
                referenced: true,
            });
            s.bytes += cost;
            counter_add(&self.resident, cost, self.racy);
            value
        })
    }

    /// Lifetime hit count.
    pub fn hit_count(&self) -> u64 {
        self.hits.load()
    }

    /// Lifetime miss count.
    pub fn miss_count(&self) -> u64 {
        self.misses.load()
    }

    /// Lifetime eviction count.
    pub fn eviction_count(&self) -> u64 {
        self.evictions.load()
    }

    /// Current resident-bytes counter.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load()
    }

    /// Walks every shard and cross-checks the counters against the ground
    /// truth — the explorer's invariant probe (also handy in stress
    /// tests). Shards are visited one at a time, so the audit is exact
    /// only when no writer runs concurrently (quiescence is the caller's
    /// job; the explorer audits after all model threads have joined).
    pub fn audit(&self) -> CacheAudit {
        let mut slots = 0usize;
        let mut slot_bytes = 0u64;
        let mut over_budget = false;
        for shard in &self.shards {
            shard.with(|s| {
                slots += s.slots.len();
                let bytes: u64 = s.slots.iter().map(|slot| slot.cost).sum();
                debug_assert_eq!(bytes, s.bytes, "shard byte tally out of sync");
                slot_bytes += bytes;
                if s.bytes > self.shard_budget {
                    over_budget = true;
                }
            });
        }
        CacheAudit {
            slots,
            slot_bytes,
            resident_counter: self.resident.load(),
            over_budget,
            hits: self.hits.load(),
            misses: self.misses.load(),
            evictions: self.evictions.load(),
        }
    }
}

/// The write side of a sequence-keyed log: `n_shards` independently locked
/// append buffers, entries spread by `seq % n_shards` so consecutive
/// sequence numbers land on consecutive shards and writers only contend
/// when clients collide modulo the shard count at the same instant.
///
/// [`ShardedLogCore::snapshot`] merges the shards and sorts by the unique
/// sequence numbers — byte-identical to what a single-mutex log would have
/// recorded. The explorer's invariant: after every interleaving of
/// reserve-then-push writers, the snapshot's sequence numbers are exactly
/// `1..=n` with no gap and no duplicate.
pub struct ShardedLogCore<S: SyncFacade, T: Send> {
    shards: Vec<S::Mutex<Vec<(u64, T)>>>,
}

impl<S: SyncFacade, T: Send + Clone> ShardedLogCore<S, T> {
    /// Creates a log of `n_shards` shards.
    pub fn new(n_shards: usize) -> Self {
        ShardedLogCore {
            shards: (0..n_shards.max(1))
                .map(|_| S::Mutex::new(Vec::new()))
                .collect(),
        }
    }

    /// Appends one entry, locking only the shard `seq` maps to.
    pub fn push(&self, seq: u64, entry: T) {
        let shard = usize::try_from(seq).unwrap_or(usize::MAX) % self.shards.len();
        self.shards[shard].with(|buf| buf.push((seq, entry)));
    }

    /// Clears every shard.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.with(Vec::clear);
        }
    }

    /// Merges the shards into one seq-ascending snapshot. Sequence numbers
    /// are unique (reserved atomically before the push), so the order is
    /// total.
    pub fn snapshot(&self) -> Vec<(u64, T)> {
        let mut merged = Vec::new();
        for shard in &self.shards {
            shard.with(|buf| merged.extend(buf.iter().cloned()));
        }
        merged.sort_unstable_by_key(|(seq, _)| *seq);
        merged
    }
}

/// Atomic sequence numbering with optional rate-limit reservation: the
/// admission counter of `HiddenDb`.
///
/// The value returned by the increment *is* the log sequence number:
/// re-reading the counter after the increment would let concurrent
/// clients log duplicate or skipped sequence numbers — exactly the bug
/// the `racy` mutation re-introduces and the explorer detects.
pub struct SeqReserver<S: SyncFacade> {
    counter: S::AtomicU64,
    racy: bool,
}

impl<S: SyncFacade> SeqReserver<S> {
    /// Creates a reserver starting at zero. `racy` must be `false` outside
    /// the model checker (see the type docs).
    pub fn new(racy: bool) -> Self {
        SeqReserver {
            counter: S::AtomicU64::new(0),
            racy,
        }
    }

    /// Reserves the next sequence number (1-based). With a `limit`, the
    /// slot is reserved atomically *before* the bound check and rolled
    /// back on failure, so concurrent clients cannot exceed the limit;
    /// `Err(limit)` reports an exhausted budget.
    pub fn reserve(&self, limit: Option<u64>) -> Result<u64, u64> {
        if self.racy {
            // Seeded mutation: the reservation is a load + store pair, so
            // two threads can claim the same sequence number.
            let prev = self.counter.load();
            self.counter.store(prev + 1);
            if let Some(max) = limit {
                if prev >= max {
                    let cur = self.counter.load();
                    self.counter.store(cur.wrapping_sub(1));
                    return Err(max);
                }
            }
            return Ok(prev + 1);
        }
        match limit {
            Some(max) => {
                // Reserve a slot atomically so concurrent clients cannot
                // exceed the limit.
                let prev = self.counter.fetch_add(1);
                if prev >= max {
                    self.counter.fetch_sub(1);
                    Err(max)
                } else {
                    Ok(prev + 1)
                }
            }
            None => Ok(self.counter.fetch_add(1) + 1),
        }
    }

    /// Number of sequence numbers currently issued.
    pub fn issued(&self) -> u64 {
        self.counter.load()
    }

    /// Resets the counter to zero (stats reset).
    pub fn reset(&self) {
        self.counter.store(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::StdSync;

    #[test]
    fn clock_cache_second_chance() {
        // Budget of 3 one-cost slots in a single shard.
        let cache: ClockCacheCore<StdSync, u32, u32> = ClockCacheCore::new(1, 3, false);
        for key in 1..=3u32 {
            cache.insert(0, key, key * 10, 1);
        }
        // Fresh slots start referenced, so the first eviction pass clears
        // every bit on its first revolution and evicts the oldest slot
        // (key 1) on its second.
        cache.insert(0, 4, 40, 1);
        assert!(!cache.contains(0, 1));
        // Touch key 2: its referenced bit is the only one set now.
        assert_eq!(cache.get(0, 2), Some(20));
        // The next eviction must spare the just-referenced key 2 (its
        // second chance) and take the unreferenced key 3 instead —
        // without the `get` above, key 2 would have been the victim.
        cache.insert(0, 5, 50, 1);
        assert!(cache.contains(0, 2));
        assert!(!cache.contains(0, 3));
        assert!(cache.contains(0, 4));
        assert!(cache.contains(0, 5));
        let audit = cache.audit();
        assert_eq!(audit.evictions, 2);
        assert_eq!(audit.slot_bytes, audit.resident_counter);
        assert!(!audit.over_budget);
    }

    #[test]
    fn clock_cache_oversized_value_served_uncached() {
        let cache: ClockCacheCore<StdSync, u32, u32> = ClockCacheCore::new(2, 4, false);
        assert_eq!(cache.shard_budget(), 2);
        assert_eq!(cache.insert(0, 9, 99, 3), 99);
        assert!(!cache.contains(0, 9));
        assert_eq!(cache.audit().slots, 0);
    }

    #[test]
    fn clock_cache_duplicate_insert_returns_resident_copy() {
        let cache: ClockCacheCore<StdSync, u32, u32> = ClockCacheCore::new(1, 8, false);
        assert_eq!(cache.insert(0, 1, 10, 1), 10);
        assert_eq!(cache.insert(0, 1, 77, 1), 10);
        assert_eq!(cache.audit().slots, 1);
    }

    #[test]
    fn sharded_log_snapshot_sorts_by_seq() {
        let log: ShardedLogCore<StdSync, &'static str> = ShardedLogCore::new(4);
        log.push(3, "c");
        log.push(1, "a");
        log.push(2, "b");
        let snap = log.snapshot();
        assert_eq!(snap, vec![(1, "a"), (2, "b"), (3, "c")]);
        log.clear();
        assert!(log.snapshot().is_empty());
    }

    #[test]
    fn seq_reserver_respects_limit_and_rolls_back() {
        let seq: SeqReserver<StdSync> = SeqReserver::new(false);
        assert_eq!(seq.reserve(Some(2)), Ok(1));
        assert_eq!(seq.reserve(Some(2)), Ok(2));
        assert_eq!(seq.reserve(Some(2)), Err(2));
        // The failed reservation rolled back: the count stays at the limit.
        assert_eq!(seq.issued(), 2);
        seq.reset();
        assert_eq!(seq.reserve(None), Ok(1));
    }
}
