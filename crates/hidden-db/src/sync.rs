//! The sync facade: the tiny slice of `std::sync` that the concurrent
//! storage cores in [`crate::conc`] are generic over.
//!
//! Production code instantiates the cores with [`StdSync`], whose methods
//! are `#[inline]` pass-throughs to the real `std` primitives — the
//! abstraction compiles away entirely. The deterministic interleaving
//! explorer in the `skyweb-check` tool provides a second implementation
//! whose every operation is a scheduling yield point, which lets it
//! enumerate thread interleavings exhaustively and assert the cores'
//! invariants under each one.
//!
//! Only the operations the cores actually use are abstracted: relaxed
//! 64-bit counters and mutexes accessed through a closure. Keeping the
//! facade this small is what keeps the model checker's state space small.

/// A 64-bit atomic counter as the storage cores use one: all accesses are
/// relaxed (the counters are statistics and reservations, never used to
/// publish other memory).
pub trait FacadeAtomicU64: Send + Sync {
    /// Creates a counter holding `v`.
    fn new(v: u64) -> Self;
    /// Reads the current value (relaxed).
    fn load(&self) -> u64;
    /// Overwrites the value (relaxed).
    fn store(&self, v: u64);
    /// Atomically adds `v`, returning the previous value (relaxed).
    fn fetch_add(&self, v: u64) -> u64;
    /// Atomically subtracts `v`, returning the previous value (relaxed).
    fn fetch_sub(&self, v: u64) -> u64;
}

/// A mutex accessed through a closure, so implementations never expose a
/// guard type (which keeps the facade free of generic-associated-lifetime
/// plumbing and gives model implementations a single release point).
pub trait FacadeMutex<T>: Send + Sync {
    /// Creates a mutex holding `v`.
    fn new(v: T) -> Self;
    /// Runs `f` with the lock held.
    ///
    /// If a previous holder panicked, implementations continue with the
    /// poisoned state rather than propagating the panic: every core keeps
    /// its shard state self-consistent at each facade call boundary, so a
    /// poisoned shard is safe to keep serving (at worst a statistics
    /// counter is off by the interrupted operation).
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R;
}

/// Bundles the primitive family a concurrency core runs on.
pub trait SyncFacade: 'static {
    /// The facade's atomic 64-bit counter.
    type AtomicU64: FacadeAtomicU64;
    /// The facade's mutex around a `T`.
    type Mutex<T: Send>: FacadeMutex<T>;
}

impl FacadeAtomicU64 for std::sync::atomic::AtomicU64 {
    #[inline]
    fn new(v: u64) -> Self {
        std::sync::atomic::AtomicU64::new(v)
    }

    #[inline]
    fn load(&self) -> u64 {
        self.load(std::sync::atomic::Ordering::Relaxed)
    }

    #[inline]
    fn store(&self, v: u64) {
        self.store(v, std::sync::atomic::Ordering::Relaxed);
    }

    #[inline]
    fn fetch_add(&self, v: u64) -> u64 {
        self.fetch_add(v, std::sync::atomic::Ordering::Relaxed)
    }

    #[inline]
    fn fetch_sub(&self, v: u64) -> u64 {
        self.fetch_sub(v, std::sync::atomic::Ordering::Relaxed)
    }
}

impl<T: Send> FacadeMutex<T> for std::sync::Mutex<T> {
    #[inline]
    fn new(v: T) -> Self {
        std::sync::Mutex::new(v)
    }

    #[inline]
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        // Recover from poisoning instead of panicking: see the trait docs.
        let mut guard = self
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut guard)
    }
}

/// The production facade: zero-cost wrappers over the real `std::sync`
/// primitives.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdSync;

impl SyncFacade for StdSync {
    type AtomicU64 = std::sync::atomic::AtomicU64;
    type Mutex<T: Send> = std::sync::Mutex<T>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_facade_atomics_behave() {
        let a = <StdSync as SyncFacade>::AtomicU64::new(5);
        assert_eq!(FacadeAtomicU64::load(&a), 5);
        assert_eq!(FacadeAtomicU64::fetch_add(&a, 3), 5);
        assert_eq!(FacadeAtomicU64::fetch_sub(&a, 1), 8);
        FacadeAtomicU64::store(&a, 42);
        assert_eq!(FacadeAtomicU64::load(&a), 42);
    }

    #[test]
    fn std_facade_mutex_behaves() {
        let m = <StdSync as SyncFacade>::Mutex::<Vec<u32>>::new(vec![1]);
        m.with(|v| v.push(2));
        assert_eq!(m.with(|v| v.clone()), vec![1, 2]);
    }
}
