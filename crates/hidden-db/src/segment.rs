//! Persistent columnar segments: the on-disk form of a [`crate::HiddenDb`].
//!
//! Everything the indexed engine precomputes in RAM — the rank permutation,
//! its inverse, the rank-ordered columnar values with per-64-rank-block zone
//! maps, and the per-attribute posting lists with prefix counts — is built
//! once by [`SegmentWriter`] and persisted as independently checksummed
//! *sections*, so [`SegmentReader`] can serve queries straight off the file:
//!
//! * **Cold open is O(footer + eagerly-validated metadata)**, not O(n): the
//!   reader loads the fixed-size trailer, the footer (schema, ranker name,
//!   section directory), the zone maps and the posting prefix counts — a
//!   few hundred KB even at n = 10M — and nothing else.
//! * **Everything bulky hydrates lazily, per chunk.** Column values, the
//!   permutation, posting orders, tuple ids and the `Arc<Tuple>`s behind
//!   query responses materialize only when a query first touches their
//!   chunk (4096 values by default), and stay cached for the segment's
//!   lifetime. `Ranker::precompute` never runs on the load path.
//! * **Every byte is covered by a checksum.** Each section carries the PR 6
//!   envelope (magic + version + kind + length + FNV-1a 64 checksum); the
//!   directory is covered by the footer's envelope, and the trailer
//!   checksums itself. [`SegmentReader::verify`] performs the full O(file)
//!   scrub — every truncation and every single-bit flip of a segment is
//!   rejected with a typed [`SegmentError`], never a panic or a silent
//!   mis-read (pinned by the corruption battery in
//!   `tests/proptest_segment.rs`).
//!
//! Values are compressed with frame-of-reference + bit-packing: each block
//! of values stores its minimum and the per-value deltas at the smallest
//! sufficient bit width, which compresses both low-cardinality attribute
//! columns and the near-sequential tuple-id column well. The full layout is
//! specified in `docs/segment-format.md`.
//!
//! File access goes through one [`BlockSource`] trait with two shipped
//! implementations — positioned reads against a [`std::fs::File`]
//! ([`FileSource`]) and an in-memory byte buffer ([`MemSource`]) so tests
//! and the corruption battery run without touching a filesystem. A
//! memory-mapped source can slot in behind the same trait without touching
//! the reader (this crate forbids `unsafe`, so mmap itself stays out).

use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::path::Path;
use std::sync::{Arc, OnceLock};

use crate::index::BLOCK;
use crate::{AttributeRole, AttributeSpec, HiddenDb, InterfaceType, Schema, Tuple, TupleId, Value};

/// Magic bytes every segment section starts with (`b"SWSG"`).
pub const SEGMENT_MAGIC: [u8; 4] = *b"SWSG";

/// Magic bytes of the fixed-size trailer at the end of the file.
pub const TRAILER_MAGIC: [u8; 8] = *b"SWSGTAIL";

/// The segment format version this build writes and the only one it reads.
pub const SEGMENT_VERSION: u16 = 1;

/// Number of values per lazily-hydrated chunk (a multiple of the zone-map
/// block size, so one zone block never spans two chunks).
pub const DEFAULT_CHUNK: usize = 4096;

/// Size of the fixed trailer: magic (8) + footer offset (8) + footer length
/// (8) + FNV-1a 64 checksum of the preceding 24 bytes (8).
pub const TRAILER_LEN: usize = 32;

const HEADER_LEN: usize = 15;
const CHECKSUM_LEN: usize = 8;

/// Section kind: the footer (meta + directory).
const KIND_FOOTER: u8 = 1;
/// Section kind: zone maps (per-attribute per-block min/max), eager.
const KIND_ZONES: u8 = 2;
/// Section kind: one attribute's posting prefix counts, eager.
const KIND_STARTS: u8 = 3;
/// Section kind: one chunk of the rank permutation.
const KIND_PERM: u8 = 4;
/// Section kind: one chunk of the inverse permutation (store idx → rank).
const KIND_RANK_OF: u8 = 5;
/// Section kind: one chunk of one attribute's rank-ordered column.
const KIND_RANK_COL: u8 = 6;
/// Section kind: one chunk of one attribute's store-ordered column.
const KIND_STORE_COL: u8 = 7;
/// Section kind: one chunk of one attribute's posting order.
const KIND_ORDER: u8 = 8;
/// Section kind: one chunk of the tuple ids (u64).
const KIND_IDS: u8 = 9;

fn kind_name(kind: u8) -> &'static str {
    match kind {
        KIND_FOOTER => "footer",
        KIND_ZONES => "zones",
        KIND_STARTS => "starts",
        KIND_PERM => "perm",
        KIND_RANK_OF => "rank-of",
        KIND_RANK_COL => "rank-col",
        KIND_STORE_COL => "store-col",
        KIND_ORDER => "order",
        KIND_IDS => "ids",
        _ => "unknown",
    }
}

/// Why a segment was rejected (or a lazy block failed to load). A corrupted,
/// truncated or foreign file always surfaces as one of these — it is never
/// silently mis-read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// The underlying [`BlockSource`] failed (file system error).
    Io {
        /// The I/O error kind.
        kind: std::io::ErrorKind,
        /// Human-readable detail from the OS error.
        detail: String,
    },
    /// The file (or a section) ends before the structure it claims to carry.
    Truncated,
    /// A section does not start with [`SEGMENT_MAGIC`] (or the trailer does
    /// not start with [`TRAILER_MAGIC`]).
    BadMagic,
    /// The segment was written by an unknown format version.
    UnsupportedVersion {
        /// The version found in the section header.
        found: u16,
    },
    /// A section carries a different kind than the directory claims.
    WrongKind {
        /// The kind the directory (or trailer walk) expected.
        expected: u8,
        /// The kind found in the section header.
        found: u8,
    },
    /// A checksum does not match: the bytes were corrupted.
    ChecksumMismatch,
    /// A section payload decoded cleanly but left unconsumed bytes behind.
    TrailingBytes,
    /// The bytes parse but describe an inconsistent segment (bad directory
    /// geometry, out-of-range values, wrong chunk lengths, ...).
    Malformed {
        /// What was inconsistent.
        detail: String,
    },
    /// The segment was written under a different ranking function than the
    /// one supplied to [`crate::HiddenDb::open_segment`].
    RankerMismatch {
        /// The ranker name recorded in the segment.
        expected: String,
        /// The name of the ranker the caller supplied.
        found: String,
    },
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::Io { kind, detail } => {
                write!(f, "segment I/O error ({kind:?}): {detail}")
            }
            SegmentError::Truncated => write!(f, "segment is truncated"),
            SegmentError::BadMagic => write!(f, "bad magic: not a skyweb segment"),
            SegmentError::UnsupportedVersion { found } => write!(
                f,
                "unsupported segment version {found} (supported: {SEGMENT_VERSION})"
            ),
            SegmentError::WrongKind { expected, found } => write!(
                f,
                "wrong section kind {found} (expected {expected} = {})",
                kind_name(*expected)
            ),
            SegmentError::ChecksumMismatch => {
                write!(f, "segment checksum mismatch: corrupted bytes")
            }
            SegmentError::TrailingBytes => {
                write!(f, "section payload left trailing bytes unconsumed")
            }
            SegmentError::Malformed { detail } => write!(f, "malformed segment: {detail}"),
            SegmentError::RankerMismatch { expected, found } => write!(
                f,
                "segment was written under ranker '{expected}' but '{found}' was supplied"
            ),
        }
    }
}

impl std::error::Error for SegmentError {}

impl From<std::io::Error> for SegmentError {
    fn from(e: std::io::Error) -> Self {
        SegmentError::Io {
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

fn malformed(detail: impl Into<String>) -> SegmentError {
    SegmentError::Malformed {
        detail: detail.into(),
    }
}

/// FNV-1a 64-bit hash — the same corruption detector the checkpoint codec
/// uses.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Random-access byte source a segment is read through.
///
/// The reader only ever issues positioned reads of whole sections, so any
/// backend that can serve `read_exact_at` works: a file ([`FileSource`]), a
/// byte buffer ([`MemSource`]), or — behind the same trait, without touching
/// the reader — a memory map or a remote block store.
pub trait BlockSource: Send + Sync {
    /// Total number of bytes in the source.
    fn len(&self) -> u64;

    /// `true` if the source holds no bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fills `buf` from the bytes at `offset`, failing (never short-reading)
    /// if the range is out of bounds.
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), SegmentError>;
}

/// A [`BlockSource`] over an opened file, using positioned reads (no shared
/// cursor, so concurrent sessions never serialize on a seek).
pub struct FileSource {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: std::sync::Mutex<File>,
    len: u64,
}

impl FileSource {
    /// Opens `path` read-only.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SegmentError> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        #[cfg(not(unix))]
        let file = std::sync::Mutex::new(file);
        Ok(FileSource { file, len })
    }
}

impl BlockSource for FileSource {
    fn len(&self) -> u64 {
        self.len
    }

    #[cfg(unix)]
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), SegmentError> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset)?;
        Ok(())
    }

    #[cfg(not(unix))]
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), SegmentError> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = self.file.lock().expect("file source poisoned");
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)?;
        Ok(())
    }
}

/// A [`BlockSource`] over an in-memory byte buffer — how the differential
/// and corruption test suites exercise the full reader without a filesystem.
#[derive(Clone)]
pub struct MemSource {
    bytes: Arc<[u8]>,
}

impl MemSource {
    /// Wraps owned bytes.
    pub fn new(bytes: Vec<u8>) -> Self {
        MemSource {
            bytes: bytes.into(),
        }
    }
}

impl BlockSource for MemSource {
    fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), SegmentError> {
        let start = usize::try_from(offset).map_err(|_| SegmentError::Truncated)?;
        let end = start
            .checked_add(buf.len())
            .ok_or(SegmentError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SegmentError::Truncated);
        }
        buf.copy_from_slice(&self.bytes[start..end]);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Envelope + payload primitives
// ---------------------------------------------------------------------------

/// Wraps `payload` in the magic/version/kind/length/checksum envelope (the
/// PR 6 checkpoint-codec idiom, under the segment's own magic).
fn seal(kind: u8, payload: &[u8], out: &mut Vec<u8>) {
    out.reserve(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
}

/// Validates the envelope of one section and returns its payload slice.
/// Every layer is checked in order — magic, version, kind, exact length,
/// checksum — before a single payload byte is interpreted.
fn open_envelope(bytes: &[u8], expected_kind: u8) -> Result<&[u8], SegmentError> {
    if bytes.len() < 4 {
        return Err(SegmentError::Truncated);
    }
    if bytes[..4] != SEGMENT_MAGIC {
        return Err(SegmentError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(SegmentError::Truncated);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != SEGMENT_VERSION {
        return Err(SegmentError::UnsupportedVersion { found: version });
    }
    let kind = bytes[6];
    if kind != expected_kind {
        return Err(SegmentError::WrongKind {
            expected: expected_kind,
            found: kind,
        });
    }
    let len = u64::from_le_bytes(bytes[7..15].try_into().expect("8 header bytes"));
    let Ok(len) = usize::try_from(len) else {
        return Err(SegmentError::Truncated);
    };
    let Some(total) = HEADER_LEN
        .checked_add(len)
        .and_then(|n| n.checked_add(CHECKSUM_LEN))
    else {
        return Err(SegmentError::Truncated);
    };
    if bytes.len() < total {
        return Err(SegmentError::Truncated);
    }
    if bytes.len() > total {
        return Err(SegmentError::TrailingBytes);
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + len];
    let stored = u64::from_le_bytes(bytes[total - CHECKSUM_LEN..].try_into().expect("8 bytes"));
    if fnv1a64(payload) != stored {
        return Err(SegmentError::ChecksumMismatch);
    }
    Ok(payload)
}

/// A bounds-checked cursor over a section payload; every read surfaces
/// [`SegmentError::Truncated`] instead of panicking.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SegmentError> {
        let end = self.pos.checked_add(n).ok_or(SegmentError::Truncated)?;
        if end > self.buf.len() {
            return Err(SegmentError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SegmentError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SegmentError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SegmentError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn usize(&mut self) -> Result<usize, SegmentError> {
        usize::try_from(self.u64()?).map_err(|_| SegmentError::Truncated)
    }

    fn string(&mut self) -> Result<String, SegmentError> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed("non-UTF-8 string"))
    }

    fn finish(&self) -> Result<(), SegmentError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SegmentError::TrailingBytes)
        }
    }
}

fn write_string(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

// Frame-of-reference + bit-packing: `count (u32) · min · width (u8) · packed
// little-endian u64 words`. Deltas from the block minimum are packed at the
// smallest sufficient width, low bits first.

fn pack_u64s(values: &[u64], out: &mut Vec<u8>) {
    let min = values.iter().copied().min().unwrap_or(0);
    let spread = values.iter().copied().max().unwrap_or(0) - min;
    let width = if spread == 0 {
        0u32
    } else {
        64 - spread.leading_zeros()
    };
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    out.extend_from_slice(&min.to_le_bytes());
    out.push(width as u8);
    if width == 0 {
        return;
    }
    let mut acc: u128 = 0;
    let mut used: u32 = 0;
    for &v in values {
        acc |= u128::from(v - min) << used;
        used += width;
        while used >= 64 {
            out.extend_from_slice(&((acc & u128::from(u64::MAX)) as u64).to_le_bytes());
            acc >>= 64;
            used -= 64;
        }
    }
    if used > 0 {
        out.extend_from_slice(&((acc & u128::from(u64::MAX)) as u64).to_le_bytes());
    }
}

fn pack_u32s(values: &[u32], out: &mut Vec<u8>) {
    let min = values.iter().copied().min().unwrap_or(0);
    let spread = values.iter().copied().max().unwrap_or(0) - min;
    let width = if spread == 0 {
        0u32
    } else {
        32 - spread.leading_zeros()
    };
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    out.extend_from_slice(&min.to_le_bytes());
    out.push(width as u8);
    if width == 0 {
        return;
    }
    let mut acc: u128 = 0;
    let mut used: u32 = 0;
    for &v in values {
        acc |= u128::from(v - min) << used;
        used += width;
        while used >= 64 {
            out.extend_from_slice(&((acc & u128::from(u64::MAX)) as u64).to_le_bytes());
            acc >>= 64;
            used -= 64;
        }
    }
    if used > 0 {
        out.extend_from_slice(&((acc & u128::from(u64::MAX)) as u64).to_le_bytes());
    }
}

fn unpack_u64s(cur: &mut Cursor<'_>) -> Result<Vec<u64>, SegmentError> {
    let count = cur.u32()? as usize;
    let min = cur.u64()?;
    let width = u32::from(cur.u8()?);
    if width > 64 {
        return Err(malformed(format!("bit width {width} > 64")));
    }
    if width == 0 {
        return Ok(vec![min; count]);
    }
    let words = (count as u64 * u64::from(width)).div_ceil(64) as usize;
    let bytes = cur.take(words * 8)?;
    let mask: u128 = (1u128 << width) - 1;
    let mut out = Vec::with_capacity(count);
    let mut acc: u128 = 0;
    let mut used: u32 = 0;
    let mut word = 0usize;
    for _ in 0..count {
        while used < width {
            let w = u64::from_le_bytes(bytes[word * 8..word * 8 + 8].try_into().expect("8 bytes"));
            acc |= u128::from(w) << used;
            word += 1;
            used += 64;
        }
        let delta = (acc & mask) as u64;
        acc >>= width;
        used -= width;
        let v = min
            .checked_add(delta)
            .ok_or_else(|| malformed("packed value overflows u64"))?;
        out.push(v);
    }
    Ok(out)
}

fn unpack_u32s(cur: &mut Cursor<'_>) -> Result<Vec<u32>, SegmentError> {
    let count = cur.u32()? as usize;
    let min = cur.u32()?;
    let width = u32::from(cur.u8()?);
    if width > 32 {
        return Err(malformed(format!("bit width {width} > 32")));
    }
    if width == 0 {
        return Ok(vec![min; count]);
    }
    let words = (count as u64 * u64::from(width)).div_ceil(64) as usize;
    let bytes = cur.take(words * 8)?;
    let mask: u128 = (1u128 << width) - 1;
    let mut out = Vec::with_capacity(count);
    let mut acc: u128 = 0;
    let mut used: u32 = 0;
    let mut word = 0usize;
    for _ in 0..count {
        while used < width {
            let w = u64::from_le_bytes(bytes[word * 8..word * 8 + 8].try_into().expect("8 bytes"));
            acc |= u128::from(w) << used;
            word += 1;
            used += 64;
        }
        let delta = (acc & mask) as u64;
        acc >>= width;
        used -= width;
        let v = u64::from(min)
            .checked_add(delta)
            .filter(|&v| v <= u64::from(u32::MAX))
            .ok_or_else(|| malformed("packed value overflows u32"))?;
        out.push(v as u32);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Directory
// ---------------------------------------------------------------------------

/// One directory entry: where a section lives in the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DirEntry {
    kind: u8,
    attr: u32,
    chunk: u32,
    offset: u64,
    len: u64,
}

fn interface_tag(i: InterfaceType) -> u8 {
    match i {
        InterfaceType::Sq => 0,
        InterfaceType::Rq => 1,
        InterfaceType::Pq => 2,
    }
}

fn interface_from_tag(tag: u8) -> Result<InterfaceType, SegmentError> {
    match tag {
        0 => Ok(InterfaceType::Sq),
        1 => Ok(InterfaceType::Rq),
        2 => Ok(InterfaceType::Pq),
        t => Err(malformed(format!("undefined interface tag {t}"))),
    }
}

fn role_tag(r: AttributeRole) -> u8 {
    match r {
        AttributeRole::Ranking => 0,
        AttributeRole::Filtering => 1,
    }
}

fn role_from_tag(tag: u8) -> Result<AttributeRole, SegmentError> {
    match tag {
        0 => Ok(AttributeRole::Ranking),
        1 => Ok(AttributeRole::Filtering),
        t => Err(malformed(format!("undefined role tag {t}"))),
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Serializes a RAM-built [`crate::HiddenDb`] (store + query index) into the
/// columnar segment format. Output is deterministic: the same database
/// always produces the same bytes.
#[derive(Debug, Clone)]
pub struct SegmentWriter {
    chunk: usize,
}

impl Default for SegmentWriter {
    fn default() -> Self {
        SegmentWriter::new()
    }
}

impl SegmentWriter {
    /// A writer with the default chunk size ([`DEFAULT_CHUNK`]).
    pub fn new() -> Self {
        SegmentWriter {
            chunk: DEFAULT_CHUNK,
        }
    }

    /// Overrides the chunk size (values per lazily-hydrated section).
    ///
    /// # Panics
    /// Panics unless `chunk` is a positive multiple of the zone-map block
    /// size (64).
    pub fn with_chunk_size(mut self, chunk: usize) -> Self {
        assert!(
            chunk > 0 && chunk.is_multiple_of(BLOCK),
            "chunk size must be a positive multiple of {BLOCK}"
        );
        self.chunk = chunk;
        self
    }

    /// Serializes `db` into segment bytes. Fails if `db` is itself
    /// segment-backed (re-export is not supported; write from the RAM build
    /// that produced the segment).
    pub fn write(&self, db: &HiddenDb) -> Result<Vec<u8>, SegmentError> {
        let store = db.store();
        let index = db.index();
        let Some(ram) = index.ram() else {
            return Err(malformed(
                "cannot re-write a segment-backed database; write from the RAM build",
            ));
        };
        let schema = db.schema();
        let n = store.len();
        let m = schema.len();
        let chunks = n.div_ceil(self.chunk);
        let slice = store.as_slice();
        let chunk_range = |c: usize| c * self.chunk..(c * self.chunk + self.chunk).min(n);

        let mut file: Vec<u8> = Vec::new();
        let mut dir: Vec<DirEntry> = Vec::new();
        let mut payload: Vec<u8> = Vec::new();
        let push = |file: &mut Vec<u8>,
                    dir: &mut Vec<DirEntry>,
                    kind: u8,
                    attr: u32,
                    chunk: u32,
                    payload: &[u8]| {
            let offset = file.len() as u64;
            seal(kind, payload, file);
            dir.push(DirEntry {
                kind,
                attr,
                chunk,
                offset,
                len: (file.len() as u64) - offset,
            });
        };

        // Store-ordered columns, one section per (attribute, chunk).
        let mut col: Vec<u32> = Vec::with_capacity(self.chunk);
        for attr in 0..m {
            for c in 0..chunks {
                col.clear();
                col.extend(slice[chunk_range(c)].iter().map(|t| t.values[attr]));
                payload.clear();
                pack_u32s(&col, &mut payload);
                push(
                    &mut file,
                    &mut dir,
                    KIND_STORE_COL,
                    attr as u32,
                    c as u32,
                    &payload,
                );
            }
        }
        // Tuple ids.
        let mut ids: Vec<u64> = Vec::with_capacity(self.chunk);
        for c in 0..chunks {
            ids.clear();
            ids.extend(slice[chunk_range(c)].iter().map(|t| t.id));
            payload.clear();
            pack_u64s(&ids, &mut payload);
            push(&mut file, &mut dir, KIND_IDS, 0, c as u32, &payload);
        }
        // Posting prefix counts (eager) and posting orders (lazy chunks).
        for attr in 0..m {
            payload.clear();
            pack_u32s(ram.posting_starts(attr), &mut payload);
            push(&mut file, &mut dir, KIND_STARTS, attr as u32, 0, &payload);
        }
        for attr in 0..m {
            let order = ram.posting_order(attr);
            for c in 0..chunks {
                payload.clear();
                pack_u32s(&order[chunk_range(c)], &mut payload);
                push(
                    &mut file,
                    &mut dir,
                    KIND_ORDER,
                    attr as u32,
                    c as u32,
                    &payload,
                );
            }
        }
        // Rank-order structures, only when the ranker exposes a total order.
        let has_perm = ram.perm().is_some();
        if let Some(perm) = ram.perm() {
            for c in 0..chunks {
                payload.clear();
                pack_u32s(&perm[chunk_range(c)], &mut payload);
                push(&mut file, &mut dir, KIND_PERM, 0, c as u32, &payload);
            }
            for c in 0..chunks {
                payload.clear();
                pack_u32s(&ram.rank_of()[chunk_range(c)], &mut payload);
                push(&mut file, &mut dir, KIND_RANK_OF, 0, c as u32, &payload);
            }
            for attr in 0..m {
                let col = ram.rank_col(attr);
                for c in 0..chunks {
                    payload.clear();
                    pack_u32s(&col[chunk_range(c)], &mut payload);
                    push(
                        &mut file,
                        &mut dir,
                        KIND_RANK_COL,
                        attr as u32,
                        c as u32,
                        &payload,
                    );
                }
            }
            payload.clear();
            for attr in 0..m {
                pack_u32s(ram.zone_mins(attr), &mut payload);
                pack_u32s(ram.zone_maxs(attr), &mut payload);
            }
            push(&mut file, &mut dir, KIND_ZONES, 0, 0, &payload);
        }

        // Footer: meta + directory, itself an enveloped section.
        payload.clear();
        payload.extend_from_slice(&(n as u64).to_le_bytes());
        payload.extend_from_slice(&(db.k() as u64).to_le_bytes());
        payload.extend_from_slice(&(self.chunk as u32).to_le_bytes());
        payload.extend_from_slice(&(BLOCK as u32).to_le_bytes());
        payload.push(u8::from(has_perm));
        write_string(db.ranker_name(), &mut payload);
        payload.extend_from_slice(&(m as u64).to_le_bytes());
        for spec in schema.attrs() {
            write_string(&spec.name, &mut payload);
            payload.extend_from_slice(&spec.domain_size.to_le_bytes());
            payload.push(interface_tag(spec.interface));
            payload.push(role_tag(spec.role));
        }
        payload.extend_from_slice(&(dir.len() as u64).to_le_bytes());
        for e in &dir {
            payload.push(e.kind);
            payload.extend_from_slice(&e.attr.to_le_bytes());
            payload.extend_from_slice(&e.chunk.to_le_bytes());
            payload.extend_from_slice(&e.offset.to_le_bytes());
            payload.extend_from_slice(&e.len.to_le_bytes());
        }
        let footer_off = file.len() as u64;
        seal(KIND_FOOTER, &payload, &mut file);
        let footer_len = file.len() as u64 - footer_off;

        // Fixed trailer: how a reader finds the footer from the end.
        let mut trailer = [0u8; TRAILER_LEN];
        trailer[..8].copy_from_slice(&TRAILER_MAGIC);
        trailer[8..16].copy_from_slice(&footer_off.to_le_bytes());
        trailer[16..24].copy_from_slice(&footer_len.to_le_bytes());
        let check = fnv1a64(&trailer[..24]);
        trailer[24..32].copy_from_slice(&check.to_le_bytes());
        file.extend_from_slice(&trailer);
        Ok(file)
    }

    /// Serializes `db` and writes the bytes to `path`, returning the file
    /// size in bytes.
    pub fn write_to_path(
        &self,
        db: &HiddenDb,
        path: impl AsRef<Path>,
    ) -> Result<u64, SegmentError> {
        let bytes = self.write(db)?;
        std::fs::write(path, &bytes)?;
        Ok(bytes.len() as u64)
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Per-chunk lazy cache: each cell hydrates at most once and stays resident
/// for the reader's lifetime.
struct ChunkCache<T> {
    cells: Vec<OnceLock<Box<[T]>>>,
}

impl<T> ChunkCache<T> {
    fn new(chunks: usize) -> Self {
        let mut cells = Vec::with_capacity(chunks);
        cells.resize_with(chunks, OnceLock::new);
        ChunkCache { cells }
    }

    fn empty() -> Self {
        ChunkCache { cells: Vec::new() }
    }
}

/// A lazily-hydrating view over one persisted segment.
///
/// [`SegmentReader::open`] validates the trailer, footer, directory and the
/// eager metadata (zone maps, posting prefix counts) — O(footer), not O(n).
/// Everything else loads per chunk on first touch, each load re-validating
/// its section's envelope and checksum. [`SegmentReader::verify`] is the
/// full O(file) scrub used by the corruption battery and by operators who
/// want end-to-end assurance before serving.
pub struct SegmentReader {
    source: Box<dyn BlockSource>,
    n: usize,
    k: usize,
    chunk: usize,
    has_perm: bool,
    ranker_name: String,
    schema: Schema,
    dir: Vec<DirEntry>,
    by_key: HashMap<(u8, u32, u32), usize>,
    footer_off: u64,
    footer_len: u64,
    zone_mins: Vec<Vec<Value>>,
    zone_maxs: Vec<Vec<Value>>,
    starts: Vec<Vec<u32>>,
    perm: ChunkCache<u32>,
    rank_of: ChunkCache<u32>,
    rank_cols: Vec<ChunkCache<u32>>,
    store_cols: Vec<ChunkCache<u32>>,
    order: Vec<ChunkCache<u32>>,
    ids: ChunkCache<u64>,
    tuples: Vec<OnceLock<Box<[Arc<Tuple>]>>>,
    full: OnceLock<Box<[Arc<Tuple>]>>,
}

impl fmt::Debug for SegmentReader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SegmentReader")
            .field("n", &self.n)
            .field("k", &self.k)
            .field("chunk", &self.chunk)
            .field("has_perm", &self.has_perm)
            .field("ranker", &self.ranker_name)
            .field("bytes", &self.source.len())
            .finish()
    }
}

impl SegmentReader {
    /// Opens a segment from `path` through a [`FileSource`].
    pub fn open_path(path: impl AsRef<Path>) -> Result<Self, SegmentError> {
        Self::open(Box::new(FileSource::open(path)?))
    }

    /// Opens a segment from any [`BlockSource`]: validates the trailer, the
    /// footer (meta + section directory) and the eager metadata sections,
    /// leaving every bulky section untouched until a query needs it.
    pub fn open(source: Box<dyn BlockSource>) -> Result<Self, SegmentError> {
        let file_len = source.len();
        if file_len < TRAILER_LEN as u64 {
            return Err(SegmentError::Truncated);
        }
        let mut trailer = [0u8; TRAILER_LEN];
        source.read_exact_at(file_len - TRAILER_LEN as u64, &mut trailer)?;
        if trailer[..8] != TRAILER_MAGIC {
            return Err(SegmentError::BadMagic);
        }
        let stored = u64::from_le_bytes(trailer[24..32].try_into().expect("8 bytes"));
        if fnv1a64(&trailer[..24]) != stored {
            return Err(SegmentError::ChecksumMismatch);
        }
        let footer_off = u64::from_le_bytes(trailer[8..16].try_into().expect("8 bytes"));
        let footer_len = u64::from_le_bytes(trailer[16..24].try_into().expect("8 bytes"));
        if footer_off
            .checked_add(footer_len)
            .is_none_or(|end| end != file_len - TRAILER_LEN as u64)
        {
            return Err(malformed("footer does not end at the trailer"));
        }
        let mut footer =
            vec![0u8; usize::try_from(footer_len).map_err(|_| SegmentError::Truncated)?];
        source.read_exact_at(footer_off, &mut footer)?;
        let payload = open_envelope(&footer, KIND_FOOTER)?;
        let mut cur = Cursor::new(payload);

        let n = usize::try_from(cur.u64()?).map_err(|_| SegmentError::Truncated)?;
        if n > u32::MAX as usize {
            return Err(malformed("n exceeds u32 index space"));
        }
        let k = usize::try_from(cur.u64()?).map_err(|_| SegmentError::Truncated)?;
        if k == 0 {
            return Err(malformed("k must be >= 1"));
        }
        let chunk = cur.u32()? as usize;
        if chunk == 0 || !chunk.is_multiple_of(BLOCK) {
            return Err(malformed(format!(
                "chunk size {chunk} is not a positive multiple of {BLOCK}"
            )));
        }
        let block = cur.u32()? as usize;
        if block != BLOCK {
            return Err(malformed(format!(
                "zone block size {block} differs from engine block size {BLOCK}"
            )));
        }
        let has_perm = match cur.u8()? {
            0 => false,
            1 => true,
            t => return Err(malformed(format!("undefined has-perm flag {t}"))),
        };
        let ranker_name = cur.string()?;
        let m = usize::try_from(cur.u64()?).map_err(|_| SegmentError::Truncated)?;
        let mut attrs = Vec::with_capacity(m.min(1 << 16));
        for _ in 0..m {
            let name = cur.string()?;
            let domain_size = cur.u32()?;
            let interface = interface_from_tag(cur.u8()?)?;
            let role = role_from_tag(cur.u8()?)?;
            attrs.push(AttributeSpec {
                name,
                domain_size,
                interface,
                role,
            });
        }
        let schema = Schema::new(attrs);
        let dir_len = usize::try_from(cur.u64()?).map_err(|_| SegmentError::Truncated)?;
        let mut dir = Vec::with_capacity(dir_len.min(1 << 20));
        for _ in 0..dir_len {
            let kind = cur.u8()?;
            let attr = cur.u32()?;
            let chunk_no = cur.u32()?;
            let offset = cur.u64()?;
            let len = cur.u64()?;
            dir.push(DirEntry {
                kind,
                attr,
                chunk: chunk_no,
                offset,
                len,
            });
        }
        cur.finish()?;

        let chunks = n.div_ceil(chunk);
        let mut by_key = HashMap::with_capacity(dir.len());
        for (i, e) in dir.iter().enumerate() {
            let (max_attr, max_chunk) = match e.kind {
                KIND_ZONES => (1, 1),
                KIND_STARTS => (m, 1),
                KIND_PERM | KIND_RANK_OF | KIND_IDS => (1, chunks),
                KIND_RANK_COL | KIND_STORE_COL | KIND_ORDER => (m, chunks),
                k => {
                    return Err(malformed(format!(
                        "undefined section kind {k} in directory"
                    )))
                }
            };
            if (e.attr as usize) >= max_attr || (e.chunk as usize) >= max_chunk {
                return Err(malformed(format!(
                    "directory entry {}[attr {}, chunk {}] out of range",
                    kind_name(e.kind),
                    e.attr,
                    e.chunk
                )));
            }
            if e.offset
                .checked_add(e.len)
                .is_none_or(|end| end > footer_off)
            {
                return Err(malformed(format!(
                    "section {}[{}, {}] extends past the footer",
                    kind_name(e.kind),
                    e.attr,
                    e.chunk
                )));
            }
            if by_key.insert((e.kind, e.attr, e.chunk), i).is_some() {
                return Err(malformed(format!(
                    "duplicate directory entry {}[{}, {}]",
                    kind_name(e.kind),
                    e.attr,
                    e.chunk
                )));
            }
        }
        // Completeness: every section a query could touch must exist, so
        // lazy loads only ever fail on I/O errors or corrupted bytes.
        let expect = |by_key: &HashMap<(u8, u32, u32), usize>,
                      kind: u8,
                      attr: u32,
                      chunk_no: u32|
         -> Result<(), SegmentError> {
            if by_key.contains_key(&(kind, attr, chunk_no)) {
                Ok(())
            } else {
                Err(malformed(format!(
                    "missing section {}[attr {attr}, chunk {chunk_no}]",
                    kind_name(kind)
                )))
            }
        };
        for a in 0..m as u32 {
            expect(&by_key, KIND_STARTS, a, 0)?;
            for c in 0..chunks as u32 {
                expect(&by_key, KIND_STORE_COL, a, c)?;
                expect(&by_key, KIND_ORDER, a, c)?;
                if has_perm {
                    expect(&by_key, KIND_RANK_COL, a, c)?;
                }
            }
        }
        for c in 0..chunks as u32 {
            expect(&by_key, KIND_IDS, 0, c)?;
            if has_perm {
                expect(&by_key, KIND_PERM, 0, c)?;
                expect(&by_key, KIND_RANK_OF, 0, c)?;
            }
        }
        if has_perm {
            expect(&by_key, KIND_ZONES, 0, 0)?;
        }

        let mut reader = SegmentReader {
            source,
            n,
            k,
            chunk,
            has_perm,
            ranker_name,
            schema,
            dir,
            by_key,
            footer_off,
            footer_len,
            zone_mins: Vec::new(),
            zone_maxs: Vec::new(),
            starts: Vec::new(),
            perm: ChunkCache::new(if has_perm { chunks } else { 0 }),
            rank_of: ChunkCache::new(if has_perm { chunks } else { 0 }),
            rank_cols: (0..m)
                .map(|_| {
                    if has_perm {
                        ChunkCache::new(chunks)
                    } else {
                        ChunkCache::empty()
                    }
                })
                .collect(),
            store_cols: (0..m).map(|_| ChunkCache::new(chunks)).collect(),
            order: (0..m).map(|_| ChunkCache::new(chunks)).collect(),
            ids: ChunkCache::new(chunks),
            tuples: {
                let mut v = Vec::with_capacity(chunks);
                v.resize_with(chunks, OnceLock::new);
                v
            },
            full: OnceLock::new(),
        };

        // Eager metadata: posting prefix counts + zone maps. These are what
        // planning and block skipping consult on every query, and they are
        // small (O(domain + n/64) values per attribute).
        let blocks = n.div_ceil(BLOCK);
        for attr in 0..m {
            let e = reader.entry(KIND_STARTS, attr as u32, 0)?;
            let bytes = reader.read_entry(e)?;
            let payload = open_envelope(&bytes, KIND_STARTS)?;
            let mut cur = Cursor::new(payload);
            let starts = unpack_u32s(&mut cur)?;
            cur.finish()?;
            let d = reader.schema.attr(attr).domain_size as usize;
            if starts.len() != d + 1 {
                return Err(malformed(format!(
                    "starts[{attr}] has {} entries, expected {}",
                    starts.len(),
                    d + 1
                )));
            }
            if starts.first() != Some(&0)
                || starts.windows(2).any(|w| w[0] > w[1])
                || starts.last().copied() != Some(n as u32)
            {
                return Err(malformed(format!(
                    "starts[{attr}] is not a nondecreasing prefix-count table over n"
                )));
            }
            reader.starts.push(starts);
        }
        if has_perm {
            let e = reader.entry(KIND_ZONES, 0, 0)?;
            let bytes = reader.read_entry(e)?;
            let payload = open_envelope(&bytes, KIND_ZONES)?;
            let mut cur = Cursor::new(payload);
            for attr in 0..m {
                let mins = unpack_u32s(&mut cur)?;
                let maxs = unpack_u32s(&mut cur)?;
                if mins.len() != blocks || maxs.len() != blocks {
                    return Err(malformed(format!(
                        "zones[{attr}] cover {} blocks, expected {blocks}",
                        mins.len().max(maxs.len())
                    )));
                }
                reader.zone_mins.push(mins);
                reader.zone_maxs.push(maxs);
            }
            cur.finish()?;
        }
        Ok(reader)
    }

    // -- meta accessors ----------------------------------------------------

    /// Number of tuples in the segment.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The top-k constraint recorded at write time.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The schema recorded at write time.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Name of the ranking function the segment was written under.
    pub fn ranker_name(&self) -> &str {
        &self.ranker_name
    }

    /// `true` if the segment persists a rank permutation (the writing
    /// ranker exposed a deterministic total order).
    pub fn has_perm(&self) -> bool {
        self.has_perm
    }

    /// Values per lazily-hydrated chunk.
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    /// Total size of the backing source in bytes.
    pub fn bytes_on_disk(&self) -> u64 {
        self.source.len()
    }

    fn chunks(&self) -> usize {
        self.n.div_ceil(self.chunk)
    }

    fn chunk_len(&self, c: usize) -> usize {
        self.chunk.min(self.n - c * self.chunk)
    }

    // -- section plumbing --------------------------------------------------

    fn entry(&self, kind: u8, attr: u32, chunk: u32) -> Result<DirEntry, SegmentError> {
        self.by_key
            .get(&(kind, attr, chunk))
            .map(|&i| self.dir[i])
            .ok_or_else(|| {
                malformed(format!(
                    "missing section {}[attr {attr}, chunk {chunk}]",
                    kind_name(kind)
                ))
            })
    }

    fn read_entry(&self, e: DirEntry) -> Result<Vec<u8>, SegmentError> {
        let len = usize::try_from(e.len).map_err(|_| SegmentError::Truncated)?;
        let mut buf = vec![0u8; len];
        self.source.read_exact_at(e.offset, &mut buf)?;
        Ok(buf)
    }

    fn decode_u32_chunk(
        &self,
        kind: u8,
        attr: u32,
        c: usize,
        expected_len: usize,
    ) -> Result<Vec<u32>, SegmentError> {
        let e = self.entry(kind, attr, c as u32)?;
        let bytes = self.read_entry(e)?;
        let payload = open_envelope(&bytes, kind)?;
        let mut cur = Cursor::new(payload);
        let vals = unpack_u32s(&mut cur)?;
        cur.finish()?;
        if vals.len() != expected_len {
            return Err(malformed(format!(
                "section {}[{attr}, {c}] holds {} values, expected {expected_len}",
                kind_name(kind),
                vals.len()
            )));
        }
        Ok(vals)
    }

    fn u32_chunk<'a>(
        &'a self,
        cache: &'a ChunkCache<u32>,
        kind: u8,
        attr: u32,
        c: usize,
    ) -> Result<&'a [u32], SegmentError> {
        if let Some(v) = cache.cells[c].get() {
            return Ok(v);
        }
        let vals = self.decode_u32_chunk(kind, attr, c, self.chunk_len(c))?;
        // A concurrent hydration of the same chunk merely wastes one decode;
        // whoever loses the race drops its copy.
        Ok(cache.cells[c].get_or_init(|| vals.into_boxed_slice()))
    }

    fn ids_chunk(&self, c: usize) -> Result<&[u64], SegmentError> {
        if let Some(v) = self.ids.cells[c].get() {
            return Ok(v);
        }
        let e = self.entry(KIND_IDS, 0, c as u32)?;
        let bytes = self.read_entry(e)?;
        let payload = open_envelope(&bytes, KIND_IDS)?;
        let mut cur = Cursor::new(payload);
        let vals = unpack_u64s(&mut cur)?;
        cur.finish()?;
        if vals.len() != self.chunk_len(c) {
            return Err(malformed(format!(
                "ids chunk {c} holds {} values, expected {}",
                vals.len(),
                self.chunk_len(c)
            )));
        }
        Ok(self.ids.cells[c].get_or_init(|| vals.into_boxed_slice()))
    }

    // -- engine accessors --------------------------------------------------

    /// O(1) selectivity from the eager prefix counts — same contract as the
    /// RAM posting lists.
    pub(crate) fn range_count(&self, attr: usize, lo: Value, hi: Value) -> usize {
        if lo > hi {
            return 0;
        }
        let s = &self.starts[attr];
        (s[hi as usize + 1] - s[lo as usize]) as usize
    }

    /// Zone-map bounds of rank block `b` on `attr` (eager).
    pub(crate) fn zone(&self, attr: usize, b: usize) -> (Value, Value) {
        (self.zone_mins[attr][b], self.zone_maxs[attr][b])
    }

    /// Store index of the tuple at rank `rank`.
    pub(crate) fn perm_at(&self, rank: usize) -> Result<u32, SegmentError> {
        let c = rank / self.chunk;
        Ok(self.u32_chunk(&self.perm, KIND_PERM, 0, c)?[rank % self.chunk])
    }

    /// Rank position of the tuple at store index `idx`.
    pub(crate) fn rank_of_at(&self, idx: usize) -> Result<u32, SegmentError> {
        let c = idx / self.chunk;
        Ok(self.u32_chunk(&self.rank_of, KIND_RANK_OF, 0, c)?[idx % self.chunk])
    }

    /// The contiguous rank-ordered column values of zone block `b` on
    /// `attr` (`len` values). Blocks never span chunks (the chunk size is a
    /// multiple of the block size).
    pub(crate) fn rank_col_block(
        &self,
        attr: usize,
        b: usize,
        len: usize,
    ) -> Result<&[Value], SegmentError> {
        let base = b * BLOCK;
        let c = base / self.chunk;
        let off = base % self.chunk;
        let chunk = self.u32_chunk(&self.rank_cols[attr], KIND_RANK_COL, attr as u32, c)?;
        Ok(&chunk[off..off + len])
    }

    /// Value of the rank-`rank` tuple on `attr` (rank-ordered column).
    pub(crate) fn rank_value_at(&self, attr: usize, rank: usize) -> Result<Value, SegmentError> {
        let c = rank / self.chunk;
        Ok(
            self.u32_chunk(&self.rank_cols[attr], KIND_RANK_COL, attr as u32, c)?
                [rank % self.chunk],
        )
    }

    /// Value of the tuple at store index `idx` on `attr` (store-ordered
    /// column — never hydrates tuples).
    pub(crate) fn store_value_at(&self, attr: usize, idx: usize) -> Result<Value, SegmentError> {
        let c = idx / self.chunk;
        Ok(
            self.u32_chunk(&self.store_cols[attr], KIND_STORE_COL, attr as u32, c)?
                [idx % self.chunk],
        )
    }

    /// Walks the posting order of `attr` over the value range `[lo, hi]` —
    /// store indices in ascending store order per value bucket, exactly like
    /// the RAM posting lists.
    pub(crate) fn for_posting(
        &self,
        attr: usize,
        lo: Value,
        hi: Value,
        f: &mut dyn FnMut(u32) -> Result<(), SegmentError>,
    ) -> Result<(), SegmentError> {
        if lo > hi {
            return Ok(());
        }
        let s = &self.starts[attr];
        let p0 = s[lo as usize] as usize;
        let p1 = s[hi as usize + 1] as usize;
        if p0 >= p1 {
            return Ok(());
        }
        let first = p0 / self.chunk;
        let last = (p1 - 1) / self.chunk;
        for c in first..=last {
            let base = c * self.chunk;
            let chunk = self.u32_chunk(&self.order[attr], KIND_ORDER, attr as u32, c)?;
            let start = p0.max(base) - base;
            let end = p1.min(base + chunk.len()) - base;
            for &idx in &chunk[start..end] {
                f(idx)?;
            }
        }
        Ok(())
    }

    /// Borrows the hydrated tuple at store index `idx`, materializing its
    /// chunk on first touch.
    pub(crate) fn tuple_ref(&self, idx: usize) -> Result<&Arc<Tuple>, SegmentError> {
        let c = idx / self.chunk;
        Ok(&self.tuple_chunk(c)?[idx % self.chunk])
    }

    fn tuple_chunk(&self, c: usize) -> Result<&[Arc<Tuple>], SegmentError> {
        if let Some(v) = self.tuples[c].get() {
            return Ok(v);
        }
        let ids = self.ids_chunk(c)?;
        let m = self.schema.len();
        let mut cols: Vec<&[u32]> = Vec::with_capacity(m);
        for attr in 0..m {
            cols.push(self.u32_chunk(&self.store_cols[attr], KIND_STORE_COL, attr as u32, c)?);
        }
        let built: Box<[Arc<Tuple>]> = (0..self.chunk_len(c))
            .map(|i| {
                let values: Vec<Value> = cols.iter().map(|col| col[i]).collect();
                Arc::new(Tuple::new(ids[i] as TupleId, values))
            })
            .collect();
        Ok(self.tuples[c].get_or_init(|| built))
    }

    /// Hydrates every tuple and returns the contiguous snapshot — the
    /// O(n) escape hatch behind [`TupleStore::as_slice`] for segment-backed
    /// stores (scan-strategy execution, oracle ground truth, dominance
    /// precomputation). Chunks hydrated earlier are reused, not re-decoded.
    pub(crate) fn hydrate_all(&self) -> Result<&[Arc<Tuple>], SegmentError> {
        if let Some(full) = self.full.get() {
            return Ok(full);
        }
        let mut all: Vec<Arc<Tuple>> = Vec::with_capacity(self.n);
        for c in 0..self.chunks() {
            all.extend(self.tuple_chunk(c)?.iter().cloned());
        }
        Ok(self.full.get_or_init(|| all.into_boxed_slice()))
    }

    // -- verification ------------------------------------------------------

    /// The full O(file) scrub: every section's envelope and checksum, every
    /// payload decoded and range-checked, the directory proven to tile the
    /// file contiguously (no unexamined gaps), and the permutation proven to
    /// be a permutation with its stored inverse. After `verify` succeeds,
    /// every byte of the file has been covered by a checksum.
    pub fn verify(&self) -> Result<(), SegmentError> {
        // Geometry: sections tile [0, footer_off), then footer, then trailer.
        let mut extents: Vec<(u64, u64)> = self.dir.iter().map(|e| (e.offset, e.len)).collect();
        extents.sort_unstable();
        let mut cursor = 0u64;
        for &(off, len) in &extents {
            if off != cursor {
                return Err(malformed(format!(
                    "directory leaves bytes [{cursor}, {off}) unaccounted for"
                )));
            }
            cursor = off
                .checked_add(len)
                .ok_or_else(|| malformed("section extent overflows"))?;
        }
        if cursor != self.footer_off {
            return Err(malformed(format!(
                "sections end at {cursor} but the footer starts at {}",
                self.footer_off
            )));
        }
        if self.footer_off + self.footer_len + TRAILER_LEN as u64 != self.source.len() {
            return Err(malformed("footer/trailer do not tile to the file size"));
        }

        // Content: decode and range-check every section.
        let n = self.n;
        let mut perm_all: Vec<u32> = Vec::new();
        let mut rank_of_all: Vec<u32> = Vec::new();
        for e in &self.dir {
            let bytes = self.read_entry(*e)?;
            let payload = open_envelope(&bytes, e.kind)?;
            let mut cur = Cursor::new(payload);
            match e.kind {
                KIND_ZONES => {
                    let blocks = n.div_ceil(BLOCK);
                    for _ in 0..self.schema.len() {
                        for vals in [unpack_u32s(&mut cur)?, unpack_u32s(&mut cur)?] {
                            if vals.len() != blocks {
                                return Err(malformed("zone table has the wrong block count"));
                            }
                        }
                    }
                }
                KIND_STARTS => {
                    let vals = unpack_u32s(&mut cur)?;
                    let d = self.schema.attr(e.attr as usize).domain_size as usize;
                    if vals.len() != d + 1
                        || vals.first() != Some(&0)
                        || vals.windows(2).any(|w| w[0] > w[1])
                        || vals.last().copied() != Some(n as u32)
                    {
                        return Err(malformed(format!(
                            "starts[{}] is not a prefix-count table",
                            e.attr
                        )));
                    }
                }
                KIND_IDS => {
                    let vals = unpack_u64s(&mut cur)?;
                    if vals.len() != self.chunk_len(e.chunk as usize) {
                        return Err(malformed("ids chunk has the wrong length"));
                    }
                }
                kind => {
                    let vals = unpack_u32s(&mut cur)?;
                    if vals.len() != self.chunk_len(e.chunk as usize) {
                        return Err(malformed(format!(
                            "{} chunk has the wrong length",
                            kind_name(kind)
                        )));
                    }
                    match kind {
                        KIND_PERM | KIND_RANK_OF | KIND_ORDER => {
                            if vals.iter().any(|&v| v as usize >= n) {
                                return Err(malformed(format!(
                                    "{} value out of range",
                                    kind_name(kind)
                                )));
                            }
                            if kind == KIND_PERM {
                                perm_all.resize(perm_all.len().max(n), 0);
                                let base = e.chunk as usize * self.chunk;
                                perm_all[base..base + vals.len()].copy_from_slice(&vals);
                            }
                            if kind == KIND_RANK_OF {
                                rank_of_all.resize(rank_of_all.len().max(n), 0);
                                let base = e.chunk as usize * self.chunk;
                                rank_of_all[base..base + vals.len()].copy_from_slice(&vals);
                            }
                        }
                        KIND_RANK_COL | KIND_STORE_COL => {
                            let d = self.schema.attr(e.attr as usize).domain_size;
                            if vals.iter().any(|&v| v >= d) {
                                return Err(malformed(format!(
                                    "{}[{}] value outside the attribute domain",
                                    kind_name(kind),
                                    e.attr
                                )));
                            }
                        }
                        _ => unreachable!("kind validated when the directory was built"),
                    }
                }
            }
            cur.finish()?;
        }
        if self.has_perm {
            let mut seen = vec![false; n];
            for &idx in &perm_all {
                if std::mem::replace(&mut seen[idx as usize], true) {
                    return Err(malformed("perm is not a permutation"));
                }
            }
            for (idx, &rank) in rank_of_all.iter().enumerate() {
                if perm_all[rank as usize] as usize != idx {
                    return Err(malformed("rank_of is not the inverse of perm"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Query, SchemaBuilder, SumRanker};

    #[test]
    fn bitpack_round_trips_every_width() {
        for width in 0..=32u32 {
            let max = if width == 0 { 0 } else { (1u64 << width) - 1 };
            let values: Vec<u32> = (0..137u64)
                .map(|i| ((i.wrapping_mul(0x9E37_79B9)) % (max + 1)) as u32 + 7)
                .collect();
            let mut bytes = Vec::new();
            pack_u32s(&values, &mut bytes);
            let mut cur = Cursor::new(&bytes);
            let back = unpack_u32s(&mut cur).unwrap();
            cur.finish().unwrap();
            assert_eq!(back, values, "width {width}");
        }
        let values: Vec<u64> = (0..99).map(|i| u64::MAX - i * 12345).collect();
        let mut bytes = Vec::new();
        pack_u64s(&values, &mut bytes);
        let mut cur = Cursor::new(&bytes);
        assert_eq!(unpack_u64s(&mut cur).unwrap(), values);
        cur.finish().unwrap();
    }

    #[test]
    fn bitpack_handles_empty_and_constant_runs() {
        for values in [vec![], vec![42u32; 1000]] {
            let mut bytes = Vec::new();
            pack_u32s(&values, &mut bytes);
            // Constant (or empty) runs cost exactly the 9-byte header.
            assert_eq!(bytes.len(), 9);
            let mut cur = Cursor::new(&bytes);
            assert_eq!(unpack_u32s(&mut cur).unwrap(), values);
            cur.finish().unwrap();
        }
    }

    #[test]
    fn envelope_rejections_are_typed() {
        let mut sealed = Vec::new();
        seal(KIND_PERM, b"payload", &mut sealed);
        assert!(open_envelope(&sealed, KIND_PERM).is_ok());
        assert_eq!(
            open_envelope(&sealed, KIND_ORDER),
            Err(SegmentError::WrongKind {
                expected: KIND_ORDER,
                found: KIND_PERM
            })
        );
        assert_eq!(
            open_envelope(&sealed[..3], KIND_PERM),
            Err(SegmentError::Truncated)
        );
        let mut foreign = sealed.clone();
        foreign[0] = b'X';
        assert_eq!(
            open_envelope(&foreign, KIND_PERM),
            Err(SegmentError::BadMagic)
        );
        let mut future = sealed.clone();
        future[4] = 9;
        assert_eq!(
            open_envelope(&future, KIND_PERM),
            Err(SegmentError::UnsupportedVersion { found: 9 })
        );
        let mut flipped = sealed.clone();
        let last = flipped.len() - 9;
        flipped[last] ^= 1;
        assert_eq!(
            open_envelope(&flipped, KIND_PERM),
            Err(SegmentError::ChecksumMismatch)
        );
        let mut trailing = sealed.clone();
        trailing.push(0);
        assert_eq!(
            open_envelope(&trailing, KIND_PERM),
            Err(SegmentError::TrailingBytes)
        );
    }

    fn tiny_db() -> HiddenDb {
        let schema = SchemaBuilder::new()
            .ranking("a", 10, InterfaceType::Rq)
            .ranking("b", 10, InterfaceType::Sq)
            .filtering("f", 3)
            .build();
        let tuples: Vec<Tuple> = (0..150u64)
            .map(|i| {
                Tuple::new(
                    i,
                    vec![(i % 10) as u32, ((i * 7) % 10) as u32, (i % 3) as u32],
                )
            })
            .collect();
        HiddenDb::with_sum_ranking(schema, tuples, 4)
    }

    #[test]
    fn write_open_verify_round_trips() {
        let db = tiny_db();
        let bytes = SegmentWriter::new()
            .with_chunk_size(64)
            .write(&db)
            .expect("write");
        let reader = SegmentReader::open(Box::new(MemSource::new(bytes.clone()))).expect("open");
        reader.verify().expect("verify");
        assert_eq!(reader.n(), 150);
        assert_eq!(reader.k(), 4);
        assert!(reader.has_perm());
        assert_eq!(reader.ranker_name(), "sum");
        assert_eq!(reader.schema().len(), 3);
        // Writes are deterministic.
        let again = SegmentWriter::new().with_chunk_size(64).write(&db).unwrap();
        assert_eq!(bytes, again);
    }

    #[test]
    fn segment_backed_db_answers_like_the_ram_build() {
        let db = tiny_db();
        let bytes = SegmentWriter::new().with_chunk_size(64).write(&db).unwrap();
        let seg =
            HiddenDb::open_segment_source(Box::new(MemSource::new(bytes)), Box::new(SumRanker))
                .expect("open");
        assert_eq!(seg.k(), db.k());
        assert_eq!(seg.n(), db.n());
        let queries = [
            Query::select_all(),
            Query::new(vec![crate::Predicate::lt(0, 4)]),
            Query::new(vec![crate::Predicate::eq(2, 1), crate::Predicate::ge(0, 6)]),
        ];
        for q in &queries {
            let a = db.query(q).unwrap();
            let b = seg.query(q).unwrap();
            assert_eq!(
                a.tuples.iter().map(|t| t.id).collect::<Vec<_>>(),
                b.tuples.iter().map(|t| t.id).collect::<Vec<_>>()
            );
            assert_eq!(a.overflowed, b.overflowed);
        }
    }

    #[test]
    fn empty_store_round_trips() {
        let schema = SchemaBuilder::new()
            .ranking("a", 5, InterfaceType::Rq)
            .build();
        let db = HiddenDb::with_sum_ranking(schema, Vec::new(), 2);
        let bytes = SegmentWriter::new().write(&db).unwrap();
        let reader = SegmentReader::open(Box::new(MemSource::new(bytes.clone()))).unwrap();
        reader.verify().unwrap();
        assert_eq!(reader.n(), 0);
        let seg =
            HiddenDb::open_segment_source(Box::new(MemSource::new(bytes)), Box::new(SumRanker))
                .unwrap();
        let ans = seg.query(&Query::select_all()).unwrap();
        assert!(ans.is_empty());
        assert!(!ans.overflowed);
    }

    #[test]
    fn ranker_mismatch_is_rejected() {
        let db = tiny_db();
        let bytes = SegmentWriter::new().write(&db).unwrap();
        let err = HiddenDb::open_segment_source(
            Box::new(MemSource::new(bytes)),
            Box::new(crate::WorstCaseRanker),
        )
        .unwrap_err();
        assert_eq!(
            err,
            SegmentError::RankerMismatch {
                expected: "sum".into(),
                found: "worst-case".into(),
            }
        );
    }
}
